"""Execution traces and the valid-execution properties of Appendix A.2.

Every constraint-relevant event in a scenario is recorded, in time order, in
an :class:`ExecutionTrace`.  The trace maintains the running interpretation
(state of the traced items) so each recorded event carries correct ``old`` /
``new`` interpretations, derives per-item value *timelines* for the guarantee
checker, and can be validated against the seven properties that define a
valid execution in the paper's Appendix A.2.

The trace layer is the hot path of every scenario, so it is engineered to
stay near-linear in the number of events:

- ``record()`` is O(1) per event: ``old``/``new`` are copy-on-write views
  over one shared :class:`~repro.core.interpretations.StateJournal` instead
  of per-event dict snapshots;
- every query (:meth:`~ExecutionTrace.writes_to`,
  :meth:`~ExecutionTrace.events_of_kind`,
  :meth:`~ExecutionTrace.events_matching`,
  :meth:`~ExecutionTrace.refs_of_family`) reads record-time indexes —
  per-item write lists, per-kind and per-(kind, family) event lists — rather
  than scanning the whole trace;
- :meth:`~ExecutionTrace.timeline` extends a per-item incrementally
  collapsed change list, doing O(1) work per appended write, instead of
  rebuilding from all of the item's writes.

The naive full-scan implementations are retained in
:class:`ReferenceTraceQueries` / :func:`validate_trace_naive` as the
executable specification; randomized equivalence tests hold the fast paths
to them.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from types import MappingProxyType
from typing import Iterator, Mapping, Optional, Sequence

from repro.core.errors import TraceError
from repro.core.events import Event, EventDesc, EventKind, reserve_event_seqs
from repro.core.interpretations import StateJournal, write_delta
from repro.core.items import MISSING, DataItemRef, Value
from repro.core.rules import Rule
from repro.core.templates import Template, match_desc
from repro.core.terms import Bindings
from repro.core.timebase import Ticks


@dataclass(frozen=True)
class TimelineSegment:
    """A maximal interval during which an item held one value.

    The segment covers ``[start, end)``; the final segment of a timeline has
    ``end`` equal to the trace horizon.
    """

    start: Ticks
    end: Ticks
    value: Value

    def covers(self, time: Ticks) -> bool:
        """Whether the (half-open) segment contains ``time``."""
        return self.start <= time < self.end

    @property
    def length(self) -> Ticks:
        """Duration of the segment in ticks."""
        return max(0, self.end - self.start)


class Timeline:
    """The piecewise-constant value history of one data item.

    Built from a trace: the item starts at its seeded value (or MISSING) and
    changes at each write event.  Queries are binary searches.

    A timeline is immutable once handed out.  Instances built by
    :meth:`ExecutionTrace.timeline` share their change arrays with the
    trace's incremental per-item builder; the builder appends past
    ``_length`` (invisible here) and copies the arrays before any in-place
    collapse that would touch an entry this view can see.
    """

    __slots__ = ("_times", "_values", "_length", "horizon")

    def __init__(self, changes: list[tuple[Ticks, Value]], horizon: Ticks):
        if not changes or changes[0][0] != 0:
            changes = [(0, MISSING)] + list(changes)
        # Collapse simultaneous changes (the last write at an instant wins),
        # then drop no-op changes so segments are maximal.  Two passes: a
        # same-instant overwrite can re-create an adjacent duplicate that
        # the first pass already let through.
        collapsed: list[tuple[Ticks, Value]] = []
        for time, value in changes:
            if collapsed and collapsed[-1][0] == time:
                collapsed[-1] = (time, value)
            else:
                collapsed.append((time, value))
        deduped: list[tuple[Ticks, Value]] = []
        for time, value in collapsed:
            if not deduped or deduped[-1][1] != value:
                deduped.append((time, value))
        self._times = [time for time, _ in deduped]
        self._values = [value for _, value in deduped]
        self._length = len(self._times)
        self.horizon = max(horizon, self._times[-1])

    @classmethod
    def _over(
        cls,
        times: list[Ticks],
        values: list[Value],
        length: int,
        horizon: Ticks,
    ) -> "Timeline":
        """A view over pre-collapsed change arrays (no copy, no re-collapse)."""
        timeline = cls.__new__(cls)
        timeline._times = times
        timeline._values = values
        timeline._length = length
        timeline.horizon = max(horizon, times[length - 1])
        return timeline

    def value_at(self, time: Ticks) -> Value:
        """The item's value at virtual time ``time``."""
        if time < 0:
            return MISSING
        index = bisect_right(self._times, time, 0, self._length) - 1
        return self._values[index]

    def segments(self) -> Iterator[TimelineSegment]:
        """All maximal constant segments, in time order."""
        times, values, length = self._times, self._values, self._length
        for index in range(length):
            start = times[index]
            end = times[index + 1] if index + 1 < length else self.horizon
            if end > start:
                yield TimelineSegment(start, end, values[index])

    def segments_with_value(self, value: Value) -> Iterator[TimelineSegment]:
        """Maximal segments during which the item held ``value``."""
        for segment in self.segments():
            if segment.value == value:
                yield segment

    def change_points(self) -> list[tuple[Ticks, Value]]:
        """The (time, new value) change list, starting at time 0."""
        length = self._length
        return list(zip(self._times[:length], self._values[:length]))

    def distinct_values(self) -> list[Value]:
        """Values taken over the trace, in order of first acquisition."""
        seen: list[Value] = []
        for value in self._values[: self._length]:
            if value not in seen:
                seen.append(value)
        return seen


class _TimelineBuilder:
    """One item's incrementally collapsed change list.

    Maintains the invariant that ``(times, values)`` is exactly what
    :class:`Timeline`'s two-pass collapse would produce for the writes folded
    in so far, by applying the collapse per appended write: a same-instant
    write overwrites the last entry (and merges away an adjacent duplicate it
    re-creates), a no-op value is dropped, anything else appends.

    Handed-out timelines share the arrays, frozen at their length; before an
    in-place tail mutation that a handed-out view could see, the arrays are
    copied (copy-on-write), so views never change retroactively.
    """

    __slots__ = ("_times", "_values", "_consumed", "_shared", "_cached")

    def __init__(self, seed_value: Value) -> None:
        self._times: list[Ticks] = [0]
        self._values: list[Value] = [seed_value]
        self._consumed = 0  # write events folded in so far
        self._shared = 0  # prefix length visible through a handed-out view
        self._cached: Optional[Timeline] = None

    def extend(self, writes: Sequence[Event]) -> int:
        """Fold in writes not yet consumed; returns the number processed."""
        fresh = len(writes) - self._consumed
        if fresh:
            for index in range(self._consumed, len(writes)):
                event = writes[index]
                self._push(event.time, event.written_value)
            self._consumed = len(writes)
        return fresh

    def _push(self, time: Ticks, value: Value) -> None:
        times, values = self._times, self._values
        if times[-1] == time:
            if len(times) > 1 and values[-2] == value:
                # The same-instant overwrite re-created an adjacent
                # duplicate: the entry collapses away entirely.
                self._unshare_tail()
                self._times.pop()
                self._values.pop()
            elif values[-1] != value:
                self._unshare_tail()
                self._values[-1] = value
        elif values[-1] != value:
            times.append(time)
            values.append(value)

    def _unshare_tail(self) -> None:
        if self._shared >= len(self._times):
            self._times = list(self._times)
            self._values = list(self._values)
            self._shared = 0
            self._cached = None

    def build(self, horizon: Ticks) -> Timeline:
        """The current timeline; reuses the last one when nothing changed."""
        length = len(self._times)
        effective = max(horizon, self._times[length - 1])
        cached = self._cached
        if (
            cached is not None
            and cached._times is self._times
            and cached._length == length
            and cached.horizon == effective
        ):
            return cached
        timeline = Timeline._over(self._times, self._values, length, horizon)
        self._shared = length
        self._cached = timeline
        return timeline


@dataclass
class Violation:
    """One valid-execution property violation found by the validator."""

    property_number: int
    message: str
    event: Optional[Event] = None

    def __str__(self) -> str:
        prefix = f"property {self.property_number}: {self.message}"
        if self.event is not None:
            prefix += f" (event {self.event})"
        return prefix


_NO_EVENTS: tuple[Event, ...] = ()


def _build_event(time, site, desc, old, new, seq) -> Event:
    """Fill an :class:`Event` directly.  Event is a frozen dataclass; its
    ``__init__`` costs ~2x a bare ``__dict__`` fill (field ordering,
    default factories, frozen-setattr indirection), so the hot loops build
    instances this way.  The result is indistinguishable from a
    constructed one."""
    event = Event.__new__(Event)
    fields = event.__dict__
    fields["time"] = time
    fields["site"] = site
    fields["desc"] = desc
    fields["old"] = old
    fields["new"] = new
    fields["rule"] = None
    fields["trigger"] = None
    fields["seq"] = seq
    return event


class TraceBatch:
    """One same-tick block recorded by :meth:`ExecutionTrace.record_batch`.

    Recording a batch pays the *semantic* costs eagerly — the time-order
    check, the journal writes (so ``current_value`` and later events' ``old``
    views stay correct), the horizon update, and a block reservation of
    sequence numbers.  What it defers is the per-event bookkeeping that
    sequential recording pays every time: constructing the frozen
    :class:`Event` dataclass and appending it to the query indexes.  Those
    happen once per block, when the trace is next read (or the next
    per-event ``record()`` forces a flush) — or incrementally through
    :meth:`event_at` while a dispatcher walks the block.

    ``event_at`` materializes sequentially and caches, so every consumer —
    dispatch triggers, the flushed event list, provenance identity checks —
    sees the *same* Event objects, and interpretation views chain by
    identity within the block exactly as sequential recording produces.
    """

    __slots__ = (
        "trace",
        "time",
        "site",
        "descs",
        "_first_seq",
        "_start_version",
        "_versions",
        "_events",
        "_sparse",
        "_cursor_view",
    )

    def __init__(
        self,
        trace: "ExecutionTrace",
        time: Ticks,
        site: str,
        descs: list[EventDesc],
        first_seq: int,
        start_version: int,
        versions: list[int] | None,
    ) -> None:
        self.trace = trace
        self.time = time
        self.site = site
        self.descs = descs
        self._first_seq = first_seq
        self._start_version = start_version
        #: Per-event post-write journal version; 0 for non-writes.  ``None``
        #: for a block with no writes at all (every event shares one view).
        self._versions = versions
        self._events: list[Event] = []
        #: Out-of-order materializations of a write-free block (every event
        #: shares one view, so index ``i`` needs no prefix walk); the flush
        #: adopts these objects, keeping trigger identity stable.
        self._sparse: dict[int, Event] = {}
        self._cursor_view = None

    def __len__(self) -> int:
        return len(self.descs)

    def event_at(self, index: int) -> Event:
        """The event at ``index``.

        In a block that wrote nothing the event is built directly (O(1) —
        the batched dispatcher's trigger lookups must not cascade into
        materializing the whole prefix); otherwise the prefix up to
        ``index`` is materialized to thread the views through the writes.
        """
        events = self._events
        if index < len(events):
            return events[index]
        if self._versions is None:
            event = self._sparse.get(index)
            if event is None:
                view = self._cursor_view
                if view is None:
                    view = self._cursor_view = self.trace._journal.view(
                        self._start_version
                    )
                event = self._sparse[index] = _build_event(
                    self.time,
                    self.site,
                    self.descs[index],
                    view,
                    view,
                    self._first_seq + index,
                )
            return event
        self._materialize_upto(index)
        return events[index]

    def _materialize_upto(self, index: int) -> None:
        journal = self.trace._journal
        events = self._events
        descs = self.descs
        versions = self._versions
        time = self.time
        site = self.site
        current = self._cursor_view
        if current is None:
            current = journal.view(self._start_version)
        seq = self._first_seq + len(events)
        sparse = self._sparse
        for i in range(len(events), index + 1):
            old = current
            if versions is not None:
                version = versions[i]
                if version:
                    current = journal.view(version)
            # Adopt any trigger already built out of order, so the flushed
            # trace holds the exact objects dispatch fired on.
            event = sparse.pop(i, None) if sparse else None
            if event is None:
                event = _build_event(time, site, descs[i], old, current, seq)
            seq += 1
            events.append(event)
        self._cursor_view = current


class ExecutionTrace:
    """The recorded event sequence of one scenario run.

    The trace owns the authoritative interpretation of the traced items:
    callers record *what happened* (site + descriptor + provenance) and the
    trace computes the ``old``/``new`` interpretations, which guarantees
    valid-execution properties 2 and 3 by construction — the validator then
    re-checks them independently.

    Recording also maintains the query indexes (per-item writes, per-kind
    and per-(kind, family) event lists, per-family ref sets), so queries
    touch only the events they return.
    """

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._events_snapshot: tuple[Event, ...] = ()
        self._pending: list[TraceBatch] = []
        self._journal = StateJournal()
        self._seeded: dict[DataItemRef, Value] = {}
        self.horizon: Ticks = 0
        # -- record-time indexes --
        self._writes_by_item: dict[DataItemRef, list[Event]] = {}
        self._by_kind: dict[EventKind, list[Event]] = {}
        self._by_kind_family: dict[tuple[EventKind, str], list[Event]] = {}
        self._family_refs: dict[str, set[DataItemRef]] = {}
        self._family_sorted: dict[str, tuple[int, list[DataItemRef]]] = {}
        self._generated: list[Event] = []
        self._timelines: dict[DataItemRef, _TimelineBuilder] = {}
        # -- instrumentation --
        self._timeline_extend_steps = 0
        self._timeline_builds = 0
        self._timeline_cache_hits = 0

    # -- recording -----------------------------------------------------------

    def seed(self, ref: DataItemRef, value: Value) -> None:
        """Set an item's initial (time-0) value without recording an event.

        Must be called before any event is recorded.
        """
        if self._events or self._pending:
            raise TraceError("cannot seed a trace after events were recorded")
        self._journal.seed(ref, value)
        self._seeded[ref] = value
        self._add_family_ref(ref)
        self._timelines.pop(ref, None)

    def record(
        self,
        time: Ticks,
        site: str,
        desc: EventDesc,
        rule: Rule | None = None,
        trigger: Event | None = None,
        seq: int | None = None,
    ) -> Event:
        """Record one event, computing its interpretations.  O(1) per event.

        ``seq`` preserves an explicit sequence number when re-recording an
        event that was numbered elsewhere (the process runtime merging its
        shells' traces): event identity across process boundaries is
        ``(site, seq)``, so the merged trace must keep each child's
        numbering for provenance lookups to resolve.  Passing it never
        advances the global event counter.
        """
        if self._pending:
            self._flush_pending()
        events = self._events
        if events and time < events[-1].time:
            raise TraceError(
                f"event at {time} recorded after event at {events[-1].time}"
            )
        journal = self._journal
        old = journal.view()
        kind = desc.kind
        if kind.is_write:
            assert desc.item is not None
            if kind is EventKind.WRITE:
                journal.write(desc.item, desc.values[0])
            else:
                journal.write(desc.item, desc.values[1])
            new = journal.view()
        else:
            new = old
        if seq is None:
            event = Event(
                time=time,
                site=site,
                desc=desc,
                old=old,
                new=new,
                rule=rule,
                trigger=trigger,
            )
        else:
            event = Event(
                time=time,
                site=site,
                desc=desc,
                old=old,
                new=new,
                rule=rule,
                trigger=trigger,
                seq=seq,
            )
        events.append(event)
        self._index_event(event)
        if time > self.horizon:
            self.horizon = time
        return event

    def record_batch(
        self, time: Ticks, site: str, descs: Sequence[EventDesc]
    ) -> TraceBatch:
        """Record a same-tick block of spontaneous events in one call.

        Semantically equivalent to calling :meth:`record` once per
        descriptor at the same ``time``/``site`` with no provenance, but the
        per-event costs — Event construction, event-list append, index
        maintenance — are deferred to one flush per block (see
        :class:`TraceBatch`), which is what lets batched ingestion clear
        100k+ events/sec where sequential recording pays ~µs-scale fixed
        costs on every event.

        Journal writes still happen here, eagerly and in order, so
        ``current_value`` and every later event's interpretations are
        correct regardless of when the block flushes.
        """
        descs = list(descs)
        pending = self._pending
        if pending:
            last_time: Ticks | None = pending[-1].time
        elif self._events:
            last_time = self._events[-1].time
        else:
            last_time = None
        if last_time is not None and time < last_time:
            raise TraceError(
                f"event at {time} recorded after event at {last_time}"
            )
        journal = self._journal
        start_version = journal.version
        versions: list[int] | None = None
        # Identity checks instead of the ``is_write`` property: the loop
        # runs once per ingested event and a Python-level property call is
        # a measurable fraction of the whole batched path.
        write_kind = EventKind.WRITE
        spont_kind = EventKind.SPONTANEOUS_WRITE
        for index, desc in enumerate(descs):
            kind = desc.kind
            if kind is write_kind or kind is spont_kind:
                assert desc.item is not None
                if versions is None:
                    versions = [0] * len(descs)
                versions[index] = journal.write(
                    desc.item,
                    desc.values[0]
                    if kind is write_kind
                    else desc.values[1],
                )
        batch = TraceBatch(
            self,
            time,
            site,
            descs,
            reserve_event_seqs(len(descs)),
            start_version,
            versions,
        )
        if descs:
            pending.append(batch)
            if time > self.horizon:
                self.horizon = time
        return batch

    def _flush_pending(self) -> None:
        """Materialize pending batches into the event list and indexes."""
        pending = self._pending
        if not pending:
            return
        self._pending = []
        events = self._events
        index_event = self._index_event
        for batch in pending:
            batch._materialize_upto(len(batch.descs) - 1)
            for event in batch._events:
                events.append(event)
                index_event(event)

    def _index_event(self, event: Event) -> None:
        desc = event.desc
        kind = desc.kind
        by_kind = self._by_kind.get(kind)
        if by_kind is None:
            by_kind = self._by_kind[kind] = []
        by_kind.append(event)
        item = desc.item
        if item is not None:
            key = (kind, item.name)
            by_family = self._by_kind_family.get(key)
            if by_family is None:
                by_family = self._by_kind_family[key] = []
            by_family.append(event)
            if kind.is_write:
                writes = self._writes_by_item.get(item)
                if writes is None:
                    writes = self._writes_by_item[item] = []
                writes.append(event)
            self._add_family_ref(item)
        if event.rule is not None or event.trigger is not None:
            self._generated.append(event)

    def _add_family_ref(self, ref: DataItemRef) -> None:
        refs = self._family_refs.get(ref.name)
        if refs is None:
            refs = self._family_refs[ref.name] = set()
        refs.add(ref)

    def close(self, horizon: Ticks) -> None:
        """Extend the trace horizon to the end-of-run time."""
        self.horizon = max(self.horizon, horizon)

    # -- queries ---------------------------------------------------------------

    @property
    def events(self) -> tuple[Event, ...]:
        """All recorded events, in order (a read-only snapshot)."""
        if self._pending:
            self._flush_pending()
        snapshot = self._events_snapshot
        if len(snapshot) != len(self._events):
            snapshot = self._events_snapshot = tuple(self._events)
        return snapshot

    @property
    def seeded(self) -> Mapping[DataItemRef, Value]:
        """The seeded initial values (read-only view)."""
        return MappingProxyType(self._seeded)

    @property
    def generated_events(self) -> tuple[Event, ...]:
        """Events carrying provenance (a rule and/or trigger), in order."""
        if self._pending:
            self._flush_pending()
        return tuple(self._generated)

    def __len__(self) -> int:
        # Countable without materializing pending batches.
        return len(self._events) + sum(len(b.descs) for b in self._pending)

    def _candidates(self, tmpl: Template) -> Sequence[Event]:
        """The indexed superset of events that can match ``tmpl``."""
        if self._pending:
            self._flush_pending()
        if tmpl.kind is EventKind.FALSE:
            return _NO_EVENTS
        family = tmpl.dispatch_family
        if family is None:
            # Item-less (P) or family-wildcard template: every event of the
            # kind must be consulted.
            return self._by_kind.get(tmpl.kind, _NO_EVENTS)
        return self._by_kind_family.get((tmpl.kind, family), _NO_EVENTS)

    def events_matching(self, tmpl: Template) -> Iterator[tuple[Event, Bindings]]:
        """All (event, matching interpretation) pairs for a template."""
        for event in self._candidates(tmpl):
            bindings = match_desc(tmpl, event.desc)
            if bindings is not None:
                yield event, bindings

    def events_of_kind(self, kind: EventKind) -> Iterator[Event]:
        """All events with the given descriptor kind."""
        if self._pending:
            self._flush_pending()
        return iter(self._by_kind.get(kind, _NO_EVENTS))

    def writes_to(self, ref: DataItemRef) -> Iterator[Event]:
        """All (generated or spontaneous) writes to ``ref``, in order."""
        if self._pending:
            self._flush_pending()
        return iter(self._writes_by_item.get(ref, _NO_EVENTS))

    def timeline(self, ref: DataItemRef) -> Timeline:
        """The value history of ``ref`` over this trace.

        Incremental: each call folds in only the writes recorded since the
        previous call for this item, and returns the cached
        :class:`Timeline` object when nothing changed.
        """
        if self._pending:
            self._flush_pending()
        builder = self._timelines.get(ref)
        if builder is None:
            builder = _TimelineBuilder(self._seeded.get(ref, MISSING))
            self._timelines[ref] = builder
        self._timeline_extend_steps += builder.extend(
            self._writes_by_item.get(ref, _NO_EVENTS)
        )
        before = builder._cached
        timeline = builder.build(self.horizon)
        if timeline is before:
            self._timeline_cache_hits += 1
        else:
            self._timeline_builds += 1
        return timeline

    def value_at(self, ref: DataItemRef, time: Ticks) -> Value:
        """Value of ``ref`` at ``time`` (MISSING before any seed/write)."""
        return self.timeline(ref).value_at(time)

    def current_value(self, ref: DataItemRef) -> Value:
        """Value of ``ref`` right now — O(1), no timeline construction."""
        return self._journal.current_value(ref, MISSING)

    def refs_of_family(self, family: str) -> list[DataItemRef]:
        """All ground item refs of a parameterized family seen in the trace."""
        if self._pending:
            self._flush_pending()
        refs = self._family_refs.get(family)
        if not refs:
            return []
        cached = self._family_sorted.get(family)
        if cached is not None and cached[0] == len(refs):
            return list(cached[1])
        ordered = sorted(refs, key=lambda r: (r.name, tuple(map(str, r.args))))
        self._family_sorted[family] = (len(refs), ordered)
        return list(ordered)

    def stats(self) -> dict[str, int]:
        """Recording/query counters (surfaced in run reports and tests)."""
        if self._pending:
            self._flush_pending()
        return {
            "events_recorded": len(self._events),
            "items_tracked": len(self._journal),
            "state_versions": self._journal.version,
            "interpretation_materializations": self._journal.materializations,
            "timeline_extend_steps": self._timeline_extend_steps,
            "timeline_builds": self._timeline_builds,
            "timeline_cache_hits": self._timeline_cache_hits,
        }


# -- validation (indexed) ----------------------------------------------------


def validate_trace(trace: ExecutionTrace, rules: list[Rule]) -> list[Violation]:
    """Check the seven valid-execution properties of Appendix A.2.

    Properties 1-5 are checked exactly.  Property 6 (rule liveness) is checked
    for every LHS match whose RHS steps carry the trivial condition; steps
    with non-trivial conditions depend on local shell state at firing time,
    which the trace does not retain, so a missing event for such a step is
    not reported (it may legitimately have been suppressed by its condition).
    Property 7 (in-order processing of related rules) is checked exactly over
    the recorded generated events.

    Implementation: properties 1-5 are fused into a single pass over the
    event list (using the interpretation journal's write deltas for the
    property-2/3 state checks), and properties 6-7 consume the trace's
    kind/family and provenance indexes; no full pass beyond those two
    remains.  :func:`validate_trace_naive` is the pass-per-property
    reference this is tested against.
    """
    buckets: dict[int, list[Violation]] = {n: [] for n in range(1, 8)}
    previous: Event | None = None
    for event in trace.events:
        desc = event.desc
        # Property 1: nondecreasing time.
        if previous is not None and event.time < previous.time:
            buckets[1].append(Violation(1, "events out of time order", event))

        # Property 2: write events transform interpretations correctly.
        if desc.kind.is_write:
            ref = desc.item
            assert ref is not None
            if not _write_transforms_state(event, ref):
                buckets[2].append(
                    Violation(2, "write event has inconsistent new state", event)
                )
        else:
            if event.new is not event.old and event.new != event.old:
                buckets[2].append(
                    Violation(2, "non-write event changed the state", event)
                )

        # Property 3: interpretations chain.
        if (
            previous is not None
            and event.old is not previous.new
            and event.old != previous.new
        ):
            buckets[3].append(
                Violation(3, "old state does not chain from previous event", event)
            )

        # Property 4: spontaneous events carry no provenance.
        spontaneous_kind = desc.kind in (
            EventKind.SPONTANEOUS_WRITE,
            EventKind.PERIODIC,
        )
        if spontaneous_kind and (event.rule is not None or event.trigger is not None):
            buckets[4].append(
                Violation(4, "spontaneous event carries rule/trigger", event)
            )

        # Property 5: generated events have consistent provenance.
        if event.rule is not None:
            _check_provenance(event, buckets[5])

        previous = event

    # Property 6: rule liveness for unconditional steps.
    buckets[6] = _check_liveness(trace, rules)

    # Property 7: related rules fire in order.
    buckets[7] = _check_in_order(trace.generated_events)

    return [violation for n in range(1, 8) for violation in buckets[n]]


def _write_transforms_state(event: Event, ref: DataItemRef) -> bool:
    """Property 2 for a write event: ``new == old.updated(ref, written)``.

    Fast path: when ``old``/``new`` are views of one journal, the check is a
    constant-time comparison against the journal's write log; the
    materializing equality check runs only for foreign (hand-built)
    interpretations or on mismatch.
    """
    written = event.written_value
    delta = write_delta(event.old, event.new)
    if delta is not None and len(delta) == 1:
        w_ref, w_value = delta[0]
        if w_ref == ref and w_value == written:
            return True
    return event.new == event.old.updated(ref, written)


def _check_provenance(event: Event, violations: list[Violation]) -> None:
    """Property 5 checks for one generated event."""
    if event.trigger is None:
        violations.append(Violation(5, "generated event lacks a trigger", event))
        return
    rule = event.rule
    assert rule is not None
    bindings = match_desc(rule.lhs, event.trigger.desc)
    if bindings is None:
        violations.append(
            Violation(5, "trigger does not match the rule's LHS", event)
        )
        return
    if not _desc_matches_some_step(rule, event.desc, bindings):
        violations.append(
            Violation(
                5, "event is not an instantiation of any RHS template", event
            )
        )
    if event.trigger.time > event.time:
        violations.append(Violation(5, "event precedes its trigger", event))
    if event.time > event.trigger.time + rule.delay:
        violations.append(
            Violation(5, "event exceeds its rule's delay bound", event)
        )


def _desc_matches_some_step(rule: Rule, desc: EventDesc, bindings: Bindings) -> bool:
    """Whether ``desc`` instantiates an RHS template under extended bindings."""
    for step in rule.steps:
        if step.template.kind is EventKind.FALSE:
            continue
        extended = match_desc(step.template, desc)
        if extended is None:
            continue
        consistent = all(
            extended.get(name, value) == value for name, value in bindings.items()
            if name in extended
        )
        if consistent:
            return True
    return False


def _provenance_index(
    generated: Sequence[Event],
) -> dict[tuple[int, str, int], list[Event]]:
    """Generated events grouped by (rule identity, trigger ``(site, seq)``).

    The rule key is an object identity (provenance fields reference the
    exact installed rule objects).  The *trigger* is keyed by its
    ``(site, seq)`` pair instead: a firing that crossed the wire carries a
    by-value reconstruction of its trigger — same site and sequence
    number, different object — and provenance must treat that as the same
    event.
    """
    index: dict[tuple[int, str, int], list[Event]] = {}
    for event in generated:
        if event.rule is None or event.trigger is None:
            continue
        key = (id(event.rule), event.trigger.site, event.trigger.seq)
        bucket = index.get(key)
        if bucket is None:
            bucket = index[key] = []
        bucket.append(event)
    return index


def _check_liveness(trace: ExecutionTrace, rules: list[Rule]) -> list[Violation]:
    from repro.core.conditions import TRUE  # local import to avoid cycle noise

    violations: list[Violation] = []
    provenance: dict[tuple[int, str, int], list[Event]] | None = None
    for rule in rules:
        if rule.is_prohibition:
            for event, __ in trace.events_matching(rule.lhs):
                violations.append(
                    Violation(
                        6,
                        f"rule {rule.name!r} prohibits this event",
                        event,
                    )
                )
            continue
        if rule.condition is not TRUE:
            # The LHS condition read local data we no longer have; skip.
            continue
        for event, bindings in trace.events_matching(rule.lhs):
            deadline = event.time + rule.delay
            if deadline > trace.horizon:
                continue  # obligation not yet due at end of trace
            if provenance is None:
                provenance = _provenance_index(trace.generated_events)
            previous_time = event.time
            for step in rule.steps:
                if step.condition is not TRUE:
                    break  # later steps' timing depends on this one; stop here
                found = _find_generated(
                    provenance, rule, event, step.template, previous_time, deadline
                )
                if found is None:
                    violations.append(
                        Violation(
                            6,
                            f"rule {rule.name!r}: no {step.template} within "
                            f"delay after trigger",
                            event,
                        )
                    )
                    break
                previous_time = found.time
    return violations


def _find_generated(
    provenance: dict[tuple[int, str, int], list[Event]],
    rule: Rule,
    trigger: Event,
    tmpl: Template,
    not_before: Ticks,
    deadline: Ticks,
) -> Event | None:
    for event in provenance.get((id(rule), trigger.site, trigger.seq), ()):
        if event.time < not_before or event.time > deadline:
            continue
        if match_desc(tmpl, event.desc) is not None:
            return event
    return None


def _check_in_order(generated_events: Sequence[Event]) -> list[Violation]:
    """Property 7: if two generated events come from *related* rules (same
    LHS site, same RHS site), their order must match their triggers' order."""
    violations: list[Violation] = []
    generated = [
        e for e in generated_events if e.rule is not None and e.trigger is not None
    ]
    by_sites: dict[tuple[str, str], list[Event]] = {}
    for event in generated:
        key = (event.trigger.site, event.site)
        by_sites.setdefault(key, []).append(event)
    for group in by_sites.values():
        for index, first in enumerate(group):
            for second in group[index + 1:]:
                t1, t3 = first.trigger.time, second.trigger.time
                t2, t4 = first.time, second.time
                if t1 == t3 or t2 == t4:
                    continue
                if (t1 < t3) != (t2 < t4):
                    violations.append(
                        Violation(
                            7,
                            "related rules fired out of order "
                            f"(triggers at {t1} vs {t3}, events at {t2} vs {t4})",
                            second,
                        )
                    )
    return violations


# -- naive reference implementation ------------------------------------------
#
# The pre-index implementations, kept as the executable specification of the
# trace queries and the validator.  tests/core/test_trace_equivalence.py
# generates randomized traces and asserts the indexed fast paths above agree
# with these full scans, query by query.


class ReferenceTraceQueries:
    """Full-scan reference implementations of the trace queries.

    Reads only the public snapshot (``trace.events``, ``trace.seeded``,
    ``trace.horizon``), never the indexes, so a disagreement with
    :class:`ExecutionTrace`'s fast paths is always an index bug.
    """

    def __init__(self, trace: ExecutionTrace) -> None:
        self.trace = trace

    def events_matching(self, tmpl: Template) -> Iterator[tuple[Event, Bindings]]:
        for event in self.trace.events:
            bindings = match_desc(tmpl, event.desc)
            if bindings is not None:
                yield event, bindings

    def events_of_kind(self, kind: EventKind) -> Iterator[Event]:
        return (e for e in self.trace.events if e.desc.kind is kind)

    def writes_to(self, ref: DataItemRef) -> Iterator[Event]:
        for event in self.trace.events:
            if event.desc.kind.is_write and event.desc.item == ref:
                yield event

    def refs_of_family(self, family: str) -> list[DataItemRef]:
        refs: set[DataItemRef] = set()
        for ref in self.trace.seeded:
            if ref.name == family:
                refs.add(ref)
        for event in self.trace.events:
            ref = event.desc.item
            if ref is not None and ref.name == family:
                refs.add(ref)
        return sorted(refs, key=lambda r: (r.name, tuple(map(str, r.args))))

    def timeline(self, ref: DataItemRef) -> Timeline:
        changes: list[tuple[Ticks, Value]] = [
            (0, self.trace.seeded.get(ref, MISSING))
        ]
        for event in self.writes_to(ref):
            changes.append((event.time, event.written_value))
        return Timeline(changes, self.trace.horizon)

    def value_at(self, ref: DataItemRef, time: Ticks) -> Value:
        return self.timeline(ref).value_at(time)


def validate_trace_naive(
    trace: ExecutionTrace, rules: list[Rule]
) -> list[Violation]:
    """The original pass-per-property validator (reference implementation)."""
    queries = ReferenceTraceQueries(trace)
    violations: list[Violation] = []
    events = trace.events

    # Property 1: nondecreasing time.
    for previous, current in zip(events, events[1:]):
        if current.time < previous.time:
            violations.append(Violation(1, "events out of time order", current))

    # Property 2: write events transform interpretations correctly.
    for event in events:
        if event.desc.kind.is_write:
            ref = event.desc.item
            assert ref is not None
            expected = event.old.updated(ref, event.written_value)
            if event.new != expected:
                violations.append(
                    Violation(2, "write event has inconsistent new state", event)
                )
        else:
            if event.new != event.old:
                violations.append(
                    Violation(2, "non-write event changed the state", event)
                )

    # Property 3: interpretations chain.
    for previous, current in zip(events, events[1:]):
        if current.old != previous.new:
            violations.append(
                Violation(3, "old state does not chain from previous event", current)
            )

    # Property 4: spontaneous events carry no provenance.
    for event in events:
        spontaneous_kind = event.desc.kind in (
            EventKind.SPONTANEOUS_WRITE,
            EventKind.PERIODIC,
        )
        if spontaneous_kind and (event.rule is not None or event.trigger is not None):
            violations.append(
                Violation(4, "spontaneous event carries rule/trigger", event)
            )

    # Property 5: generated events have consistent provenance.
    for event in events:
        if event.rule is None:
            continue
        _check_provenance(event, violations)

    # Property 6: rule liveness for unconditional steps.
    violations.extend(_check_liveness_naive(queries, rules))

    # Property 7: related rules fire in order.
    violations.extend(_check_in_order(events))

    return violations


def _check_liveness_naive(
    queries: ReferenceTraceQueries, rules: list[Rule]
) -> list[Violation]:
    from repro.core.conditions import TRUE  # local import to avoid cycle noise

    trace = queries.trace
    violations: list[Violation] = []
    for rule in rules:
        if rule.is_prohibition:
            for event, __ in queries.events_matching(rule.lhs):
                violations.append(
                    Violation(
                        6,
                        f"rule {rule.name!r} prohibits this event",
                        event,
                    )
                )
            continue
        if rule.condition is not TRUE:
            continue
        for event, bindings in queries.events_matching(rule.lhs):
            deadline = event.time + rule.delay
            if deadline > trace.horizon:
                continue
            previous_time = event.time
            for step in rule.steps:
                if step.condition is not TRUE:
                    break
                found = _find_generated_naive(
                    trace, rule, event, step.template, previous_time, deadline
                )
                if found is None:
                    violations.append(
                        Violation(
                            6,
                            f"rule {rule.name!r}: no {step.template} within "
                            f"delay after trigger",
                            event,
                        )
                    )
                    break
                previous_time = found.time
    return violations


def _find_generated_naive(
    trace: ExecutionTrace,
    rule: Rule,
    trigger: Event,
    tmpl: Template,
    not_before: Ticks,
    deadline: Ticks,
) -> Event | None:
    for event in trace.events:
        if event.time < not_before or event.time > deadline:
            continue
        # Trigger identity is (site, seq), not object identity: a firing
        # that crossed the wire carries a by-value trigger reconstruction.
        if (
            event.rule is rule
            and event.trigger is not None
            and event.trigger.site == trigger.site
            and event.trigger.seq == trigger.seq
        ):
            if match_desc(tmpl, event.desc) is not None:
                return event
    return None
