"""Execution traces and the valid-execution properties of Appendix A.2.

Every constraint-relevant event in a scenario is recorded, in time order, in
an :class:`ExecutionTrace`.  The trace maintains the running interpretation
(state of the traced items) so each recorded event carries correct ``old`` /
``new`` interpretations, derives per-item value *timelines* for the guarantee
checker, and can be validated against the seven properties that define a
valid execution in the paper's Appendix A.2.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.core.errors import TraceError
from repro.core.events import Event, EventDesc, EventKind
from repro.core.interpretations import Interpretation
from repro.core.items import MISSING, DataItemRef, Value
from repro.core.rules import Rule
from repro.core.templates import Template, match_desc
from repro.core.terms import Bindings
from repro.core.timebase import Ticks


@dataclass(frozen=True)
class TimelineSegment:
    """A maximal interval during which an item held one value.

    The segment covers ``[start, end)``; the final segment of a timeline has
    ``end`` equal to the trace horizon.
    """

    start: Ticks
    end: Ticks
    value: Value

    def covers(self, time: Ticks) -> bool:
        """Whether the (half-open) segment contains ``time``."""
        return self.start <= time < self.end

    @property
    def length(self) -> Ticks:
        """Duration of the segment in ticks."""
        return max(0, self.end - self.start)


class Timeline:
    """The piecewise-constant value history of one data item.

    Built from a trace: the item starts at its seeded value (or MISSING) and
    changes at each write event.  Queries are binary searches.
    """

    def __init__(self, changes: list[tuple[Ticks, Value]], horizon: Ticks):
        if not changes or changes[0][0] != 0:
            changes = [(0, MISSING)] + list(changes)
        # Collapse simultaneous changes (the last write at an instant wins),
        # then drop no-op changes so segments are maximal.  Two passes: a
        # same-instant overwrite can re-create an adjacent duplicate that
        # the first pass already let through.
        collapsed: list[tuple[Ticks, Value]] = []
        for time, value in changes:
            if collapsed and collapsed[-1][0] == time:
                collapsed[-1] = (time, value)
            else:
                collapsed.append((time, value))
        deduped: list[tuple[Ticks, Value]] = []
        for time, value in collapsed:
            if not deduped or deduped[-1][1] != value:
                deduped.append((time, value))
        self._times = [time for time, _ in deduped]
        self._values = [value for _, value in deduped]
        self.horizon = max(horizon, self._times[-1])

    def value_at(self, time: Ticks) -> Value:
        """The item's value at virtual time ``time``."""
        if time < 0:
            return MISSING
        index = bisect_right(self._times, time) - 1
        return self._values[index]

    def segments(self) -> Iterator[TimelineSegment]:
        """All maximal constant segments, in time order."""
        for index, start in enumerate(self._times):
            end = (
                self._times[index + 1]
                if index + 1 < len(self._times)
                else self.horizon
            )
            if end > start:
                yield TimelineSegment(start, end, self._values[index])

    def segments_with_value(self, value: Value) -> Iterator[TimelineSegment]:
        """Maximal segments during which the item held ``value``."""
        for segment in self.segments():
            if segment.value == value:
                yield segment

    def change_points(self) -> list[tuple[Ticks, Value]]:
        """The (time, new value) change list, starting at time 0."""
        return list(zip(self._times, self._values))

    def distinct_values(self) -> list[Value]:
        """Values taken over the trace, in order of first acquisition."""
        seen: list[Value] = []
        for value in self._values:
            if value not in seen:
                seen.append(value)
        return seen


@dataclass
class Violation:
    """One valid-execution property violation found by the validator."""

    property_number: int
    message: str
    event: Optional[Event] = None

    def __str__(self) -> str:
        prefix = f"property {self.property_number}: {self.message}"
        if self.event is not None:
            prefix += f" (event {self.event})"
        return prefix


class ExecutionTrace:
    """The recorded event sequence of one scenario run.

    The trace owns the authoritative interpretation of the traced items:
    callers record *what happened* (site + descriptor + provenance) and the
    trace computes the ``old``/``new`` interpretations, which guarantees
    valid-execution properties 2 and 3 by construction — the validator then
    re-checks them independently.
    """

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._current: dict[DataItemRef, Value] = {}
        self._seeded: dict[DataItemRef, Value] = {}
        self.horizon: Ticks = 0
        self._timeline_cache: dict[DataItemRef, tuple[int, Timeline]] = {}

    # -- recording -----------------------------------------------------------

    def seed(self, ref: DataItemRef, value: Value) -> None:
        """Set an item's initial (time-0) value without recording an event.

        Must be called before any event is recorded.
        """
        if self._events:
            raise TraceError("cannot seed a trace after events were recorded")
        self._current[ref] = value
        self._seeded[ref] = value

    def record(
        self,
        time: Ticks,
        site: str,
        desc: EventDesc,
        rule: Rule | None = None,
        trigger: Event | None = None,
    ) -> Event:
        """Record one event, computing its interpretations."""
        if self._events and time < self._events[-1].time:
            raise TraceError(
                f"event at {time} recorded after event at {self._events[-1].time}"
            )
        old = Interpretation(self._current)
        if desc.kind.is_write:
            assert desc.item is not None
            if desc.kind is EventKind.WRITE:
                self._current[desc.item] = desc.values[0]
            else:
                self._current[desc.item] = desc.values[1]
        new = Interpretation(self._current)
        event = Event(
            time=time,
            site=site,
            desc=desc,
            old=old,
            new=new,
            rule=rule,
            trigger=trigger,
        )
        self._events.append(event)
        self.horizon = max(self.horizon, time)
        return event

    def close(self, horizon: Ticks) -> None:
        """Extend the trace horizon to the end-of-run time."""
        self.horizon = max(self.horizon, horizon)

    # -- queries ---------------------------------------------------------------

    @property
    def events(self) -> list[Event]:
        """All recorded events, in order (do not mutate)."""
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def events_matching(self, tmpl: Template) -> Iterator[tuple[Event, Bindings]]:
        """All (event, matching interpretation) pairs for a template."""
        for event in self._events:
            bindings = match_desc(tmpl, event.desc)
            if bindings is not None:
                yield event, bindings

    def events_of_kind(self, kind: EventKind) -> Iterator[Event]:
        """All events with the given descriptor kind."""
        return (e for e in self._events if e.desc.kind is kind)

    def writes_to(self, ref: DataItemRef) -> Iterator[Event]:
        """All (generated or spontaneous) writes to ``ref``, in order."""
        for event in self._events:
            if event.desc.kind.is_write and event.desc.item == ref:
                yield event

    def timeline(self, ref: DataItemRef) -> Timeline:
        """The value history of ``ref`` over this trace."""
        cached = self._timeline_cache.get(ref)
        if cached is not None and cached[0] == len(self._events):
            return cached[1]
        changes: list[tuple[Ticks, Value]] = [(0, self._seeded.get(ref, MISSING))]
        for event in self.writes_to(ref):
            changes.append((event.time, event.written_value))
        timeline = Timeline(changes, self.horizon)
        self._timeline_cache[ref] = (len(self._events), timeline)
        return timeline

    def value_at(self, ref: DataItemRef, time: Ticks) -> Value:
        """Value of ``ref`` at ``time`` (MISSING before any seed/write)."""
        return self.timeline(ref).value_at(time)

    def current_value(self, ref: DataItemRef) -> Value:
        """Value of ``ref`` right now — O(1), no timeline construction."""
        return self._current.get(ref, MISSING)

    def refs_of_family(self, family: str) -> list[DataItemRef]:
        """All ground item refs of a parameterized family seen in the trace."""
        refs: set[DataItemRef] = set()
        for ref in self._seeded:
            if ref.name == family:
                refs.add(ref)
        for event in self._events:
            ref = event.desc.item
            if ref is not None and ref.name == family:
                refs.add(ref)
        return sorted(refs, key=lambda r: (r.name, tuple(map(str, r.args))))


def validate_trace(trace: ExecutionTrace, rules: list[Rule]) -> list[Violation]:
    """Check the seven valid-execution properties of Appendix A.2.

    Properties 1-5 are checked exactly.  Property 6 (rule liveness) is checked
    for every LHS match whose RHS steps carry the trivial condition; steps
    with non-trivial conditions depend on local shell state at firing time,
    which the trace does not retain, so a missing event for such a step is
    not reported (it may legitimately have been suppressed by its condition).
    Property 7 (in-order processing of related rules) is checked exactly over
    the recorded generated events.
    """
    violations: list[Violation] = []
    events = trace.events

    # Property 1: nondecreasing time.
    for previous, current in zip(events, events[1:]):
        if current.time < previous.time:
            violations.append(Violation(1, "events out of time order", current))

    # Property 2: write events transform interpretations correctly.
    for event in events:
        if event.desc.kind.is_write:
            ref = event.desc.item
            assert ref is not None
            expected = event.old.updated(ref, event.written_value)
            if event.new != expected:
                violations.append(
                    Violation(2, "write event has inconsistent new state", event)
                )
        else:
            if event.new != event.old:
                violations.append(
                    Violation(2, "non-write event changed the state", event)
                )

    # Property 3: interpretations chain.
    for previous, current in zip(events, events[1:]):
        if current.old != previous.new:
            violations.append(
                Violation(3, "old state does not chain from previous event", current)
            )

    # Property 4: spontaneous events carry no provenance.
    for event in events:
        spontaneous_kind = event.desc.kind in (
            EventKind.SPONTANEOUS_WRITE,
            EventKind.PERIODIC,
        )
        if spontaneous_kind and (event.rule is not None or event.trigger is not None):
            violations.append(
                Violation(4, "spontaneous event carries rule/trigger", event)
            )

    # Property 5: generated events have consistent provenance.
    for event in events:
        if event.rule is None:
            continue
        if event.trigger is None:
            violations.append(Violation(5, "generated event lacks a trigger", event))
            continue
        rule = event.rule
        bindings = match_desc(rule.lhs, event.trigger.desc)
        if bindings is None:
            violations.append(
                Violation(5, "trigger does not match the rule's LHS", event)
            )
            continue
        if not _desc_matches_some_step(rule, event.desc, bindings):
            violations.append(
                Violation(
                    5, "event is not an instantiation of any RHS template", event
                )
            )
        if event.trigger.time > event.time:
            violations.append(Violation(5, "event precedes its trigger", event))
        if event.time > event.trigger.time + rule.delay:
            violations.append(
                Violation(5, "event exceeds its rule's delay bound", event)
            )

    # Property 6: rule liveness for unconditional steps.
    violations.extend(_check_liveness(trace, rules))

    # Property 7: related rules fire in order.
    violations.extend(_check_in_order(trace))

    return violations


def _desc_matches_some_step(rule: Rule, desc: EventDesc, bindings: Bindings) -> bool:
    """Whether ``desc`` instantiates an RHS template under extended bindings."""
    for step in rule.steps:
        if step.template.kind is EventKind.FALSE:
            continue
        extended = match_desc(step.template, desc)
        if extended is None:
            continue
        consistent = all(
            extended.get(name, value) == value for name, value in bindings.items()
            if name in extended
        )
        if consistent:
            return True
    return False


def _check_liveness(trace: ExecutionTrace, rules: list[Rule]) -> list[Violation]:
    from repro.core.conditions import TRUE  # local import to avoid cycle noise

    violations: list[Violation] = []
    for rule in rules:
        if rule.is_prohibition:
            for event, __ in trace.events_matching(rule.lhs):
                violations.append(
                    Violation(
                        6,
                        f"rule {rule.name!r} prohibits this event",
                        event,
                    )
                )
            continue
        if rule.condition is not TRUE:
            # The LHS condition read local data we no longer have; skip.
            continue
        for event, bindings in trace.events_matching(rule.lhs):
            deadline = event.time + rule.delay
            if deadline > trace.horizon:
                continue  # obligation not yet due at end of trace
            previous_time = event.time
            for step in rule.steps:
                if step.condition is not TRUE:
                    break  # later steps' timing depends on this one; stop here
                found = _find_generated(
                    trace, rule, event, step.template, previous_time, deadline
                )
                if found is None:
                    violations.append(
                        Violation(
                            6,
                            f"rule {rule.name!r}: no {step.template} within "
                            f"delay after trigger",
                            event,
                        )
                    )
                    break
                previous_time = found.time
    return violations


def _find_generated(
    trace: ExecutionTrace,
    rule: Rule,
    trigger: Event,
    tmpl: Template,
    not_before: Ticks,
    deadline: Ticks,
) -> Event | None:
    for event in trace.events:
        if event.time < not_before or event.time > deadline:
            continue
        if event.rule is rule and event.trigger is trigger:
            if match_desc(tmpl, event.desc) is not None:
                return event
    return None


def _check_in_order(trace: ExecutionTrace) -> list[Violation]:
    """Property 7: if two generated events come from *related* rules (same
    LHS site, same RHS site), their order must match their triggers' order."""
    violations: list[Violation] = []
    generated = [e for e in trace.events if e.rule is not None and e.trigger is not None]
    by_sites: dict[tuple[str, str], list[Event]] = {}
    for event in generated:
        key = (event.trigger.site, event.site)
        by_sites.setdefault(key, []).append(event)
    for group in by_sites.values():
        for index, first in enumerate(group):
            for second in group[index + 1:]:
                t1, t3 = first.trigger.time, second.trigger.time
                t2, t4 = first.time, second.time
                if t1 == t3 or t2 == t4:
                    continue
                if (t1 < t3) != (t2 < t4):
                    violations.append(
                        Violation(
                            7,
                            "related rules fired out of order "
                            f"(triggers at {t1} vs {t3}, events at {t2} vs {t4})",
                            second,
                        )
                    )
    return violations
