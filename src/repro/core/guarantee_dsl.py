"""Text syntax for the guarantee language of Section 3.3.

Paper formulas translate almost verbatim; times are written in seconds::

    (Y = y)@t1 => (X = y)@t2 & t2 < t1                      guarantee (1)
    (X = x)@t1 => (Y = x)@t2 & t2 > t1                      guarantee (2)
    (Y = y1)@t1 & (Y = y2)@t2 & t1 < t2
        => (X = y1)@t3 & (X = y2)@t4 & t3 < t4              guarantee (3)
    (Y = y)@t1 => (X = y)@t2 & t1 - 6 < t2 & t2 < t1        guarantee (4)
    E(project('e1'))@t1 => E(salary('e1'))@t2
        & t2 >= t1 & t2 <= t1 + 86400                       Section 6.2 shape

Conventions:

- inside a state atom, the left identifier is the data item (optionally with
  literal arguments) and the right side is a literal or a lower-case *value
  variable*;
- ``@tvar`` anchors an atom to a time variable; variables first appearing
  left of ``=>`` are universal, fresh right-side ones existential (the
  paper's implicit quantification);
- ``E(item)@t`` / ``!E(item)@t`` are the existence predicate of Section 6.2;
- bare comparisons between time expressions (``t2 < t1``,
  ``t2 <= t1 + 86400``) are time constraints; numbers are seconds.

The parser produces a :class:`~repro.core.formula.GuaranteeFormula` for the
generic enumerative checker.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.core.errors import DslSyntaxError
from repro.core.formula import (
    ExistsAtom,
    GuaranteeFormula,
    StateAtom,
    TimeConstraint,
    TimeExpr,
)
from repro.core.items import DataItemRef, Value
from repro.core.timebase import seconds

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<implies>=>)
  | (?P<cmp><=|>=|==|!=|<|>|=)
  | (?P<number>\d+\.\d+|\d+|\.\d+)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<sym>[()@&!,+\-])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise DslSyntaxError(
                f"unexpected character {text[pos]!r} in guarantee",
                column=pos + 1,
            )
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "ws":
            tokens.append(_Token(kind, value, pos))
        pos = match.end()
    tokens.append(_Token("eof", "", pos))
    return tokens


class _GuaranteeParser:
    def __init__(self, tokens: list[_Token]):
        self.tokens = tokens
        self.index = 0

    def peek(self, ahead: int = 0) -> _Token:
        return self.tokens[min(self.index + ahead, len(self.tokens) - 1)]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def accept(self, kind: str, text: str | None = None) -> Optional[_Token]:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.advance()
        if token.kind != kind or (text is not None and token.text != text):
            raise DslSyntaxError(
                f"expected {text or kind!r}, found {token.text!r}",
                column=token.position + 1,
            )
        return token

    # -- pieces ----------------------------------------------------------------

    def parse_literal(self, token: _Token) -> Value:
        if token.kind == "number":
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "string":
            return token.text[1:-1]
        if token.kind == "ident" and token.text in ("true", "false"):
            return token.text == "true"
        raise DslSyntaxError(
            f"expected a literal, found {token.text!r}",
            column=token.position + 1,
        )

    def parse_itemref(self) -> DataItemRef:
        name = self.expect("ident").text
        args: list[Value] = []
        if self.accept("sym", "("):
            if not self.accept("sym", ")"):
                args.append(self.parse_literal(self.advance()))
                while self.accept("sym", ","):
                    args.append(self.parse_literal(self.advance()))
                self.expect("sym", ")")
        return DataItemRef(name, tuple(args))

    def parse_time_expr(self) -> TimeExpr:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return TimeExpr(None, seconds(self.parse_literal(token)))
        name = self.expect("ident").text
        offset = 0
        sign_token = self.peek()
        if sign_token.kind == "sym" and sign_token.text in ("+", "-"):
            self.advance()
            number = self.expect("number")
            magnitude = seconds(self.parse_literal(number))
            offset = magnitude if sign_token.text == "+" else -magnitude
        return TimeExpr(name, offset)

    def parse_state_atom(self) -> StateAtom:
        self.expect("sym", "(")
        item = self.parse_itemref()
        op = self.expect("cmp").text
        value_token = self.advance()
        value_var: Optional[str] = None
        value_const: Value = None
        if value_token.kind == "ident" and value_token.text[0].islower() and (
            value_token.text not in ("true", "false")
        ):
            value_var = value_token.text
        else:
            value_const = self.parse_literal(value_token)
        self.expect("sym", ")")
        self.expect("sym", "@")
        at = self.expect("ident").text
        return StateAtom(item, op, value_var, value_const, at)

    def parse_exists_atom(self, negated: bool) -> ExistsAtom:
        self.expect("ident", "E")
        self.expect("sym", "(")
        item = self.parse_itemref()
        self.expect("sym", ")")
        self.expect("sym", "@")
        at = self.expect("ident").text
        return ExistsAtom(item, at, negated)

    def parse_atom(self):
        token = self.peek()
        if token.kind == "sym" and token.text == "!":
            self.advance()
            return self.parse_exists_atom(negated=True)
        if token.kind == "ident" and token.text == "E" and (
            self.peek(1).kind == "sym" and self.peek(1).text == "("
        ):
            return self.parse_exists_atom(negated=False)
        if token.kind == "sym" and token.text == "(":
            return self.parse_state_atom()
        # otherwise: a time constraint
        left = self.parse_time_expr()
        op = self.expect("cmp").text
        right = self.parse_time_expr()
        return TimeConstraint(left, op, right)

    def parse_clause(self) -> tuple:
        atoms = [self.parse_atom()]
        while self.accept("sym", "&"):
            atoms.append(self.parse_atom())
        return tuple(atoms)

    def parse_formula(self) -> GuaranteeFormula:
        lhs = self.parse_clause()
        self.expect("implies")
        rhs = self.parse_clause()
        trailing = self.peek()
        if trailing.kind != "eof":
            raise DslSyntaxError(
                f"trailing input after guarantee: {trailing.text!r}",
                column=trailing.position + 1,
            )
        return GuaranteeFormula(lhs, rhs)


def parse_guarantee(text: str) -> GuaranteeFormula:
    """Parse a paper-style guarantee formula."""
    return _GuaranteeParser(_tokenize(text)).parse_formula()
