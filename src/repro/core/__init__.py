"""The paper's formal framework: events, rules, interfaces, strategies,
guarantees, and execution traces.

See :mod:`repro` for the top-level public API and DESIGN.md for the mapping
from paper sections to modules.
"""

from repro.core.items import MISSING, DataItemRef, Locations, item
from repro.core.terms import WILDCARD, Const, ItemPattern, Var, pattern
from repro.core.events import (
    Event,
    EventDesc,
    EventKind,
    notify_desc,
    periodic_desc,
    read_request_desc,
    read_response_desc,
    spontaneous_write_desc,
    write_desc,
    write_request_desc,
)
from repro.core.templates import FALSE_TEMPLATE, Template, instantiate, match_desc, template
from repro.core.rules import RhsStep, Rule, RuleRole
from repro.core.dsl import parse_condition, parse_event_template, parse_rule, parse_rules
from repro.core.formula import FormulaChecker, GuaranteeFormula
from repro.core.guarantee_dsl import parse_guarantee
from repro.core.trace import ExecutionTrace, Timeline, validate_trace
from repro.core.timebase import Ticks, days, hours, minutes, seconds, to_seconds

__all__ = [
    "MISSING",
    "DataItemRef",
    "Locations",
    "item",
    "WILDCARD",
    "Const",
    "ItemPattern",
    "Var",
    "pattern",
    "Event",
    "EventDesc",
    "EventKind",
    "notify_desc",
    "periodic_desc",
    "read_request_desc",
    "read_response_desc",
    "spontaneous_write_desc",
    "write_desc",
    "write_request_desc",
    "FALSE_TEMPLATE",
    "Template",
    "instantiate",
    "match_desc",
    "template",
    "RhsStep",
    "Rule",
    "RuleRole",
    "parse_condition",
    "parse_event_template",
    "parse_rule",
    "parse_rules",
    "FormulaChecker",
    "GuaranteeFormula",
    "parse_guarantee",
    "ExecutionTrace",
    "Timeline",
    "validate_trace",
    "Ticks",
    "days",
    "hours",
    "minutes",
    "seconds",
    "to_seconds",
]
