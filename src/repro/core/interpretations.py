"""Interpretations: (partial) states of the constraint-relevant data.

Appendix A.1 defines an interpretation as a function mapping each data item
to a value, where items may map to *null*, meaning "unconstrained".  Events
carry an ``old`` and a ``new`` interpretation; for write events they differ
exactly on the written item, and consecutive events chain
(``E_i.old == E_{i-1}.new``, valid-execution property 3).

Interpretations only model constraint-relevant items — the handful of items
the constraint manager was told about — not entire databases.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.core.items import MISSING, DataItemRef, Value


class Interpretation(Mapping[DataItemRef, Value]):
    """An immutable partial mapping from data items to values.

    Items absent from the mapping are *null* / unconstrained.  Items mapped
    to :data:`~repro.core.items.MISSING` explicitly do not exist (this is how
    the ``E(X)`` exists predicate is evaluated).
    """

    __slots__ = ("_values",)

    def __init__(self, values: Mapping[DataItemRef, Value] | None = None) -> None:
        self._values: dict[DataItemRef, Value] = dict(values or {})

    def __getitem__(self, ref: DataItemRef) -> Value:
        return self._values[ref]

    def __iter__(self) -> Iterator[DataItemRef]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(
            self._values.items(), key=lambda kv: str(kv[0])))
        return f"Interpretation({{{inner}}})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interpretation):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(frozenset(self._values.items()))

    def specifies(self, ref: DataItemRef) -> bool:
        """Whether this interpretation constrains ``ref`` at all."""
        return ref in self._values

    def exists(self, ref: DataItemRef) -> bool:
        """The ``E(X)`` predicate: item is specified and not MISSING."""
        value = self._values.get(ref, MISSING)
        return value is not MISSING

    def updated(self, ref: DataItemRef, value: Value) -> "Interpretation":
        """A new interpretation with ``ref`` set to ``value``.

        This is the Appendix A.2 property-2 transformation:
        ``new = old - {X = a} + {X = b}``.
        """
        values = dict(self._values)
        values[ref] = value
        return Interpretation(values)

    def restricted(self, refs: set[DataItemRef]) -> "Interpretation":
        """A new interpretation constraining only the given items."""
        return Interpretation(
            {k: v for k, v in self._values.items() if k in refs}
        )


#: The fully unconstrained interpretation.
EMPTY_INTERPRETATION = Interpretation()
