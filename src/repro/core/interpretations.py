"""Interpretations: (partial) states of the constraint-relevant data.

Appendix A.1 defines an interpretation as a function mapping each data item
to a value, where items may map to *null*, meaning "unconstrained".  Events
carry an ``old`` and a ``new`` interpretation; for write events they differ
exactly on the written item, and consecutive events chain
(``E_i.old == E_{i-1}.new``, valid-execution property 3).

Interpretations only model constraint-relevant items — the handful of items
the constraint manager was told about — not entire databases.

Two representations share the :class:`Interpretation` interface:

- the plain dict-backed form, for hand-built states; and
- :class:`VersionedInterpretation`, a copy-on-write *view* over a shared
  :class:`StateJournal`.  The trace records one journal write per write
  event — O(1), independent of how many items are traced — and each event's
  ``old``/``new`` is a view pinned to a journal version.  Per-item lookups
  are binary searches over that item's write history; the full mapping is
  materialized (and cached) only if someone iterates or compares it against
  a foreign interpretation.
"""

from __future__ import annotations

from bisect import bisect_right
from operator import itemgetter
from typing import Iterator, Mapping, Optional

from repro.core.items import MISSING, DataItemRef, Value

_entry_version = itemgetter(0)


class Interpretation(Mapping[DataItemRef, Value]):
    """An immutable partial mapping from data items to values.

    Items absent from the mapping are *null* / unconstrained.  Items mapped
    to :data:`~repro.core.items.MISSING` explicitly do not exist (this is how
    the ``E(X)`` exists predicate is evaluated).
    """

    __slots__ = ("_values",)

    def __init__(self, values: Mapping[DataItemRef, Value] | None = None) -> None:
        self._values: dict[DataItemRef, Value] = dict(values or {})

    def __getitem__(self, ref: DataItemRef) -> Value:
        return self._values[ref]

    def __iter__(self) -> Iterator[DataItemRef]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(
            self._values.items(), key=lambda kv: str(kv[0])))
        return f"Interpretation({{{inner}}})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interpretation):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(frozenset(self._values.items()))

    def specifies(self, ref: DataItemRef) -> bool:
        """Whether this interpretation constrains ``ref`` at all."""
        return ref in self._values

    def exists(self, ref: DataItemRef) -> bool:
        """The ``E(X)`` predicate: item is specified and not MISSING."""
        value = self._values.get(ref, MISSING)
        return value is not MISSING

    def updated(self, ref: DataItemRef, value: Value) -> "Interpretation":
        """A new interpretation with ``ref`` set to ``value``.

        This is the Appendix A.2 property-2 transformation:
        ``new = old - {X = a} + {X = b}``.
        """
        values = dict(self._values)
        values[ref] = value
        return Interpretation(values)

    def restricted(self, refs: set[DataItemRef]) -> "Interpretation":
        """A new interpretation constraining only the given items."""
        return Interpretation(
            {k: v for k, v in self._values.items() if k in refs}
        )


class StateJournal:
    """The append-only, versioned write history of one execution's state.

    Version 0 is the seeded initial state; each :meth:`write` produces the
    next version.  Every version stays addressable forever: per item the
    journal keeps the ``(version, value)`` list of its writes, so the value
    of any item at any version is one binary search away, and the set of
    items specified at a version is a prefix of the first-specified order.
    """

    __slots__ = ("_history", "_order", "_log", "_current_view", "materializations")

    def __init__(self) -> None:
        #: Per item: the (version, value) list of its seed + writes.
        self._history: dict[DataItemRef, list[tuple[int, Value]]] = {}
        #: (first-specified version, item), in first-specified order.
        self._order: list[tuple[int, DataItemRef]] = []
        #: ``_log[i]`` is the (item, value) write that produced version i+1.
        self._log: list[tuple[DataItemRef, Value]] = []
        self._current_view: Optional["VersionedInterpretation"] = None
        #: How many views had to materialize a full dict (diagnostics).
        self.materializations = 0

    @property
    def version(self) -> int:
        """The current (latest) version number."""
        return len(self._log)

    def __len__(self) -> int:
        return len(self._order)

    def seed(self, ref: DataItemRef, value: Value) -> None:
        """Set an item's version-0 value.  Only valid before any write."""
        if self._log:
            raise ValueError("cannot seed a journal after writes")
        history = self._history.get(ref)
        if history is None:
            self._history[ref] = [(0, value)]
            self._order.append((0, ref))
        else:
            history[0] = (0, value)
        self._current_view = None

    def write(self, ref: DataItemRef, value: Value) -> int:
        """Append one write, returning the version it produced.  O(1)."""
        self._log.append((ref, value))
        version = len(self._log)
        history = self._history.get(ref)
        if history is None:
            self._history[ref] = [(version, value)]
            self._order.append((version, ref))
        else:
            history.append((version, value))
        self._current_view = None
        return version

    def view(self, version: int | None = None) -> "VersionedInterpretation":
        """An interpretation view pinned to ``version`` (default: current).

        The current-version view is interned, so consecutive events that do
        not write share one ``old``/``new`` object and chain checks are
        identity comparisons.
        """
        if version is None or version == len(self._log):
            view = self._current_view
            if view is None:
                view = VersionedInterpretation(self, len(self._log))
                self._current_view = view
            return view
        return VersionedInterpretation(self, version)

    def lookup(self, ref: DataItemRef, version: int) -> tuple[bool, Value]:
        """``(specified, value)`` of ``ref`` at ``version``."""
        history = self._history.get(ref)
        if history is None:
            return False, MISSING
        index = bisect_right(history, version, key=_entry_version)
        if index == 0:
            return False, MISSING
        return True, history[index - 1][1]

    def specifies(self, ref: DataItemRef, version: int) -> bool:
        """Whether ``ref`` was seeded or written at or before ``version``."""
        history = self._history.get(ref)
        return history is not None and history[0][0] <= version

    def current_value(self, ref: DataItemRef, default: Value = MISSING) -> Value:
        """The latest value of ``ref`` — O(1)."""
        history = self._history.get(ref)
        return history[-1][1] if history else default

    def size_at(self, version: int) -> int:
        """How many items are specified at ``version``."""
        return bisect_right(self._order, version, key=_entry_version)

    def refs_at(self, version: int) -> Iterator[DataItemRef]:
        """The items specified at ``version``, in first-specified order."""
        count = bisect_right(self._order, version, key=_entry_version)
        return iter([ref for __, ref in self._order[:count]])

    def writes_between(self, lo: int, hi: int) -> list[tuple[DataItemRef, Value]]:
        """The raw journal writes in versions ``(lo, hi]``, in order."""
        return self._log[lo:hi]

    def effective_delta(self, lo: int, hi: int) -> dict[DataItemRef, Value]:
        """Items whose value at version ``hi`` differs from version ``lo``.

        Cost is proportional to the number of writes between the versions,
        not to the state size — this is what makes equality of two views of
        one journal cheap.
        """
        written: dict[DataItemRef, Value] = {}
        for ref, value in self._log[lo:hi]:
            written[ref] = value
        changed: dict[DataItemRef, Value] = {}
        for ref, value in written.items():
            specified, before = self.lookup(ref, lo)
            if not specified or before != value:
                changed[ref] = value
        return changed

    def materialize(self, version: int) -> dict[DataItemRef, Value]:
        """The full item→value dict at ``version`` (one binary search per item)."""
        self.materializations += 1
        values: dict[DataItemRef, Value] = {}
        for first, ref in self._order:
            if first > version:
                break
            history = self._history[ref]
            index = bisect_right(history, version, key=_entry_version)
            values[ref] = history[index - 1][1]
        return values


class VersionedInterpretation(Interpretation):
    """A copy-on-write interpretation: a (journal, version) pair.

    Behaves exactly like the dict-backed :class:`Interpretation` over the
    journal's state at the pinned version.  Item lookups and the exists
    predicate never build the full mapping; iteration, hashing, ``repr`` and
    comparisons against foreign interpretations materialize it lazily (once,
    cached).  Equality between two views of the same journal is decided from
    the write log alone.
    """

    __slots__ = ("_journal", "_version", "_cache")

    def __init__(self, journal: StateJournal, version: int) -> None:
        self._journal = journal
        self._version = version
        self._cache: dict[DataItemRef, Value] | None = None

    @property
    def _values(self) -> dict[DataItemRef, Value]:  # type: ignore[override]
        cache = self._cache
        if cache is None:
            cache = self._journal.materialize(self._version)
            self._cache = cache
        return cache

    @property
    def version(self) -> int:
        """The journal version this view is pinned to."""
        return self._version

    def __getitem__(self, ref: DataItemRef) -> Value:
        specified, value = self._journal.lookup(ref, self._version)
        if not specified:
            raise KeyError(ref)
        return value

    def __contains__(self, ref: object) -> bool:
        if not isinstance(ref, DataItemRef):
            return False
        return self._journal.specifies(ref, self._version)

    def __iter__(self) -> Iterator[DataItemRef]:
        return self._journal.refs_at(self._version)

    def __len__(self) -> int:
        return self._journal.size_at(self._version)

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if (
            isinstance(other, VersionedInterpretation)
            and other._journal is self._journal
        ):
            lo, hi = sorted((self._version, other._version))
            if lo == hi:
                return True
            return not self._journal.effective_delta(lo, hi)
        if not isinstance(other, Interpretation):
            return NotImplemented
        return self._values == other._values

    __hash__ = Interpretation.__hash__

    def specifies(self, ref: DataItemRef) -> bool:
        """Whether this interpretation constrains ``ref`` at all."""
        return self._journal.specifies(ref, self._version)

    def exists(self, ref: DataItemRef) -> bool:
        """The ``E(X)`` predicate: item is specified and not MISSING."""
        specified, value = self._journal.lookup(ref, self._version)
        return specified and value is not MISSING


def write_delta(
    old: Interpretation, new: Interpretation
) -> list[tuple[DataItemRef, Value]] | None:
    """The journal writes separating two views, or ``None`` if unrelated.

    The trace validator's property-2 fast path: for events recorded through
    a trace, ``old``/``new`` are views of one journal and the write that
    separates them is read straight off the log instead of diffing two
    materialized dicts.
    """
    if (
        isinstance(old, VersionedInterpretation)
        and isinstance(new, VersionedInterpretation)
        and old._journal is new._journal
        and old._version <= new._version
    ):
        return old._journal.writes_between(old._version, new._version)
    return None


#: The fully unconstrained interpretation.
EMPTY_INTERPRETATION = Interpretation()
