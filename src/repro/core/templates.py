"""Event templates and matching interpretations (Appendix A.1).

A template is an event descriptor in which components may be parameterized
(variables) or wild-carded.  ``W_s(X, b)`` denotes the set of spontaneous
write descriptors to ``X`` with any new value; the paper treats it as
shorthand for ``W_s(X, *, b)``, and so does :func:`template`.

An event *matches* a template when there is an interpretation of the
template's variables whose substitution yields the event's descriptor; that
interpretation is the *matching interpretation* ``mi(E, T)`` used to carry
bindings from a rule's left-hand side to its right-hand side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.events import EventDesc, EventKind
from repro.core.items import DataItemRef
from repro.core.terms import (
    FAMILY_WILDCARD,
    WILDCARD,
    Bindings,
    Const,
    ItemPattern,
    Term,
    Var,
    ground_item,
    ground_term,
    match_item,
    match_term,
)

#: A pre-compiled template matcher: descriptor in, matching interpretation
#: (or ``None``) out.  Produced by :func:`compile_matcher`.
Matcher = Callable[[EventDesc], Optional[Bindings]]


@dataclass(frozen=True)
class Template:
    """An event template: kind, item pattern, and value terms.

    The false template ``F`` (:data:`FALSE_TEMPLATE`) matches no event; it is
    used on rule right-hand sides to state prohibitions such as the
    "no spontaneous writes" interface.
    """

    kind: EventKind
    item: Optional[ItemPattern]
    values: tuple[Term, ...] = ()

    def __post_init__(self) -> None:
        if self.kind is EventKind.FALSE:
            return
        if self.kind.takes_item and self.item is None:
            raise ValueError(f"{self.kind.value} template requires an item pattern")
        if not self.kind.takes_item and self.item is not None:
            raise ValueError(f"{self.kind.value} template takes no item pattern")
        if len(self.values) != self.kind.value_arity:
            raise ValueError(
                f"{self.kind.value} takes {self.kind.value_arity} value term(s), "
                f"got {len(self.values)}"
            )

    def __str__(self) -> str:
        if self.kind is EventKind.FALSE:
            return "FALSE"
        if self.kind is EventKind.PERIODIC and isinstance(
            self.values[0], Const
        ):
            from repro.core.timebase import to_seconds

            return f"P({to_seconds(self.values[0].value):g})"
        parts: list[str] = []
        if self.item is not None:
            parts.append(str(self.item))
        parts.extend(str(v) for v in self.values)
        return f"{self.kind.value}({', '.join(parts)})"

    @property
    def item_family(self) -> Optional[str]:
        """The item family name the template mentions, if any."""
        return self.item.name if self.item is not None else None

    @property
    def dispatch_family(self) -> Optional[str]:
        """The family this template can be *keyed* by for event dispatch.

        ``None`` for item-less templates (``P``, ``F``) and for
        family-variable templates (:data:`~repro.core.terms.FAMILY_WILDCARD`
        patterns), which must be consulted for every event of their kind.
        """
        if self.item is None or self.item.name == FAMILY_WILDCARD:
            return None
        return self.item.name

    def variables(self) -> set[str]:
        """All variable names appearing anywhere in the template."""
        found: set[str] = set()
        if self.item is not None:
            found |= self.item.variables()
        for term in self.values:
            if isinstance(term, Var):
                found.add(term.name)
        return found


#: The template that matches no event (the paper's special event ``F``).
FALSE_TEMPLATE = Template(EventKind.FALSE, None, ())


def _coerce_term(value: object) -> Term:
    if isinstance(value, Term):
        return value
    if isinstance(value, str):
        return Var(value)
    return Const(value)


def template(kind: EventKind, item: ItemPattern | None, *values: object) -> Template:
    """Build a template; bare strings become variables, other values constants.

    For ``Ws`` the paper's two-argument shorthand is honoured: a single value
    term is treated as the *new* value with a wildcard old value.
    """
    terms = tuple(_coerce_term(v) for v in values)
    if kind is EventKind.SPONTANEOUS_WRITE and len(terms) == 1:
        terms = (WILDCARD, terms[0])
    return Template(kind, item, terms)


def match_desc(tmpl: Template, desc: EventDesc) -> Optional[Bindings]:
    """Match a ground descriptor against a template.

    Returns the matching interpretation (bindings dict) or ``None``.  The
    returned dict is fresh; callers may extend it.
    """
    if tmpl.kind is EventKind.FALSE:
        return None
    if tmpl.kind is not desc.kind:
        return None
    bindings: Bindings = {}
    if tmpl.item is not None:
        assert desc.item is not None  # enforced by EventDesc invariant
        if not match_item(tmpl.item, desc.item, bindings):
            return None
    for term, value in zip(tmpl.values, desc.values):
        if not match_term(term, value, bindings):
            return None
    return bindings


def _compile_term(term: Term) -> Callable[[object, Bindings], bool]:
    """Specialize one term into a closure ``(value, bindings) -> matched``."""
    if term is WILDCARD:
        return lambda value, bindings: True
    if isinstance(term, Const):
        expected = term.value
        return lambda value, bindings: value == expected
    if isinstance(term, Var):
        name = term.name

        def check_or_bind(value: object, bindings: Bindings) -> bool:
            if name in bindings:
                return bindings[name] == value
            bindings[name] = value
            return True

        return check_or_bind
    raise TypeError(f"not a matchable term: {term!r}")


def compile_matcher(tmpl: Template) -> Matcher:
    """Pre-compile a template into a matcher closure.

    The returned callable is semantically identical to
    ``lambda desc: match_desc(tmpl, desc)`` but resolves the template's
    structure — kind, family, per-term dispatch — once at compile time
    instead of re-interpreting it on every event.  Rule engines that match
    the same LHS against many events (the CM-Shell's dispatch loop) install
    one compiled matcher per rule.
    """
    if tmpl.kind is EventKind.FALSE:
        return lambda desc: None
    kind = tmpl.kind
    value_tests = tuple(_compile_term(term) for term in tmpl.values)
    if tmpl.item is None:

        def itemless_matcher(desc: EventDesc) -> Optional[Bindings]:
            if desc.kind is not kind:
                return None
            bindings: Bindings = {}
            for test, value in zip(value_tests, desc.values):
                if not test(value, bindings):
                    return None
            return bindings

        return itemless_matcher

    family = tmpl.item.name
    any_family = family == FAMILY_WILDCARD
    arg_tests = tuple(_compile_term(term) for term in tmpl.item.args)
    arg_count = len(arg_tests)

    def matcher(desc: EventDesc) -> Optional[Bindings]:
        if desc.kind is not kind:
            return None
        item = desc.item
        if item is None:
            return None
        if not any_family and item.name != family:
            return None
        if len(item.args) != arg_count:
            return None
        bindings: Bindings = {}
        for test, value in zip(arg_tests, item.args):
            if not test(value, bindings):
                return None
        for test, value in zip(value_tests, desc.values):
            if not test(value, bindings):
                return None
        return bindings

    return matcher


def instantiate(tmpl: Template, bindings: Bindings) -> EventDesc:
    """Ground a template with bindings, yielding an event descriptor.

    All variables must be bound (the paper's semantics pass the matching
    interpretation of the LHS to the RHS; RHS-only variables in templates are
    not supported — they would denote nondeterministic values).
    """
    if tmpl.kind is EventKind.FALSE:
        raise ValueError("the false template cannot be instantiated")
    ref: Optional[DataItemRef] = None
    if tmpl.item is not None:
        ref = ground_item(tmpl.item, bindings)
    values = tuple(ground_term(term, bindings) for term in tmpl.values)
    return EventDesc(tmpl.kind, ref, values)
