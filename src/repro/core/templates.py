"""Event templates and matching interpretations (Appendix A.1).

A template is an event descriptor in which components may be parameterized
(variables) or wild-carded.  ``W_s(X, b)`` denotes the set of spontaneous
write descriptors to ``X`` with any new value; the paper treats it as
shorthand for ``W_s(X, *, b)``, and so does :func:`template`.

An event *matches* a template when there is an interpretation of the
template's variables whose substitution yields the event's descriptor; that
interpretation is the *matching interpretation* ``mi(E, T)`` used to carry
bindings from a rule's left-hand side to its right-hand side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.events import EventDesc, EventKind
from repro.core.items import DataItemRef
from repro.core.terms import (
    WILDCARD,
    Bindings,
    Const,
    ItemPattern,
    Term,
    Var,
    ground_item,
    ground_term,
    match_item,
    match_term,
)


@dataclass(frozen=True)
class Template:
    """An event template: kind, item pattern, and value terms.

    The false template ``F`` (:data:`FALSE_TEMPLATE`) matches no event; it is
    used on rule right-hand sides to state prohibitions such as the
    "no spontaneous writes" interface.
    """

    kind: EventKind
    item: Optional[ItemPattern]
    values: tuple[Term, ...] = ()

    def __post_init__(self) -> None:
        if self.kind is EventKind.FALSE:
            return
        if self.kind.takes_item and self.item is None:
            raise ValueError(f"{self.kind.value} template requires an item pattern")
        if not self.kind.takes_item and self.item is not None:
            raise ValueError(f"{self.kind.value} template takes no item pattern")
        if len(self.values) != self.kind.value_arity:
            raise ValueError(
                f"{self.kind.value} takes {self.kind.value_arity} value term(s), "
                f"got {len(self.values)}"
            )

    def __str__(self) -> str:
        if self.kind is EventKind.FALSE:
            return "FALSE"
        if self.kind is EventKind.PERIODIC and isinstance(
            self.values[0], Const
        ):
            from repro.core.timebase import to_seconds

            return f"P({to_seconds(self.values[0].value):g})"
        parts: list[str] = []
        if self.item is not None:
            parts.append(str(self.item))
        parts.extend(str(v) for v in self.values)
        return f"{self.kind.value}({', '.join(parts)})"

    @property
    def item_family(self) -> Optional[str]:
        """The item family name the template mentions, if any."""
        return self.item.name if self.item is not None else None

    def variables(self) -> set[str]:
        """All variable names appearing anywhere in the template."""
        found: set[str] = set()
        if self.item is not None:
            found |= self.item.variables()
        for term in self.values:
            if isinstance(term, Var):
                found.add(term.name)
        return found


#: The template that matches no event (the paper's special event ``F``).
FALSE_TEMPLATE = Template(EventKind.FALSE, None, ())


def _coerce_term(value: object) -> Term:
    if isinstance(value, Term):
        return value
    if isinstance(value, str):
        return Var(value)
    return Const(value)


def template(kind: EventKind, item: ItemPattern | None, *values: object) -> Template:
    """Build a template; bare strings become variables, other values constants.

    For ``Ws`` the paper's two-argument shorthand is honoured: a single value
    term is treated as the *new* value with a wildcard old value.
    """
    terms = tuple(_coerce_term(v) for v in values)
    if kind is EventKind.SPONTANEOUS_WRITE and len(terms) == 1:
        terms = (WILDCARD, terms[0])
    return Template(kind, item, terms)


def match_desc(tmpl: Template, desc: EventDesc) -> Optional[Bindings]:
    """Match a ground descriptor against a template.

    Returns the matching interpretation (bindings dict) or ``None``.  The
    returned dict is fresh; callers may extend it.
    """
    if tmpl.kind is EventKind.FALSE:
        return None
    if tmpl.kind is not desc.kind:
        return None
    bindings: Bindings = {}
    if tmpl.item is not None:
        assert desc.item is not None  # enforced by EventDesc invariant
        if not match_item(tmpl.item, desc.item, bindings):
            return None
    for term, value in zip(tmpl.values, desc.values):
        if not match_term(term, value, bindings):
            return None
    return bindings


def instantiate(tmpl: Template, bindings: Bindings) -> EventDesc:
    """Ground a template with bindings, yielding an event descriptor.

    All variables must be bound (the paper's semantics pass the matching
    interpretation of the LHS to the RHS; RHS-only variables in templates are
    not supported — they would denote nondeterministic values).
    """
    if tmpl.kind is EventKind.FALSE:
        raise ValueError("the false template cannot be instantiated")
    ref: Optional[DataItemRef] = None
    if tmpl.item is not None:
        ref = ground_item(tmpl.item, bindings)
    values = tuple(ground_term(term, bindings) for term in tmpl.values)
    return EventDesc(tmpl.kind, ref, values)
