"""Install-time compilation of rules into flat executable programs.

The CM-Shell's inner loop — match ``E1 ∧ C →δ E2``, bind, evaluate
conditions, emit RHS events — used to tree-walk the rule's ASTs on every
firing: :func:`~repro.core.conditions.evaluate` re-dispatched on node types,
:func:`~repro.core.terms.ground_term` re-resolved every item and value term,
and each RHS step copied the bindings dict just to add ``now``.  Active-rule
systems get their throughput from compiling rules into executable programs
once, at installation, and running *those* per event; this module does the
same for the paper's rule language:

- the LHS template becomes a **slot matcher**: the rule's variables are
  assigned fixed integer slots (LHS template variables by first occurrence,
  then binder variables, then the implicit ``now``), and matching fills a
  flat list by position — no dict allocation, no per-term closure dispatch;
- binder expressions, the LHS condition, and every RHS step condition are
  compiled into closures over ``(slots, local)`` with **constant
  subexpressions folded** at compile time (a condition that folds to true
  disappears from the program entirely; a step whose condition folds to
  false is dropped);
- local-data reads (``X``, ``cache(n)``) are routed through
  **pre-resolved accessors**: the :class:`~repro.core.items.DataItemRef` is
  built once at compile time whenever the pattern is ground;
- each RHS step's event template becomes an emission plan — a kind tag, a
  ``make_ref`` closure (a constant when the pattern is ground), and a
  ``make_value`` closure (a slot read or a constant) — and whether a read
  request is an *enumerating* read is decided statically, since the set of
  bound variables is fixed by the rule's shape;
- the per-step ``dict(bindings)`` copy is gone: ``now`` has a dedicated
  slot written once per firing, and RHS steps never bind anything new.

The tree-walking ``evaluate()``/``ground_term`` path remains the reference
implementation: a rule the compiler cannot specialize raises
:class:`~repro.core.errors.CompileError` and the shell falls back to it
(counted in ``stats()['rules_fallback']``), and ``install(compiled=False)``
forces the fallback for debugging.  Randomized equivalence tests
(``tests/core/test_compile.py``, ``tests/cm/test_compiled_equivalence.py``)
hold the compiled programs to the reference semantics, exceptions included.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.conditions import (
    ARITH_OPS,
    COMPARE_OPS,
    Binary,
    Call,
    Expr,
    ItemRead,
    Literal,
    LocalData,
    Name,
    Unary,
)
from repro.core.errors import BindingError, CompileError
from repro.core.events import EventKind
from repro.core.items import MISSING, DataItemRef, Value
from repro.core.rules import Rule
from repro.core.templates import Template
from repro.core.terms import (
    FAMILY_WILDCARD,
    WILDCARD,
    Const,
    ItemPattern,
    Term,
    Var,
)

#: A compiled expression: slot list and local data in, value out.  May raise
#: :class:`BindingError`/:class:`TypeError` exactly where the tree-walking
#: evaluator would (the shell treats both as "rule not applicable").
ValueFn = Callable[[list, LocalData], Value]

#: A compiled slot matcher: ground descriptor in, slot list (or ``None``) out.
SlotMatcher = Callable[[object], Optional[list]]

#: RHS event kinds the compiler knows how to emit.  Anything else (which the
#: shell would reject with a SpecError at firing time) forces the
#: interpreted fallback, preserving the reference error behaviour.
_EMITTABLE = (
    EventKind.WRITE_REQUEST,
    EventKind.READ_REQUEST,
    EventKind.WRITE,
)


class CompiledStep:
    """One RHS step's emission plan (``Ci ? Ei`` with everything resolved)."""

    __slots__ = ("kind", "condition", "make_ref", "make_value",
                 "enumerating", "family")

    def __init__(
        self,
        kind: EventKind,
        condition: Optional[ValueFn],
        make_ref: Optional[Callable[[list], DataItemRef]],
        make_value: Optional[Callable[[list], Value]],
        enumerating: bool,
        family: Optional[str],
    ):
        self.kind = kind
        #: ``None`` means the condition folded to a constant true.
        self.condition = condition
        self.make_ref = make_ref
        self.make_value = make_value
        #: Statically decided: a read request whose item pattern mentions
        #: variables the rule never binds expands over the whole family.
        self.enumerating = enumerating
        self.family = family


class CompiledRule:
    """A rule compiled into a flat program: matcher, LHS check, RHS plan."""

    __slots__ = ("rule", "slot_names", "now_slot", "match", "lhs", "steps")

    def __init__(
        self,
        rule: Rule,
        slot_names: tuple[str, ...],
        now_slot: int,
        match: SlotMatcher,
        lhs: Optional[ValueFn],
        steps: tuple[CompiledStep, ...],
    ):
        self.rule = rule
        #: Slot layout, for introspection and the equivalence tests.
        self.slot_names = slot_names
        self.now_slot = now_slot
        #: Descriptor -> fresh slot list (or None on mismatch).
        self.match = match
        #: Binder evaluation + LHS condition; ``None`` when the condition
        #: folded to true and the rule has no binders.
        self.lhs = lhs
        self.steps = steps

    def bindings_dict(self, slots: list) -> dict[str, Value]:
        """The equivalent matching-interpretation dict (diagnostics only)."""
        return {
            name: slots[index]
            for index, name in enumerate(self.slot_names)
            if slots[index] is not None or name == "now"
        }


# -- expression compilation ---------------------------------------------------

#: Marker for a compile-time constant: ``(True, value)`` vs ``(False, fn)``.
_Compiled = tuple[bool, object]


def _const(value: object) -> _Compiled:
    return (True, value)


def _fn(fn: ValueFn) -> _Compiled:
    return (False, fn)


def _as_fn(compiled: _Compiled) -> ValueFn:
    is_const, payload = compiled
    if is_const:
        value = payload
        return lambda slots, local: value
    return payload  # type: ignore[return-value]


def _compile_expr(expr: Expr, slot_of: dict[str, int]) -> _Compiled:
    """Compile one expression; folds subtrees whose value is static."""
    if isinstance(expr, Literal):
        return _const(expr.value)
    if isinstance(expr, Name):
        name = expr.name
        if name in slot_of:
            index = slot_of[name]
            return _fn(lambda slots, local: slots[index])
        if name[0].isupper():
            ref = DataItemRef(name)
            return _fn(lambda slots, local: local.read_local(ref))

        def unbound(slots: list, local: LocalData) -> Value:
            raise BindingError(f"unbound rule variable: {name}")

        return _fn(unbound)
    if isinstance(expr, ItemRead):
        make_ref = _compile_item_ref(expr.pattern, slot_of)
        return _fn(lambda slots, local: local.read_local(make_ref(slots)))
    if isinstance(expr, Unary):
        return _compile_unary(expr, slot_of)
    if isinstance(expr, Binary):
        return _compile_binary(expr, slot_of)
    if isinstance(expr, Call):
        return _compile_call(expr, slot_of)
    raise CompileError(f"cannot compile expression node: {expr!r}")


def _compile_unary(expr: Unary, slot_of: dict[str, int]) -> _Compiled:
    operand = _compile_expr(expr.operand, slot_of)
    if expr.op == "-":
        if operand[0]:
            try:
                return _const(-operand[1])  # type: ignore[operator]
            except Exception:
                pass  # fold failed: evaluate (and raise) at run time
        operand_fn = _as_fn(operand)
        return _fn(lambda slots, local: -operand_fn(slots, local))
    if expr.op == "not":
        if operand[0]:
            return _const(not operand[1])
        operand_fn = _as_fn(operand)
        return _fn(lambda slots, local: not operand_fn(slots, local))
    raise CompileError(f"unknown unary operator: {expr.op}")


def _compile_binary(expr: Binary, slot_of: dict[str, int]) -> _Compiled:
    op = expr.op
    left = _compile_expr(expr.left, slot_of)
    if op in ("and", "or"):
        # Reference semantics: short-circuit, and always return a bool
        # (False on a falsy left of ``and``, not the left value itself).
        right = _compile_expr(expr.right, slot_of)
        if left[0]:
            if op == "and":
                if not left[1]:
                    return _const(False)
                if right[0]:
                    return _const(bool(right[1]))
                right_fn = _as_fn(right)
                return _fn(lambda slots, local: bool(right_fn(slots, local)))
            if left[1]:
                return _const(True)
            if right[0]:
                return _const(bool(right[1]))
            right_fn = _as_fn(right)
            return _fn(lambda slots, local: bool(right_fn(slots, local)))
        left_fn = _as_fn(left)
        right_fn = _as_fn(right)
        if op == "and":
            return _fn(
                lambda slots, local: bool(right_fn(slots, local))
                if left_fn(slots, local)
                else False
            )
        return _fn(
            lambda slots, local: True
            if left_fn(slots, local)
            else bool(right_fn(slots, local))
        )
    right = _compile_expr(expr.right, slot_of)
    if op in ARITH_OPS:
        arith = ARITH_OPS[op]
        if left[0] and right[0]:
            try:
                return _const(arith(left[1], right[1]))
            except Exception:
                pass
        left_fn, right_fn = _as_fn(left), _as_fn(right)
        return _fn(
            lambda slots, local: arith(
                left_fn(slots, local), right_fn(slots, local)
            )
        )
    if op in COMPARE_OPS:
        compare = COMPARE_OPS[op]
        if op in ("==", "!="):
            if left[0] and right[0]:
                return _const(compare(left[1], right[1]))
            left_fn, right_fn = _as_fn(left), _as_fn(right)
            return _fn(
                lambda slots, local: compare(
                    left_fn(slots, local), right_fn(slots, local)
                )
            )
        rendered = str(expr)
        if left[0] and right[0]:
            if left[1] is not MISSING and right[1] is not MISSING:
                try:
                    return _const(compare(left[1], right[1]))
                except Exception:
                    pass
        left_fn, right_fn = _as_fn(left), _as_fn(right)

        def ordered(slots: list, local: LocalData) -> Value:
            a = left_fn(slots, local)
            b = right_fn(slots, local)
            if a is MISSING or b is MISSING:
                raise BindingError(
                    f"ordered comparison against MISSING in {rendered}"
                )
            return compare(a, b)

        return _fn(ordered)
    raise CompileError(f"unknown binary operator: {op}")


def _compile_call(expr: Call, slot_of: dict[str, int]) -> _Compiled:
    if expr.func == "abs":
        if len(expr.args) != 1:
            raise CompileError("abs() takes exactly one argument")
        arg = _compile_expr(expr.args[0], slot_of)
        if arg[0]:
            try:
                return _const(abs(arg[1]))  # type: ignore[arg-type]
            except Exception:
                pass
        arg_fn = _as_fn(arg)
        return _fn(lambda slots, local: abs(arg_fn(slots, local)))
    if expr.func == "exists":
        if len(expr.args) != 1:
            raise CompileError("exists() takes exactly one argument")
        target = expr.args[0]
        if isinstance(target, Name):
            ref = DataItemRef(target.name)
            return _fn(
                lambda slots, local: local.read_local(ref) is not MISSING
            )
        if isinstance(target, ItemRead):
            make_ref = _compile_item_ref(target.pattern, slot_of)
            return _fn(
                lambda slots, local: local.read_local(make_ref(slots))
                is not MISSING
            )
        raise CompileError("exists() argument must be a data item")
    raise CompileError(f"unknown function: {expr.func}")


def _compile_item_ref(
    pattern: ItemPattern, slot_of: dict[str, int]
) -> Callable[[list], DataItemRef]:
    """Pre-resolve an item pattern into a ``slots -> DataItemRef`` accessor.

    Ground patterns resolve to a constant reference at compile time; a
    pattern the rule can never ground (wildcard argument, unbound variable,
    family wildcard) becomes an accessor that raises :class:`BindingError`
    exactly as :func:`~repro.core.terms.ground_item` would.
    """
    if pattern.name == FAMILY_WILDCARD:
        def unresolvable_family(slots: list) -> DataItemRef:
            raise BindingError("cannot ground a family-wildcard item pattern")

        return unresolvable_family
    getters: list[tuple[bool, object]] = []  # (is_slot, index_or_value)
    failure: Optional[str] = None
    for term in pattern.args:
        if term is WILDCARD:
            failure = "cannot ground a wildcard term"
            break
        if isinstance(term, Const):
            getters.append((False, term.value))
        elif isinstance(term, Var):
            if term.name not in slot_of:
                failure = f"unbound variable: {term.name}"
                break
            getters.append((True, slot_of[term.name]))
        else:
            raise CompileError(f"not a groundable term: {term!r}")
    if failure is not None:
        message = failure

        def unresolvable(slots: list) -> DataItemRef:
            raise BindingError(message)

        return unresolvable
    name = pattern.name
    if not getters:
        ref = DataItemRef(name)
        return lambda slots: ref
    if all(not is_slot for is_slot, __ in getters):
        ref = DataItemRef(name, tuple(value for __, value in getters))
        return lambda slots: ref
    if len(getters) == 1:
        index = getters[0][1]
        return lambda slots: DataItemRef(name, (slots[index],))
    plan = tuple(getters)
    return lambda slots: DataItemRef(
        name,
        tuple(
            slots[payload] if is_slot else payload for is_slot, payload in plan
        ),
    )


def _compile_value_term(
    term: Term, slot_of: dict[str, int]
) -> Callable[[list], Value]:
    """A value term of an RHS template: a slot read or a constant."""
    if term is WILDCARD:
        def unresolvable(slots: list) -> Value:
            raise BindingError("cannot ground a wildcard term")

        return unresolvable
    if isinstance(term, Const):
        value = term.value
        return lambda slots: value
    if isinstance(term, Var):
        if term.name not in slot_of:
            message = f"unbound variable: {term.name}"

            def unbound(slots: list) -> Value:
                raise BindingError(message)

            return unbound
        index = slot_of[term.name]
        return lambda slots: slots[index]
    raise CompileError(f"not a groundable term: {term!r}")


# -- LHS matcher compilation --------------------------------------------------


def _compile_slot_matcher(
    tmpl: Template, slot_of: dict[str, int], n_slots: int
) -> SlotMatcher:
    """Compile the LHS template into a slot-filling matcher.

    Semantically identical to running the template's
    :func:`~repro.core.templates.compile_matcher` matcher and copying the
    resulting dict into slot positions — but flat: per-position constant
    checks, slot stores, and repeated-variable equality checks are resolved
    to combined-tuple indexes at compile time.
    """
    if tmpl.kind is EventKind.FALSE:
        return lambda desc: None
    kind = tmpl.kind
    const_checks: list[tuple[int, Value]] = []
    binds: list[tuple[int, int]] = []
    repeats: list[tuple[int, int]] = []
    seen: set[str] = set()
    item = tmpl.item
    terms: tuple[Term, ...] = (
        (item.args + tmpl.values) if item is not None else tmpl.values
    )
    for pos, term in enumerate(terms):
        if term is WILDCARD:
            continue
        if isinstance(term, Const):
            const_checks.append((pos, term.value))
        elif isinstance(term, Var):
            if term.name in seen:
                repeats.append((pos, slot_of[term.name]))
            else:
                seen.add(term.name)
                binds.append((pos, slot_of[term.name]))
        else:
            raise CompileError(f"not a matchable term: {term!r}")
    bind_plan = tuple(binds)

    if item is None:

        def itemless_match(desc) -> Optional[list]:
            if desc.kind is not kind:
                return None
            vals = desc.values
            for pos, expected in const_checks:
                if vals[pos] != expected:
                    return None
            slots = [None] * n_slots
            for pos, slot in bind_plan:
                slots[slot] = vals[pos]
            for pos, slot in repeats:
                if slots[slot] != vals[pos]:
                    return None
            return slots

        return itemless_match

    family = item.name
    any_family = family == FAMILY_WILDCARD
    n_args = len(item.args)

    if not const_checks and not repeats:
        # The common shape — all-distinct variables and wildcards — gets a
        # closure with nothing but the discriminator checks and slot stores.
        def fast_match(desc) -> Optional[list]:
            if desc.kind is not kind:
                return None
            ref = desc.item
            if ref is None:
                return None
            if not any_family and ref.name != family:
                return None
            args = ref.args
            if len(args) != n_args:
                return None
            vals = args + desc.values
            slots = [None] * n_slots
            for pos, slot in bind_plan:
                slots[slot] = vals[pos]
            return slots

        return fast_match

    def general_match(desc) -> Optional[list]:
        if desc.kind is not kind:
            return None
        ref = desc.item
        if ref is None:
            return None
        if not any_family and ref.name != family:
            return None
        args = ref.args
        if len(args) != n_args:
            return None
        vals = args + desc.values
        for pos, expected in const_checks:
            if vals[pos] != expected:
                return None
        slots = [None] * n_slots
        for pos, slot in bind_plan:
            slots[slot] = vals[pos]
        for pos, slot in repeats:
            if slots[slot] != vals[pos]:
                return None
        return slots

    return general_match


# -- whole-rule compilation ---------------------------------------------------


def _template_variables_in_order(tmpl: Template) -> list[str]:
    """All template variables by first occurrence (item args, then values)."""
    ordered: list[str] = (
        tmpl.item.variables_in_order() if tmpl.item is not None else []
    )
    for term in tmpl.values:
        if isinstance(term, Var) and term.name not in ordered:
            ordered.append(term.name)
    return ordered


def compile_rule(rule: Rule) -> CompiledRule:
    """Compile a rule into a :class:`CompiledRule` program.

    Raises :class:`CompileError` for shapes the compiler does not
    specialize; callers fall back to the tree-walking reference path.
    """
    # -- slot layout: LHS template vars, binder vars, implicit ``now`` ------
    slot_names: list[str] = _template_variables_in_order(rule.lhs)
    binders = rule.binders
    for name, __ in binders:
        if name not in slot_names:
            slot_names.append(name)
    if "now" not in slot_names:
        slot_names.append("now")
    slot_of = {name: index for index, name in enumerate(slot_names)}
    now_slot = slot_of["now"]
    n_slots = len(slot_names)

    lhs_visible = {
        name: slot_of[name] for name in _template_variables_in_order(rule.lhs)
    }
    matcher = _compile_slot_matcher(rule.lhs, slot_of, n_slots)

    # -- binders + LHS condition -------------------------------------------
    binder_fns: list[tuple[int, ValueFn]] = []
    for name, expr in binders:
        binder_fns.append(
            (slot_of[name], _as_fn(_compile_expr(expr, lhs_visible)))
        )
        lhs_visible[name] = slot_of[name]
    condition = _compile_expr(rule.condition, lhs_visible)

    lhs_fn: Optional[ValueFn]
    if not binder_fns and condition[0]:
        # Constant condition, nothing to bind: the check disappears (or the
        # rule can never fire, which we still honour per firing).
        if condition[1]:
            lhs_fn = None
        else:
            lhs_fn = lambda slots, local: False  # noqa: E731
    elif not binder_fns:
        condition_fn = _as_fn(condition)
        lhs_fn = lambda slots, local: bool(  # noqa: E731
            condition_fn(slots, local)
        )
    else:
        binder_plan = tuple(binder_fns)
        condition_fn = _as_fn(condition)

        def lhs_with_binders(slots: list, local: LocalData) -> bool:
            for slot, fn in binder_plan:
                slots[slot] = fn(slots, local)
            return bool(condition_fn(slots, local))

        lhs_fn = lhs_with_binders

    # -- RHS steps ----------------------------------------------------------
    rhs_visible = dict(lhs_visible)
    rhs_visible["now"] = now_slot
    bound_names = set(rhs_visible)
    steps: list[CompiledStep] = []
    for step in rule.steps:
        tmpl = step.template
        if tmpl.kind is EventKind.FALSE:
            continue  # prohibitions are promises, not actions
        if tmpl.kind not in _EMITTABLE:
            raise CompileError(
                f"rule {rule.name!r}: cannot compile a {tmpl.kind.value} "
                f"emission"
            )
        condition = _compile_expr(step.condition, rhs_visible)
        if condition[0]:
            if not condition[1]:
                continue  # statically inapplicable: drop the step
            step_condition: Optional[ValueFn] = None
        else:
            step_condition = _as_fn(condition)
        assert tmpl.item is not None  # _EMITTABLE kinds all take an item
        enumerating = (
            tmpl.kind is EventKind.READ_REQUEST
            and bool(tmpl.item.variables() - bound_names)
        )
        make_ref = (
            None if enumerating else _compile_item_ref(tmpl.item, rhs_visible)
        )
        make_value = (
            _compile_value_term(tmpl.values[0], rhs_visible)
            if tmpl.kind in (EventKind.WRITE_REQUEST, EventKind.WRITE)
            else None
        )
        steps.append(
            CompiledStep(
                kind=tmpl.kind,
                condition=step_condition,
                make_ref=make_ref,
                make_value=make_value,
                enumerating=enumerating,
                family=tmpl.item.name,
            )
        )

    return CompiledRule(
        rule=rule,
        slot_names=tuple(slot_names),
        now_slot=now_slot,
        match=matcher,
        lhs=lhs_fn,
        steps=tuple(steps),
    )
