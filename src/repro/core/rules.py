"""Rules: the unified statement form of the framework (Appendix A.1).

The general rule form is::

    E0 ∧ C0  ->[δ]  C1 ? E1, C2 ? E2, ..., Ck ? Ek

If an event matching template ``E0`` occurs at time ``t`` and ``C0`` holds at
``t`` (over the event's bindings and data local to ``E0``'s site), then there
exist times ``t ≤ t1 < t2 < ... < tk ≤ t + δ`` such that at each ``ti`` the
condition ``Ci`` is evaluated (over data local to the RHS site) and, if true,
an event matching ``Ei`` (grounded with the LHS matching interpretation)
occurs at ``ti``.

Both *interface statements* (promises made by a database, Section 3.1) and
*strategy statements* (algorithms run by the CM, Section 3.2) are rules of
this form; they differ in who is responsible for making the RHS happen.  All
RHS events of one rule share a site (the paper's footnote 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.core.conditions import TRUE, Binary, Expr, Name
from repro.core.errors import SpecError
from repro.core.events import EventKind
from repro.core.items import Locations
from repro.core.templates import FALSE_TEMPLATE, Template
from repro.core.timebase import Ticks, to_seconds


#: Variables the rule engine binds implicitly when firing a rule: ``now`` is
#: the firing time in ticks (used e.g. by the monitor strategy to stamp
#: ``Tb``, Section 6.3).
IMPLICIT_VARIABLES = frozenset({"now"})


class RuleRole(Enum):
    """Who is responsible for honouring the rule."""

    #: A promise made by a database about its own behaviour (Section 3.1).
    INTERFACE = "interface"
    #: An algorithm executed by the constraint manager (Section 3.2).
    STRATEGY = "strategy"


@dataclass(frozen=True)
class RhsStep:
    """One ``Ci ? Ei`` element of a rule's right-hand side."""

    template: Template
    condition: Expr = TRUE

    def __str__(self) -> str:
        if self.condition is TRUE:
            return str(self.template)
        return f"({self.condition}) ? {self.template}"


@dataclass(frozen=True)
class Rule:
    """A rule statement.

    ``lhs_site`` is normally derived from the LHS template's item family via
    the :class:`~repro.core.items.Locations` registry; it must be given
    explicitly for item-less LHS templates (periodic events ``P(p)``), since
    a periodic event "occurs" at whichever shell runs the timer.
    """

    name: str
    lhs: Template
    delay: Ticks
    steps: tuple[RhsStep, ...]
    condition: Expr = TRUE
    role: RuleRole = RuleRole.STRATEGY
    lhs_site: Optional[str] = None
    source: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise SpecError(f"rule {self.name!r}: negative delay {self.delay}")
        if not self.steps:
            raise SpecError(f"rule {self.name!r}: empty right-hand side")
        if self.lhs.kind is EventKind.FALSE:
            raise SpecError(
                f"rule {self.name!r}: the false event cannot appear on a LHS"
            )
        lhs_vars = (
            self.lhs.variables()
            | {name for name, __ in self.binders}
            | IMPLICIT_VARIABLES
        )
        for step in self.steps:
            if step.template.kind is EventKind.FALSE:
                continue
            if step.template.kind is EventKind.READ_REQUEST:
                # A read request with unbound parameters is an *enumerating
                # read*: the shell expands it over all current instances of
                # the family (how parameterized polling and daily scans work).
                continue
            unbound = step.template.variables() - lhs_vars
            if unbound:
                raise SpecError(
                    f"rule {self.name!r}: RHS template {step.template} uses "
                    f"variables not bound on the LHS: {sorted(unbound)}"
                )

    @property
    def binders(self) -> tuple[tuple[str, Expr], ...]:
        """Variables bound by equalities in the LHS condition.

        The paper's periodic-notify interface ``P(300) ∧ (X = b) -> N(X, b)``
        uses its condition to *capture* the current value of ``X`` into the
        parameter ``b``.  Any top-level conjunct of the LHS condition of the
        form ``v == expr`` (or ``expr == v``) where ``v`` is a lower-case
        name not bound by the LHS template is such a binder: evaluating the
        rule first computes ``expr`` and binds ``v`` to the result.
        """
        lhs_vars = self.lhs.variables()
        binders: list[tuple[str, Expr]] = []

        def walk(expr: Expr) -> None:
            if isinstance(expr, Binary) and expr.op == "and":
                walk(expr.left)
                walk(expr.right)
                return
            if isinstance(expr, Binary) and expr.op == "==":
                for var_side, value_side in (
                    (expr.left, expr.right),
                    (expr.right, expr.left),
                ):
                    if (
                        isinstance(var_side, Name)
                        and var_side.name[0].islower()
                        and var_side.name not in lhs_vars
                    ):
                        binders.append((var_side.name, value_side))
                        return

        walk(self.condition)
        return tuple(binders)

    @property
    def is_prohibition(self) -> bool:
        """True for rules of the form ``E -> FALSE`` (e.g. the
        "no spontaneous writes" interface): the LHS event must never occur."""
        return all(s.template is FALSE_TEMPLATE or s.template.kind is EventKind.FALSE
                   for s in self.steps)

    def resolve_lhs_site(self, locations: Locations) -> str:
        """The site whose CM-Shell executes this rule (Section 4.1)."""
        if self.lhs_site is not None:
            return self.lhs_site
        family = self.lhs.item_family
        if family is None:
            raise SpecError(
                f"rule {self.name!r}: LHS {self.lhs} has no item; an explicit "
                f"lhs_site is required (e.g. for periodic events)"
            )
        return locations.site_of(family)

    def resolve_rhs_site(self, locations: Locations) -> Optional[str]:
        """The common site of the RHS events, or ``None`` for prohibitions.

        Raises :class:`SpecError` if the RHS events span sites, which the
        formalism forbids (footnote 7).
        """
        sites: set[str] = set()
        for step in self.steps:
            if step.template.kind is EventKind.FALSE:
                continue
            family = step.template.item_family
            if family is None:
                raise SpecError(
                    f"rule {self.name!r}: RHS template {step.template} has no "
                    f"item; cannot resolve its site"
                )
            sites.add(locations.site_of(family))
        if not sites:
            return None
        if len(sites) > 1:
            raise SpecError(
                f"rule {self.name!r}: RHS events span multiple sites "
                f"{sorted(sites)}; all RHS events must share a site"
            )
        return next(iter(sites))

    def __str__(self) -> str:
        lhs = str(self.lhs)
        if self.condition is not TRUE:
            lhs = f"{lhs} & {self.condition}"
        rhs = ", ".join(str(s) for s in self.steps)
        return f"{lhs} -> [{to_seconds(self.delay):g}] {rhs}"
