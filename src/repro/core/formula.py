"""A generic guarantee-formula language and checker (Section 3.3).

The paper's guarantee language builds formulas from ``{Event | Condition} @
TimeVariable`` atoms, predicates, logical connectives, and implicitly
quantified variables: those appearing on the left of ``=>`` are universal,
fresh ones on the right existential.  The specialized checkers in
:mod:`repro.core.guarantees` implement the paper's named guarantee families
with exact interval algebra; this module implements the *language itself*,
generically, so arbitrary guarantees of the paper's shape can be written and
checked — and so the specialized checkers can be cross-validated.

Supported formula shape::

    A1 & A2 & ... & C1 & ...  =>  B1 & B2 & ... & D1 & ...

where each ``Ai``/``Bi`` is a state atom ``(item op value)@t`` or an
existence atom ``E(item)@t``, and each ``Ci``/``Di`` is a time constraint
``t_expr op t_expr`` with ``t_expr ::= tvar | tvar ± seconds | seconds``.
Value positions may be literals or (lower-case) value variables shared
between atoms.

Checking semantics: item values are piecewise-constant, so a formula's truth
can only change at *critical instants* — the items' change points, shifted
by every time offset appearing in the formula (±1 tick for the strict
inequalities).  The checker enumerates universal instantiations over the
critical-instant set and searches existential witnesses over the same set.
This is exact for violations **detectable at critical instants**, which
covers every guarantee family in the paper (their truth regions are finite
unions of intervals with critical-instant endpoints); it is exponential in
the number of atoms, so it is a verification/cross-validation tool, not the
production checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.errors import CheckError
from repro.core.items import MISSING, DataItemRef, Value
from repro.core.timebase import Ticks
from repro.core.trace import ExecutionTrace

_COMPARE = {
    "=": lambda a, b: a == b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class TimeExpr:
    """``tvar + offset`` (ticks); ``var=None`` means an absolute time."""

    var: Optional[str]
    offset: Ticks = 0

    def evaluate(self, times: dict[str, Ticks]) -> Ticks:
        """Concrete tick value under the given time-variable bindings."""
        base = 0 if self.var is None else times[self.var]
        return base + self.offset

    def __str__(self) -> str:
        if self.var is None:
            return str(self.offset)
        if self.offset == 0:
            return self.var
        sign = "+" if self.offset > 0 else "-"
        return f"{self.var} {sign} {abs(self.offset)}"


@dataclass(frozen=True)
class StateAtom:
    """``(item op value)@tvar`` — value is a literal or a value variable."""

    item: DataItemRef
    op: str
    value_var: Optional[str] = None  # lower-case variable name...
    value_const: Value = None  # ...or a literal (when value_var is None)
    at: str = "t"

    def __str__(self) -> str:
        value = self.value_var if self.value_var else repr(self.value_const)
        return f"({self.item} {self.op} {value})@{self.at}"


@dataclass(frozen=True)
class ExistsAtom:
    """``E(item)@tvar`` — the item exists (is not MISSING) at the time."""

    item: DataItemRef
    at: str = "t"
    negated: bool = False

    def __str__(self) -> str:
        bang = "!" if self.negated else ""
        return f"{bang}E({self.item})@{self.at}"


@dataclass(frozen=True)
class TimeConstraint:
    """``t_expr op t_expr``."""

    left: TimeExpr
    op: str
    right: TimeExpr

    def holds(self, times: dict[str, Ticks]) -> bool:
        """Whether the constraint is satisfied by the bindings."""
        return _COMPARE[self.op](
            self.left.evaluate(times), self.right.evaluate(times)
        )

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


Atom = StateAtom | ExistsAtom | TimeConstraint


@dataclass(frozen=True)
class GuaranteeFormula:
    """``lhs => rhs``: universally quantified LHS, existential RHS."""

    lhs: tuple[Atom, ...]
    rhs: tuple[Atom, ...]

    def __str__(self) -> str:
        left = " & ".join(str(a) for a in self.lhs)
        right = " & ".join(str(a) for a in self.rhs)
        return f"{left} => {right}"

    def items(self) -> set[DataItemRef]:
        """All data items the formula mentions."""
        found: set[DataItemRef] = set()
        for atom in self.lhs + self.rhs:
            if isinstance(atom, (StateAtom, ExistsAtom)):
                found.add(atom.item)
        return found

    def offsets(self) -> set[Ticks]:
        """All time offsets appearing in the formula's constraints."""
        found: set[Ticks] = {0}
        for atom in self.lhs + self.rhs:
            if isinstance(atom, TimeConstraint):
                found.add(atom.left.offset)
                found.add(atom.right.offset)
        return found


@dataclass
class FormulaViolation:
    """One universal instantiation with no existential witness."""

    times: dict[str, Ticks]
    values: dict[str, Value]

    def __str__(self) -> str:
        times = ", ".join(f"{k}={v}" for k, v in sorted(self.times.items()))
        values = ", ".join(
            f"{k}={v!r}" for k, v in sorted(self.values.items())
        )
        return f"violated at [{times}] with [{values}]"


class FormulaChecker:
    """Enumerative checker for :class:`GuaranteeFormula` over a trace."""

    def __init__(self, formula: GuaranteeFormula, max_instantiations: int = 500_000):
        self.formula = formula
        self.max_instantiations = max_instantiations
        self._budget = 0

    # -- critical instants --------------------------------------------------

    def critical_instants(self, trace: ExecutionTrace) -> list[Ticks]:
        """The instants at which the formula's truth can change (see module docstring)."""
        base: set[Ticks] = {0, max(0, trace.horizon - 1)}
        for ref in self.formula.items():
            for time, __ in trace.timeline(ref).change_points():
                base.add(time)
                if time > 0:
                    base.add(time - 1)
        instants: set[Ticks] = set()
        offsets = self.formula.offsets() | {1, -1}
        for point in base:
            for offset in offsets:
                for delta in (-offset, offset):
                    shifted = point + delta
                    if 0 <= shifted <= trace.horizon:
                        instants.add(shifted)
        return sorted(instants)

    # -- checking -------------------------------------------------------------

    def check(
        self, trace: ExecutionTrace, skip_missing: bool = True
    ) -> list[FormulaViolation]:
        """All violated universal instantiations (empty list = valid).

        ``skip_missing`` excludes instantiations that would bind a value
        variable to MISSING, matching the specialized checkers' convention
        that copy guarantees quantify over real values.
        """
        instants = self.critical_instants(trace)
        self._budget = self.max_instantiations
        violations: list[FormulaViolation] = []
        for times, values in self._assignments(
            trace, self.formula.lhs, instants, {}, {}, skip_missing
        ):
            if self._rhs_witness_exists(trace, instants, times, values):
                continue
            violations.append(FormulaViolation(dict(times), dict(values)))
            if len(violations) >= 20:
                break  # enough counterexamples to report
        return violations

    def _assignments(
        self,
        trace: ExecutionTrace,
        atoms: tuple[Atom, ...],
        instants: list[Ticks],
        times: dict[str, Ticks],
        values: dict[str, Value],
        skip_missing: bool,
    ) -> Iterator[tuple[dict[str, Ticks], dict[str, Value]]]:
        if not atoms:
            yield times, values
            return
        head, tail = atoms[0], atoms[1:]
        if isinstance(head, TimeConstraint):
            for name in (head.left.var, head.right.var):
                if name is not None and name not in times:
                    raise CheckError(
                        f"time constraint {head} uses {name!r} before any "
                        f"atom binds it; reorder the formula"
                    )
            if head.holds(times):
                yield from self._assignments(
                    trace, tail, instants, times, values, skip_missing
                )
            return
        if isinstance(head, ExistsAtom):
            candidates = (
                [times[head.at]] if head.at in times else instants
            )
            for time in candidates:
                exists = trace.value_at(head.item, time) is not MISSING
                if exists == (not head.negated):
                    self._budget -= 1
                    if self._budget < 0:
                        raise CheckError(
                            "formula too large to check enumeratively"
                        )
                    yield from self._assignments(
                        trace,
                        tail,
                        instants,
                        {**times, head.at: time},
                        values,
                        skip_missing,
                    )
            return
        if isinstance(head, StateAtom):
            candidates = (
                [times[head.at]] if head.at in times else instants
            )
            for time in candidates:
                actual = trace.value_at(head.item, time)
                if skip_missing and actual is MISSING:
                    continue
                if head.value_var is not None:
                    if head.value_var in values:
                        expected = values[head.value_var]
                        if not self._compare(head.op, actual, expected):
                            continue
                        new_values = values
                    else:
                        if head.op not in ("=", "=="):
                            raise CheckError(
                                f"atom {head}: an unbound value variable "
                                f"needs the '=' operator to bind"
                            )
                        new_values = {**values, head.value_var: actual}
                else:
                    if not self._compare(head.op, actual, head.value_const):
                        continue
                    new_values = values
                self._budget -= 1
                if self._budget < 0:
                    raise CheckError("formula too large to check enumeratively")
                yield from self._assignments(
                    trace,
                    tail,
                    instants,
                    {**times, head.at: time},
                    new_values,
                    skip_missing,
                )
            return
        raise CheckError(f"unknown atom type: {head!r}")

    @staticmethod
    def _compare(op: str, left: Value, right: Value) -> bool:
        if op in ("=", "==", "!="):
            return _COMPARE[op](left, right)
        if left is MISSING or right is MISSING:
            return False
        return _COMPARE[op](left, right)

    def _rhs_witness_exists(
        self,
        trace: ExecutionTrace,
        instants: list[Ticks],
        times: dict[str, Ticks],
        values: dict[str, Value],
    ) -> bool:
        # Existential witnesses live in intervals whose endpoints are shifted
        # versions of the *bound* universal times (e.g. t2 in (t1 - κ, t1)),
        # so candidate instants must also include shifts of those bindings —
        # the global critical-instant set alone is not closed under the
        # combination of shifts.
        candidates = set(instants)
        offsets = self.formula.offsets() | {0}
        for bound_time in times.values():
            for offset in offsets:
                for delta in (-offset, offset):
                    for nudge in (-1, 0, 1):
                        shifted = bound_time + delta + nudge
                        if 0 <= shifted <= trace.horizon:
                            candidates.add(shifted)
        extended = sorted(candidates)
        for __ in self._assignments(
            trace, self.formula.rhs, extended, dict(times), dict(values), False
        ):
            return True
        return False
