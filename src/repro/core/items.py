"""Data items and parameterized data-item names.

The paper does not fix a granularity for "data items": one may be a single
object, a file, or a set of tuples.  Parameterized names like ``salary1(n)``
denote a family of items, one per value of ``n`` (Section 3.1.1,
"Parameterized Interfaces").

Concretely:

- :class:`DataItemRef` — a fully ground item, e.g. ``salary1('e042')``.
- Item *patterns* (a name plus term arguments, possibly containing variables)
  live in :mod:`repro.core.terms` since they share the term language with
  event templates.
- :class:`Locations` — the registry mapping item family names to sites, used
  by the constraint manager to decide which CM-Shell owns each rule side.

Existence is modelled with the :data:`MISSING` sentinel: an item whose current
value is ``MISSING`` does not exist (this implements the ``E(X)`` exists
predicate of Section 6.2 — inserting writes a real value, deleting writes
``MISSING``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.core.errors import ConfigurationError

Value = Any


class _Missing:
    """Singleton sentinel for "this item does not exist"."""

    _instance: "_Missing | None" = None

    def __new__(cls) -> "_Missing":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "MISSING"

    def __bool__(self) -> bool:
        return False


#: The value of a data item that does not (currently) exist.
MISSING = _Missing()


@dataclass(frozen=True)
class DataItemRef:
    """A ground reference to one data item, e.g. ``phone('alice')``.

    ``name`` identifies the item family (unique across the whole federation,
    as in the paper where ``salary1`` and ``salary2`` name items in different
    databases); ``args`` are the concrete parameter values, empty for plain
    items like ``X``.
    """

    name: str
    args: tuple[Value, ...] = ()

    def __str__(self) -> str:
        if not self.args:
            return self.name
        rendered = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({rendered})"


def item(name: str, *args: Value) -> DataItemRef:
    """Convenience constructor: ``item('salary1', 'e042')``."""
    return DataItemRef(name, tuple(args))


class Locations:
    """Registry of item-family locations (family name -> site name).

    The constraint manager uses this to route rules: a rule whose left-hand
    event mentions ``salary1(n)`` belongs to the shell at ``salary1``'s site
    (Section 4.1, rule distribution).
    """

    def __init__(self) -> None:
        self._sites: dict[str, str] = {}

    def register(self, family: str, site: str) -> None:
        """Declare that item family ``family`` lives at ``site``."""
        existing = self._sites.get(family)
        if existing is not None and existing != site:
            raise ConfigurationError(
                f"item family {family!r} already registered at {existing!r}, "
                f"cannot re-register at {site!r}"
            )
        self._sites[family] = site

    def site_of(self, family: str) -> str:
        """The site hosting ``family``; raises if unknown."""
        try:
            return self._sites[family]
        except KeyError:
            raise ConfigurationError(f"unknown item family: {family!r}") from None

    def known(self, family: str) -> bool:
        """Whether ``family`` has been registered."""
        return family in self._sites

    def families(self) -> Iterator[str]:
        """All registered family names."""
        return iter(self._sites)

    def families_at(self, site: str) -> list[str]:
        """All families hosted at ``site``."""
        return [f for f, s in self._sites.items() if s == site]
