"""The term language shared by event templates, conditions, and guarantees.

Following the paper's convention, *parameters* (lower-case letters like ``b``
and ``n`` in ``N(salary1(n), b)``) are variables of the rule language, whereas
*data items* refer to actual data.  A term is one of:

- :class:`Var` — a rule variable, bound by matching.
- :class:`Const` — a literal value.
- :data:`WILDCARD` — matches anything, binds nothing (the paper's ``*``).
- :class:`ItemPattern` — a possibly-parameterized data-item name whose
  arguments are themselves terms, e.g. ``salary1(n)``.

``match_term`` implements one-sided unification of a term against a concrete
value, producing/extending a *matching interpretation* (Appendix A.1): a
mapping from variable names to values.  ``ground_term`` substitutes bindings
to produce a concrete value or :class:`~repro.core.items.DataItemRef`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.errors import BindingError
from repro.core.items import DataItemRef, Value

Bindings = dict[str, Value]


class Term:
    """Base class for terms.  Use the concrete subclasses below."""

    __slots__ = ()


@dataclass(frozen=True)
class Var(Term):
    """A rule variable (paper: lower-case parameter like ``b`` or ``n``)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Term):
    """A literal constant."""

    value: Value

    def __str__(self) -> str:
        return repr(self.value)


class _WildcardTerm(Term):
    """Matches any value and binds nothing (the paper's ``*``)."""

    _instance: "_WildcardTerm | None" = None

    def __new__(cls) -> "_WildcardTerm":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __str__(self) -> str:
        return "*"

    def __repr__(self) -> str:
        return "WILDCARD"


#: The anonymous wildcard term.
WILDCARD = _WildcardTerm()

#: Item-pattern name matching *any* family (a family-variable template):
#: ``ItemPattern(FAMILY_WILDCARD, (Var("n"),))`` matches ``salary1('e1')``
#: and ``phone0('p3')`` alike.  Such templates cannot be keyed by family and
#: land in the dispatcher's catch-all bucket.
FAMILY_WILDCARD = "*"


@dataclass(frozen=True)
class ItemPattern:
    """A data-item name with term arguments, e.g. ``salary1(n)``.

    With no arguments this is a plain item like ``X``.  An ``ItemPattern``
    whose arguments are all constants grounds to a specific
    :class:`DataItemRef`; with variables it denotes a parameterized family
    (Section 3.1.1).
    """

    name: str
    args: tuple[Term, ...] = ()

    def __str__(self) -> str:
        if not self.args:
            return self.name
        rendered = ", ".join(str(a) for a in self.args)
        return f"{self.name}({rendered})"

    @property
    def is_ground(self) -> bool:
        """True when every argument is a constant."""
        return all(isinstance(a, Const) for a in self.args)

    def variables(self) -> set[str]:
        """Names of all variables appearing in the arguments."""
        found: set[str] = set()
        for arg in self.args:
            if isinstance(arg, Var):
                found.add(arg.name)
        return found

    def variables_in_order(self) -> list[str]:
        """Variable names by first occurrence (stable slot-layout order).

        The rule compiler assigns each template variable a fixed slot
        index; first-occurrence order makes the layout deterministic and
        independent of set-iteration order.
        """
        ordered: list[str] = []
        for arg in self.args:
            if isinstance(arg, Var) and arg.name not in ordered:
                ordered.append(arg.name)
        return ordered


def pattern(name: str, *args: Any) -> ItemPattern:
    """Convenience constructor; bare strings become variables.

    ``pattern('salary1', 'n')`` is the paper's ``salary1(n)``.  Pass
    :class:`Const` explicitly for literal arguments.
    """
    terms: list[Term] = []
    for arg in args:
        if isinstance(arg, Term):
            terms.append(arg)
        elif isinstance(arg, str):
            terms.append(Var(arg))
        else:
            terms.append(Const(arg))
    return ItemPattern(name, tuple(terms))


def match_term(term: Term, value: Value, bindings: Bindings) -> bool:
    """Match ``term`` against a concrete ``value``, extending ``bindings``.

    Returns ``True`` on success.  ``bindings`` is extended in place; on a
    ``False`` return, it may contain partial additions, so callers should
    match against a scratch copy (as :func:`repro.core.templates.match_desc`
    does).
    """
    if term is WILDCARD:
        return True
    if isinstance(term, Const):
        return term.value == value
    if isinstance(term, Var):
        if term.name in bindings:
            return bindings[term.name] == value
        bindings[term.name] = value
        return True
    raise TypeError(f"not a matchable term: {term!r}")


def match_item(pattern_: ItemPattern, ref: DataItemRef, bindings: Bindings) -> bool:
    """Match an item pattern against a ground item reference.

    A pattern named :data:`FAMILY_WILDCARD` matches any family; its argument
    terms are still matched positionally.
    """
    if pattern_.name != ref.name and pattern_.name != FAMILY_WILDCARD:
        return False
    if len(pattern_.args) != len(ref.args):
        return False
    for term, value in zip(pattern_.args, ref.args):
        if not match_term(term, value, bindings):
            return False
    return True


def ground_term(term: Term, bindings: Bindings) -> Value:
    """Substitute ``bindings`` into ``term``, yielding a concrete value."""
    if term is WILDCARD:
        raise BindingError("cannot ground a wildcard term")
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Var):
        if term.name not in bindings:
            raise BindingError(f"unbound variable: {term.name}")
        return bindings[term.name]
    raise TypeError(f"not a groundable term: {term!r}")


def ground_item(pattern_: ItemPattern, bindings: Bindings) -> DataItemRef:
    """Substitute ``bindings`` into an item pattern, yielding a ground ref."""
    if pattern_.name == FAMILY_WILDCARD:
        raise BindingError("cannot ground a family-wildcard item pattern")
    args = tuple(ground_term(term, bindings) for term in pattern_.args)
    return DataItemRef(pattern_.name, args)
