"""The strategy menu: proven constraint-management algorithms as rule sets.

A *strategy* is the algorithm the constraint manager runs to monitor or
enforce a constraint (Section 3.2).  Each constructor below produces a
:class:`StrategySpec`: a named bundle of rules plus the metadata the toolkit
needs to install it (timer phases for periodic rules, private data items to
allocate at shells, and a ``kind`` tag the proven-guarantee catalog matches
against).

Menu (paper anchor in parentheses):

- :func:`propagation` — forward every notification as a write request
  (Section 3.2.1 / 4.2.2).
- :func:`cached_propagation` — same, but suppress writes of unchanged values
  using a shell-private cache (Section 3.2's ``Cx`` example).
- :func:`polling` — periodically read the source and propagate what was read
  (Section 4.2.3).
- :func:`monitor` — maintain ``Flag``/``Tb`` auxiliary data from notify-only
  sources (Section 6.3).
- :func:`eod_batch` — end-of-working-day bulk propagation (Section 6.4).
- :func:`eod_cleanup` — daily referential-integrity cleanup deleting orphan
  parents (Section 6.2).

The Demarcation Protocol (Section 6.1) is a *native* strategy — its control
flow (limit negotiation) lives in :mod:`repro.protocols.demarcation` — and is
wrapped in a StrategySpec with ``executor='native'``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.conditions import Binary, Expr, ItemRead, Literal, Name
from repro.core.errors import SpecError
from repro.core.events import EventKind
from repro.core.items import MISSING
from repro.core.rules import RhsStep, Rule, RuleRole
from repro.core.templates import Template, template
from repro.core.terms import Const, ItemPattern, Var
from repro.core.timebase import Ticks


@dataclass(frozen=True)
class StrategySpec:
    """One installable strategy.

    ``timer_phases`` maps a periodic rule's name to the tick-of-day at which
    its timer should first fire (e.g. 17:00 for end-of-day strategies);
    periodic rules without an entry start at the scenario's epoch.
    ``private_families`` lists shell-private item families the strategy uses
    (allocated at the site of the rules that read/write them).
    ``executor`` is ``'rules'`` for rule-engine strategies or ``'native'``
    for programmed protocols; native strategies carry a ``native_factory``
    called by the manager at installation time.
    """

    name: str
    kind: str
    description: str
    rules: tuple[Rule, ...] = ()
    timer_phases: dict[str, Ticks] = field(default_factory=dict)
    private_families: tuple[tuple[str, str], ...] = ()  # (family, site)
    executor: str = "rules"
    native_factory: Optional[Callable[..., Any]] = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        lines = [f"strategy {self.name} ({self.kind}): {self.description}"]
        for rule in self.rules:
            lines.append(f"  {rule.name}: {rule}")
        return "\n".join(lines)


def _vars(params: tuple[str, ...]) -> tuple[Var, ...]:
    return tuple(Var(p) for p in params)


def _item(family: str, params: tuple[str, ...]) -> ItemPattern:
    return ItemPattern(family, _vars(params))


def propagation(
    src_family: str,
    dst_family: str,
    delay: Ticks,
    params: tuple[str, ...] = (),
) -> StrategySpec:
    """``N(X, b) -> [δ] WR(Y, b)`` — naive update propagation."""
    src = _item(src_family, params)
    dst = _item(dst_family, params)
    rule = Rule(
        name=f"propagate_{src_family}_to_{dst_family}",
        lhs=template(EventKind.NOTIFY, src, "b"),
        delay=delay,
        steps=(RhsStep(template(EventKind.WRITE_REQUEST, dst, "b")),),
    )
    return StrategySpec(
        name=f"propagation({src_family} -> {dst_family})",
        kind="propagation",
        description="forward every source notification as a write request",
        rules=(rule,),
    )


def cached_propagation(
    src_family: str,
    dst_family: str,
    delay: Ticks,
    params: tuple[str, ...] = (),
    dst_site: str = "",
) -> StrategySpec:
    """Propagation with a shell-private cache suppressing no-op writes.

    ``N(X, b) -> [δ] (Cx != b) ? WR(Y, b), W(Cx, b)`` — the footnote-3
    refinement of the paper's Section 4 example.  The cache family lives at
    the destination shell (conditions may only read data local to the RHS
    site).  ``dst_site`` must name that site so the toolkit can allocate the
    cache there.
    """
    src = _item(src_family, params)
    dst = _item(dst_family, params)
    cache_family = f"Cache_{src_family}_{dst_family}"
    cache = _item(cache_family, params)
    differs: Expr = Binary("!=", ItemRead(cache), Name("b"))
    rule = Rule(
        name=f"cached_propagate_{src_family}_to_{dst_family}",
        lhs=template(EventKind.NOTIFY, src, "b"),
        delay=delay,
        steps=(
            RhsStep(template(EventKind.WRITE_REQUEST, dst, "b"), differs),
            RhsStep(template(EventKind.WRITE, cache, "b")),
        ),
    )
    return StrategySpec(
        name=f"cached_propagation({src_family} -> {dst_family})",
        kind="cached-propagation",
        description="propagate notifications, suppressing unchanged values",
        rules=(rule,),
        private_families=((cache_family, dst_site),),
        metadata={"cache_family": cache_family},
    )


def polling(
    src_family: str,
    dst_family: str,
    period: Ticks,
    delay: Ticks,
    params: tuple[str, ...] = (),
    phase: Optional[Ticks] = None,
) -> StrategySpec:
    """Poll the source every ``period`` and propagate what was read.

    ``P(p) -> [ε] RR(X)`` then ``R(X, b) -> [δ] WR(Y, b)`` (Section 4.2.3).
    For parameterized families the read-request template has an unbound
    parameter, which the CM-Shell executes as an enumerating read over all
    known instances (a documented extension — the paper's example polls a
    scalar item).
    """
    src = _item(src_family, params)
    dst = _item(dst_family, params)
    poll_rule = Rule(
        name=f"poll_{src_family}",
        lhs=Template(EventKind.PERIODIC, None, (Const(period),)),
        delay=delay,
        steps=(RhsStep(template(EventKind.READ_REQUEST, src)),),
        lhs_site=None,  # assigned by the manager to the source's shell
    )
    forward_rule = Rule(
        name=f"forward_{src_family}_to_{dst_family}",
        lhs=template(EventKind.READ_RESPONSE, src, "b"),
        delay=delay,
        steps=(RhsStep(template(EventKind.WRITE_REQUEST, dst, "b")),),
    )
    from repro.core.timebase import to_seconds

    phases = {} if phase is None else {poll_rule.name: phase}
    return StrategySpec(
        name=f"polling({src_family} -> {dst_family}, p={to_seconds(period):g}s)",
        kind="polling",
        description="periodically read the source and propagate the value",
        rules=(poll_rule, forward_rule),
        timer_phases=phases,
        metadata={"period": period},
    )


def monitor(
    x_family: str,
    y_family: str,
    app_site: str,
    delay: Ticks,
) -> StrategySpec:
    """Maintain ``Flag``/``Tb`` at the application's site (Section 6.3).

    On each notification from either item the shell updates its cached copy
    and recomputes agreement::

        N(X, b) -> [δ] W(Cx, b),
                       (Cx != Cy) ? W(Flag, false),
                       (Cx == Cy and Flag != true) ? W(Tb, now),
                       (Cx == Cy) ? W(Flag, true)

    (symmetrically for Y).  ``now`` is the engine's implicit firing-time
    variable; ``Tb`` is therefore a *conservative* start-of-agreement
    timestamp, which is what makes the guarantee sound.
    """
    cache_x_family = f"Cache_{x_family}"
    cache_y_family = f"Cache_{y_family}"
    flag_family = f"Flag_{x_family}_{y_family}"
    tb_family = f"Tb_{x_family}_{y_family}"
    cache_x = ItemPattern(cache_x_family, ())
    cache_y = ItemPattern(cache_y_family, ())
    flag = ItemPattern(flag_family, ())
    tb = ItemPattern(tb_family, ())

    def agreement_steps() -> tuple[RhsStep, ...]:
        agree: Expr = Binary("==", ItemRead(cache_x), ItemRead(cache_y))
        disagree: Expr = Binary("!=", ItemRead(cache_x), ItemRead(cache_y))
        newly: Expr = Binary(
            "and", agree, Binary("!=", ItemRead(flag), Literal(True))
        )
        return (
            RhsStep(template(EventKind.WRITE, flag, False), disagree),
            RhsStep(template(EventKind.WRITE, tb, "now"), newly),
            RhsStep(template(EventKind.WRITE, flag, True), agree),
        )

    rule_x = Rule(
        name=f"monitor_{x_family}",
        lhs=template(EventKind.NOTIFY, ItemPattern(x_family, ()), "b"),
        delay=delay,
        steps=(RhsStep(template(EventKind.WRITE, cache_x, "b")),)
        + agreement_steps(),
    )
    rule_y = Rule(
        name=f"monitor_{y_family}",
        lhs=template(EventKind.NOTIFY, ItemPattern(y_family, ()), "b"),
        delay=delay,
        steps=(RhsStep(template(EventKind.WRITE, cache_y, "b")),)
        + agreement_steps(),
    )
    private = tuple(
        (family, app_site)
        for family in (cache_x_family, cache_y_family, flag_family, tb_family)
    )
    return StrategySpec(
        name=f"monitor({x_family} = {y_family})",
        kind="monitor",
        description="maintain Flag/Tb agreement-window auxiliary data",
        rules=(rule_x, rule_y),
        private_families=private,
        metadata={
            "flag_family": flag_family,
            "tb_family": tb_family,
            "cache_families": (cache_x_family, cache_y_family),
        },
    )


def arithmetic_maintenance(
    target_family: str,
    operand_families: tuple[str, ...],
    target_site: str,
    delay: Ticks,
    transport: str = "notify",
    period: Optional[Ticks] = None,
) -> StrategySpec:
    """Maintain ``X = Y + Z + ...`` via the Section 7.1 decomposition.

    Per operand ``O`` (a plain item at a remote site) a shell-private cache
    ``Cached_O`` is kept at the target's site; with the default ``notify``
    transport the cache copy rides on notifications::

        N(O, b) -> [δ] W(Cached_O, b)

    while ``transport='poll'`` (for read-only operands) polls instead::

        P(p) -> [δ] RR(O)          R(O, b) -> [δ] W(Cached_O, b)

    Either way, a recompute rule fires whenever a cache changes, using a
    binder equality to capture the new sum (the rule stays dormant until
    every cache is populated)::

        W(Cached_O, b) ∧ (v == Cached_Y + Cached_Z) -> [δ] WR(X, v)

    The recompute rule triggers on a *generated* private write — rule
    chaining, bounded by the shell's chain-depth limit.
    """
    if transport not in ("notify", "poll"):
        raise SpecError(f"unknown transport {transport!r}")
    if transport == "poll" and period is None:
        raise SpecError("polling transport needs a period")
    caches = {family: f"Cached_{family}" for family in operand_families}
    sum_expr: Expr = ItemRead(ItemPattern(caches[operand_families[0]], ()))
    for family in operand_families[1:]:
        sum_expr = Binary(
            "+", sum_expr, ItemRead(ItemPattern(caches[family], ()))
        )
    rules: list[Rule] = []
    for family in operand_families:
        cache = ItemPattern(caches[family], ())
        if transport == "notify":
            rules.append(
                Rule(
                    name=f"cache_{family}_for_{target_family}",
                    lhs=template(
                        EventKind.NOTIFY, ItemPattern(family, ()), "b"
                    ),
                    delay=delay,
                    steps=(RhsStep(template(EventKind.WRITE, cache, "b")),),
                )
            )
        else:
            assert period is not None
            rules.append(
                Rule(
                    name=f"poll_{family}_for_{target_family}",
                    lhs=Template(EventKind.PERIODIC, None, (Const(period),)),
                    delay=delay,
                    steps=(
                        RhsStep(
                            template(
                                EventKind.READ_REQUEST,
                                ItemPattern(family, ()),
                            )
                        ),
                    ),
                )
            )
            rules.append(
                Rule(
                    name=f"cache_{family}_for_{target_family}",
                    lhs=template(
                        EventKind.READ_RESPONSE, ItemPattern(family, ()), "b"
                    ),
                    delay=delay,
                    steps=(RhsStep(template(EventKind.WRITE, cache, "b")),),
                )
            )
        rules.append(
            Rule(
                name=f"recompute_{target_family}_on_{family}",
                lhs=template(EventKind.WRITE, cache, "b"),
                condition=Binary("==", Name("v"), sum_expr),
                delay=delay,
                steps=(
                    RhsStep(
                        template(
                            EventKind.WRITE_REQUEST,
                            ItemPattern(target_family, ()),
                            "v",
                        )
                    ),
                ),
            )
        )
    return StrategySpec(
        name=f"arithmetic({target_family} = "
        f"{' + '.join(operand_families)})",
        kind="arithmetic",
        description=(
            "cache each operand at the target's site and recompute the sum"
        ),
        rules=tuple(rules),
        private_families=tuple(
            (cache, target_site) for cache in caches.values()
        ),
        metadata={"cache_families": tuple(caches.values())},
    )


def eod_batch(
    src_family: str,
    dst_family: str,
    fire_at: Ticks,
    delay: Ticks,
    params: tuple[str, ...] = (),
) -> StrategySpec:
    """End-of-day bulk propagation (Section 6.4).

    A daily timer (phase ``fire_at`` ticks after midnight) scans the source
    family and forwards every value; combined with a no-update-window
    interface this yields a periodic guarantee.
    """
    from repro.core.timebase import DAY

    spec = polling(
        src_family,
        dst_family,
        period=DAY,
        delay=delay,
        params=params,
        phase=fire_at,
    )
    return StrategySpec(
        name=f"eod_batch({src_family} -> {dst_family})",
        kind="eod-batch",
        description="propagate all values once per day at a fixed time",
        rules=spec.rules,
        timer_phases=spec.timer_phases,
        metadata={"fire_at": fire_at},
    )


def eod_cleanup(
    parent_family: str,
    child_family: str,
    fire_at: Ticks,
    delay: Ticks,
    params: tuple[str, ...] = ("n",),
) -> StrategySpec:
    """Daily referential cleanup (Section 6.2).

    Once a day, scan the parent family; for each existing parent, read the
    corresponding child; if the child is missing, delete the parent (write
    MISSING).  Rules::

        P(1 day)                      -> [ε] RR(parent(n))
        R(parent(n), v) ∧ v != MISSING -> [ε] RR(child(n))
        R(child(n), b) ∧ b == MISSING  -> [δ] WR(parent(n), MISSING)
    """
    from repro.core.timebase import DAY

    parent = _item(parent_family, params)
    child = _item(child_family, params)
    scan_rule = Rule(
        name=f"scan_{parent_family}",
        lhs=Template(EventKind.PERIODIC, None, (Const(DAY),)),
        delay=delay,
        steps=(RhsStep(template(EventKind.READ_REQUEST, parent)),),
    )
    check_rule = Rule(
        name=f"check_child_of_{parent_family}",
        lhs=template(EventKind.READ_RESPONSE, parent, "v"),
        condition=Binary("!=", Name("v"), Literal(MISSING)),
        delay=delay,
        steps=(RhsStep(template(EventKind.READ_REQUEST, child)),),
    )
    cleanup_rule = Rule(
        name=f"delete_orphan_{parent_family}",
        lhs=template(EventKind.READ_RESPONSE, child, "b"),
        condition=Binary("==", Name("b"), Literal(MISSING)),
        delay=delay,
        steps=(
            RhsStep(
                template(EventKind.WRITE_REQUEST, parent, Const(MISSING))
            ),
        ),
    )
    return StrategySpec(
        name=f"eod_cleanup({parent_family} -> {child_family})",
        kind="eod-cleanup",
        description="daily deletion of parent records lacking a child",
        rules=(scan_rule, check_rule, cleanup_rule),
        timer_phases={scan_rule.name: fire_at},
    )
