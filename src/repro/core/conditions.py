"""Condition expressions for rule left- and right-hand sides.

A condition ``C`` in an interface statement ``E1 ∧ C -> [δ] E2`` or a strategy
step ``C ? E`` is a boolean expression over (a) the variables bound by
matching the triggering event and (b) data items *local to the evaluating
site* (Section 3.2: "the condition C can refer to data at the site of the
right-hand side event only").

Names are resolved the way the paper's notation implies: an identifier is a
rule variable if the matching interpretation binds it, otherwise it is a
local data item (e.g. the CM-Shell cache ``Cx`` in the cached-propagation
strategy).  Parenthesized identifiers like ``cache(n)`` are always local,
parameterized data items.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.core.errors import BindingError, SpecError
from repro.core.items import MISSING, DataItemRef, Value
from repro.core.terms import Bindings, ItemPattern, ground_item


class LocalData(Protocol):
    """What a condition may read besides its bindings: local items only."""

    def read_local(self, ref: DataItemRef) -> Value:
        """Current local value of ``ref``; MISSING if it does not exist."""
        ...


class _NoLocalData:
    """Environment for conditions that must not touch local data."""

    def read_local(self, ref: DataItemRef) -> Value:
        raise BindingError(f"no local data available to read {ref}")


#: Environment usable when evaluating conditions with bindings only.
NO_LOCAL_DATA = _NoLocalData()


class Expr:
    """Base class for condition/With expressions."""

    __slots__ = ()

    def variables(self) -> set[str]:
        """Free identifier names (variables-or-items; resolution is dynamic)."""
        return set()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant."""

    value: Value

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Name(Expr):
    """An identifier: a bound variable if the bindings define it, else a
    plain (argument-less) local data item."""

    name: str

    def __str__(self) -> str:
        return self.name

    def variables(self) -> set[str]:
        return {self.name}


@dataclass(frozen=True)
class ItemRead(Expr):
    """An explicitly parameterized local data item read, e.g. ``cache(n)``."""

    pattern: ItemPattern

    def __str__(self) -> str:
        return str(self.pattern)

    def variables(self) -> set[str]:
        return self.pattern.variables()


@dataclass(frozen=True)
class Unary(Expr):
    """``-x`` or ``not x``."""

    op: str
    operand: Expr

    def __str__(self) -> str:
        spacer = " " if self.op == "not" else ""
        return f"{self.op}{spacer}{self.operand}"

    def variables(self) -> set[str]:
        return self.operand.variables()


@dataclass(frozen=True)
class Binary(Expr):
    """A binary arithmetic, comparison, or boolean operation."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True)
class Call(Expr):
    """A builtin call: ``abs(x)`` or ``exists(item)``."""

    func: str
    args: tuple[Expr, ...]

    def __str__(self) -> str:
        rendered = ", ".join(str(a) for a in self.args)
        return f"{self.func}({rendered})"

    def variables(self) -> set[str]:
        found: set[str] = set()
        for arg in self.args:
            found |= arg.variables()
        return found


#: Binary arithmetic operators, shared with the rule compiler
#: (:mod:`repro.core.compile`) so both evaluators agree on semantics.
ARITH_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}

#: Binary comparison operators.  ``==``/``!=`` accept MISSING operands;
#: ordered comparisons against MISSING raise :class:`BindingError` (both
#: evaluators enforce this identically).
COMPARE_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

_ARITH = ARITH_OPS
_COMPARE = COMPARE_OPS


def _resolve_operand(expr: Expr, bindings: Bindings, local: LocalData) -> Value:
    """Evaluate a subexpression down to a plain value."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Name):
        if expr.name in bindings:
            return bindings[expr.name]
        if expr.name[0].isupper():
            # The paper's convention: upper-case names are local data items,
            # lower-case names are rule parameters.
            return local.read_local(DataItemRef(expr.name))
        raise BindingError(f"unbound rule variable: {expr.name}")
    if isinstance(expr, ItemRead):
        ref = ground_item(expr.pattern, bindings)
        return local.read_local(ref)
    if isinstance(expr, Unary):
        value = _resolve_operand(expr.operand, bindings, local)
        if expr.op == "-":
            return -value
        if expr.op == "not":
            return not value
        raise SpecError(f"unknown unary operator: {expr.op}")
    if isinstance(expr, Binary):
        if expr.op in ("and", "or"):
            left = _resolve_operand(expr.left, bindings, local)
            if expr.op == "and":
                if not left:
                    return False
                return bool(_resolve_operand(expr.right, bindings, local))
            if left:
                return True
            return bool(_resolve_operand(expr.right, bindings, local))
        left = _resolve_operand(expr.left, bindings, local)
        right = _resolve_operand(expr.right, bindings, local)
        if expr.op in _ARITH:
            return _ARITH[expr.op](left, right)
        if expr.op in _COMPARE:
            if expr.op in ("==", "!="):
                return _COMPARE[expr.op](left, right)
            if left is MISSING or right is MISSING:
                raise BindingError(
                    f"ordered comparison against MISSING in {expr}"
                )
            return _COMPARE[expr.op](left, right)
        raise SpecError(f"unknown binary operator: {expr.op}")
    if isinstance(expr, Call):
        if expr.func == "abs":
            if len(expr.args) != 1:
                raise SpecError("abs() takes exactly one argument")
            return abs(_resolve_operand(expr.args[0], bindings, local))
        if expr.func == "exists":
            if len(expr.args) != 1:
                raise SpecError("exists() takes exactly one argument")
            arg = expr.args[0]
            if isinstance(arg, Name):
                ref = DataItemRef(arg.name)
            elif isinstance(arg, ItemRead):
                ref = ground_item(arg.pattern, bindings)
            else:
                raise SpecError("exists() argument must be a data item")
            return local.read_local(ref) is not MISSING
        raise SpecError(f"unknown function: {expr.func}")
    raise SpecError(f"cannot evaluate expression node: {expr!r}")


def evaluate(expr: Expr, bindings: Bindings, local: LocalData = NO_LOCAL_DATA) -> bool:
    """Evaluate a condition to a boolean.

    ``bindings`` is the matching interpretation from the triggering event;
    ``local`` exposes the evaluating site's data (the CM-Shell private store,
    by default nothing).
    """
    return bool(_resolve_operand(expr, bindings, local))


def evaluate_value(
    expr: Expr, bindings: Bindings, local: LocalData = NO_LOCAL_DATA
) -> Value:
    """Evaluate an expression to its raw value (used by value expressions)."""
    return _resolve_operand(expr, bindings, local)


#: The always-true condition (used when a rule omits its condition).
TRUE = Literal(True)
