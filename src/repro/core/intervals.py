"""Small interval-set algebra used by the guarantee checker.

Guarantee checking over piecewise-constant state histories reduces to
operations on finite unions of half-open time intervals ``[start, end)``:
"the set of times at which Y = y", "the set of t1 for which some witness t2
exists", and so on.  :class:`IntervalSet` provides the needed operations.

All endpoints are integer ticks, so open/closed subtleties at real-valued
endpoints reduce to ±1 tick adjustments made explicit by the callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.timebase import Ticks


@dataclass(frozen=True)
class Interval:
    """A half-open interval ``[start, end)`` of virtual time."""

    start: Ticks
    end: Ticks

    @property
    def empty(self) -> bool:
        """Whether the interval contains no ticks."""
        return self.start >= self.end

    @property
    def length(self) -> Ticks:
        """Tick count covered (0 for empty intervals)."""
        return max(0, self.end - self.start)

    def contains(self, time: Ticks) -> bool:
        """Point membership (half-open)."""
        return self.start <= time < self.end

    def intersect(self, other: "Interval") -> "Interval":
        """The (possibly empty) overlap with another interval."""
        return Interval(max(self.start, other.start), min(self.end, other.end))

    def __str__(self) -> str:
        return f"[{self.start}, {self.end})"


class IntervalSet:
    """A normalized (sorted, disjoint, non-empty) union of intervals."""

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._intervals = self._normalize(intervals)

    @staticmethod
    def _normalize(intervals: Iterable[Interval]) -> list[Interval]:
        pending = sorted(
            (i for i in intervals if not i.empty), key=lambda i: (i.start, i.end)
        )
        merged: list[Interval] = []
        for interval in pending:
            if merged and interval.start <= merged[-1].end:
                if interval.end > merged[-1].end:
                    merged[-1] = Interval(merged[-1].start, interval.end)
            else:
                merged.append(interval)
        return merged

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __repr__(self) -> str:
        inner = ", ".join(str(i) for i in self._intervals)
        return f"IntervalSet({inner})"

    @property
    def total_length(self) -> Ticks:
        """Sum of the member intervals' lengths."""
        return sum(i.length for i in self._intervals)

    def contains(self, time: Ticks) -> bool:
        """Point membership."""
        return any(i.contains(time) for i in self._intervals)

    def covers(self, interval: Interval) -> bool:
        """Whether a single interval is fully inside this set."""
        if interval.empty:
            return True
        for candidate in self._intervals:
            if candidate.start <= interval.start and interval.end <= candidate.end:
                return True
        return False

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Set union."""
        return IntervalSet(list(self._intervals) + list(other._intervals))

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        """Set intersection."""
        result: list[Interval] = []
        for a in self._intervals:
            for b in other._intervals:
                piece = a.intersect(b)
                if not piece.empty:
                    result.append(piece)
        return IntervalSet(result)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        """This set minus ``other``."""
        result: list[Interval] = []
        for interval in self._intervals:
            pieces = [interval]
            for cut in other._intervals:
                next_pieces: list[Interval] = []
                for piece in pieces:
                    if cut.end <= piece.start or cut.start >= piece.end:
                        next_pieces.append(piece)
                        continue
                    if cut.start > piece.start:
                        next_pieces.append(Interval(piece.start, cut.start))
                    if cut.end < piece.end:
                        next_pieces.append(Interval(cut.end, piece.end))
                pieces = next_pieces
            result.extend(pieces)
        return IntervalSet(result)

    def uncovered(self, interval: Interval) -> "IntervalSet":
        """The part of ``interval`` not covered by this set."""
        return IntervalSet([interval]).difference(self)
