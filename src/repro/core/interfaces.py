"""The interface menu of Section 3.1.1.

An *interface* is a promise a database makes to the constraint manager about
one data item (or parameterized family of items): how it may be read,
written, or monitored, and within what time bound.  Interfaces are specified
as rules; this module provides the paper's standard menu as constructors
producing :class:`InterfaceSpec` objects, each carrying its rule and the
machine-readable attributes (kind, bound, period) the strategy-suggestion
catalog matches against.

Database administrators pick interfaces from this menu (or write custom
rules) and the CM-Translators advertise them to the CM-Shells during
initialization (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.core.conditions import TRUE, Binary, Expr, ItemRead, Name
from repro.core.errors import SpecError
from repro.core.events import EventKind
from repro.core.rules import RhsStep, Rule, RuleRole
from repro.core.templates import FALSE_TEMPLATE, Template, template
from repro.core.terms import Const, ItemPattern, Var
from repro.core.timebase import Ticks, to_seconds


class InterfaceKind(Enum):
    """The standard interface shapes of Section 3.1.1."""

    WRITE = "write"
    READ = "read"
    NOTIFY = "notify"
    CONDITIONAL_NOTIFY = "conditional-notify"
    PERIODIC_NOTIFY = "periodic-notify"
    NO_SPONTANEOUS_WRITE = "no-spontaneous-write"
    UPDATE_WINDOW = "update-window"


@dataclass(frozen=True)
class InterfaceSpec:
    """One offered interface: the rule plus its searchable attributes."""

    kind: InterfaceKind
    family: str
    rule: Rule
    bound: Ticks = 0
    period: Optional[Ticks] = None
    params: tuple[str, ...] = ()
    #: For UPDATE_WINDOW interfaces: the daily quiet window (ticks past
    #: midnight) during which no spontaneous writes occur.  A window that
    #: wraps midnight has start > end.
    window_start: Optional[Ticks] = None
    window_end: Optional[Ticks] = None

    def __str__(self) -> str:
        return f"{self.kind.value}({self.family}): {self.rule}"


def _item(family: str, params: tuple[str, ...]) -> ItemPattern:
    return ItemPattern(family, tuple(Var(p) for p in params))


def write_interface(
    family: str, bound: Ticks, params: tuple[str, ...] = ()
) -> InterfaceSpec:
    """``WR(X, b) -> [δ] W(X, b)`` — CM write requests are honoured in δ."""
    item = _item(family, params)
    rule = Rule(
        name=f"iface_write_{family}",
        lhs=template(EventKind.WRITE_REQUEST, item, "b"),
        delay=bound,
        steps=(RhsStep(template(EventKind.WRITE, item, "b")),),
        role=RuleRole.INTERFACE,
    )
    return InterfaceSpec(InterfaceKind.WRITE, family, rule, bound, params=params)


def read_interface(
    family: str, bound: Ticks, params: tuple[str, ...] = ()
) -> InterfaceSpec:
    """``RR(X) ∧ (X = b) -> [δ] R(X, b)`` — reads answered within δ."""
    item = _item(family, params)
    condition: Expr = Binary("==", ItemRead(item), Name("b"))
    rule = Rule(
        name=f"iface_read_{family}",
        lhs=template(EventKind.READ_REQUEST, item),
        condition=condition,
        delay=bound,
        steps=(RhsStep(template(EventKind.READ_RESPONSE, item, "b")),),
        role=RuleRole.INTERFACE,
    )
    return InterfaceSpec(InterfaceKind.READ, family, rule, bound, params=params)


def notify_interface(
    family: str, bound: Ticks, params: tuple[str, ...] = ()
) -> InterfaceSpec:
    """``Ws(X, b) -> [δ] N(X, b)`` — spontaneous updates are pushed in δ."""
    item = _item(family, params)
    rule = Rule(
        name=f"iface_notify_{family}",
        lhs=template(EventKind.SPONTANEOUS_WRITE, item, "b"),
        delay=bound,
        steps=(RhsStep(template(EventKind.NOTIFY, item, "b")),),
        role=RuleRole.INTERFACE,
    )
    return InterfaceSpec(InterfaceKind.NOTIFY, family, rule, bound, params=params)


def conditional_notify_interface(
    family: str,
    bound: Ticks,
    condition: Expr,
    params: tuple[str, ...] = (),
) -> InterfaceSpec:
    """``Ws(X, a, b) ∧ C -> [δ] N(X, b)`` — notify only when C holds.

    The condition may use the parameters ``a`` (old value) and ``b`` (new
    value), e.g. the paper's 10%-change filter
    ``abs(b - a) > a * 0.1``.
    """
    item = _item(family, params)
    rule = Rule(
        name=f"iface_cond_notify_{family}",
        lhs=template(EventKind.SPONTANEOUS_WRITE, item, "a", "b"),
        condition=condition,
        delay=bound,
        steps=(RhsStep(template(EventKind.NOTIFY, item, "b")),),
        role=RuleRole.INTERFACE,
    )
    return InterfaceSpec(
        InterfaceKind.CONDITIONAL_NOTIFY, family, rule, bound, params=params
    )


def periodic_notify_interface(
    family: str, period: Ticks, bound: Ticks
) -> InterfaceSpec:
    """``P(p) ∧ (X = b) -> [ε] N(X, b)`` — current value pushed every p.

    Only offered for plain (non-parameterized) items: a periodic push of a
    whole family would be a bulk feed, which the menu models instead as
    polling with an enumerating read (see strategies).
    """
    item = ItemPattern(family, ())
    condition: Expr = Binary("==", Name("b"), ItemRead(item))
    rule = Rule(
        name=f"iface_periodic_notify_{family}",
        lhs=Template(EventKind.PERIODIC, None, (Const(period),)),
        condition=condition,
        delay=bound,
        steps=(RhsStep(template(EventKind.NOTIFY, item, "b")),),
        role=RuleRole.INTERFACE,
    )
    return InterfaceSpec(
        InterfaceKind.PERIODIC_NOTIFY, family, rule, bound, period=period
    )


def no_spontaneous_write_interface(
    family: str, params: tuple[str, ...] = ()
) -> InterfaceSpec:
    """``Ws(X, b) -> F`` — the item is never updated behind the CM's back."""
    item = _item(family, params)
    rule = Rule(
        name=f"iface_no_spont_{family}",
        lhs=template(EventKind.SPONTANEOUS_WRITE, item, "b"),
        delay=0,
        steps=(RhsStep(FALSE_TEMPLATE),),
        role=RuleRole.INTERFACE,
    )
    return InterfaceSpec(InterfaceKind.NO_SPONTANEOUS_WRITE, family, rule, 0,
                         params=params)


def update_window_interface(
    family: str,
    window_start: Ticks,
    window_end: Ticks,
    params: tuple[str, ...] = (),
) -> InterfaceSpec:
    """No spontaneous writes during a daily quiet window (Section 6.4).

    The paper's banking example: "the branch offers an interface that
    guarantees that there will be no updates to account balances between
    5 p.m. and 8 a.m."  Formally this is the prohibition
    ``Ws(X, b) ∧ in_window(t) -> F``; since the rule language's conditions
    range over data, not the clock, the window is carried as interface
    metadata and the prohibition rule documents the shape.
    """
    item = _item(family, params)
    rule = Rule(
        name=f"iface_update_window_{family}",
        lhs=template(EventKind.SPONTANEOUS_WRITE, item, "b"),
        delay=0,
        steps=(RhsStep(FALSE_TEMPLATE),),
        role=RuleRole.INTERFACE,
    )
    return InterfaceSpec(
        InterfaceKind.UPDATE_WINDOW,
        family,
        rule,
        0,
        params=params,
        window_start=window_start,
        window_end=window_end,
    )


@dataclass
class InterfaceSet:
    """All interfaces offered for the item families of one source."""

    specs: list[InterfaceSpec] = field(default_factory=list)

    def add(self, spec: InterfaceSpec) -> None:
        """Add one offered interface."""
        self.specs.append(spec)

    def for_family(self, family: str) -> list[InterfaceSpec]:
        """All interfaces offered for a family."""
        return [s for s in self.specs if s.family == family]

    def kinds_for(self, family: str) -> set[InterfaceKind]:
        """The interface kinds offered for a family."""
        return {s.kind for s in self.for_family(family)}

    def get(self, family: str, kind: InterfaceKind) -> InterfaceSpec:
        """One offered interface by (family, kind); raises if absent."""
        for spec in self.for_family(family):
            if spec.kind is kind:
                return spec
        raise SpecError(
            f"no {kind.value} interface offered for {family!r} "
            f"(offered: {sorted(k.value for k in self.kinds_for(family))})"
        )

    def has(self, family: str, kind: InterfaceKind) -> bool:
        """Whether a (family, kind) interface is offered."""
        return any(s.kind is kind for s in self.for_family(family))

    def bound(self, family: str, kind: InterfaceKind) -> Ticks:
        """The δ of one offered interface (0 if the kind is unbounded)."""
        return self.get(family, kind).bound

    def describe(self) -> str:
        """Menu-style listing for operators."""
        lines = []
        for spec in self.specs:
            suffix = ""
            if spec.period is not None:
                suffix = f", period {to_seconds(spec.period):g}s"
            lines.append(
                f"  {spec.family}: {spec.kind.value} "
                f"(bound {to_seconds(spec.bound):g}s{suffix})"
            )
        return "\n".join(lines)
