"""The weakened referential-integrity guarantee of Section 6.2.

The paper's example: every project record must have a salary record, but the
constraint "may be violated for any one employee ID for a period of at most
24 hours"::

    E(project(i))@t  =>  E(salary(i)) within [t, t + 86400]

Checking: for each parameter value ``i``, compute the time set where the
parent exists but the child does not; the guarantee holds iff every maximal
such violation window is no longer than the grace period.  A window still
open at the trace horizon and shorter than the grace period is inconclusive
(the cleanup may still happen in time).
"""

from __future__ import annotations

from repro.core.guarantees.base import Guarantee, GuaranteeReport
from repro.core.intervals import Interval, IntervalSet
from repro.core.items import MISSING, DataItemRef
from repro.core.timebase import Ticks, format_ticks, to_seconds
from repro.core.trace import ExecutionTrace


def _existence_intervals(trace: ExecutionTrace, ref: DataItemRef) -> IntervalSet:
    """Times at which ``ref`` exists (value is not MISSING)."""
    timeline = trace.timeline(ref)
    return IntervalSet(
        Interval(s.start, s.end)
        for s in timeline.segments()
        if s.value is not MISSING
    )


class ReferentialGuarantee(Guarantee):
    """Existence dependency with a grace window, per parameter value."""

    def __init__(self, parent_family: str, child_family: str, grace: Ticks):
        self.parent_family = parent_family
        self.child_family = child_family
        self.grace = grace
        formula = (
            f"E({parent_family}(i))@t => E({child_family}(i))@@"
            f"[t, t + {to_seconds(grace):g}s]"
        )
        super().__init__(
            f"referential({parent_family} -> {child_family}, "
            f"grace={to_seconds(grace):g}s)",
            formula,
            metric=True,
        )

    def check(self, trace: ExecutionTrace) -> GuaranteeReport:
        """Measure every violation window against the grace period."""
        report = GuaranteeReport(self.name, valid=True)
        arg_tuples: set[tuple] = set()
        for ref in trace.refs_of_family(self.parent_family):
            arg_tuples.add(ref.args)
        max_window: Ticks = 0
        for args in sorted(arg_tuples, key=lambda a: tuple(map(str, a))):
            report.checked_instances += 1
            parent = DataItemRef(self.parent_family, args)
            child = DataItemRef(self.child_family, args)
            violations = _existence_intervals(trace, parent).difference(
                _existence_intervals(trace, child)
            )
            for window in violations:
                open_at_horizon = window.end >= trace.horizon
                if window.length > self.grace:
                    report.valid = False
                    report.counterexamples.append(
                        f"{parent} dangled for {to_seconds(window.length):g}s "
                        f"from {format_ticks(window.start)} "
                        f"(> grace {to_seconds(self.grace):g}s)"
                    )
                elif open_at_horizon:
                    report.inconclusive += 1
                max_window = max(max_window, window.length)
        report.stats["max_violation_window_seconds"] = to_seconds(max_window)
        return report


def referential_within(
    parent_family: str, child_family: str, grace_seconds: float
) -> ReferentialGuarantee:
    """Build the Section 6.2 guarantee with a grace period in seconds."""
    from repro.core.timebase import seconds

    return ReferentialGuarantee(parent_family, child_family, seconds(grace_seconds))
