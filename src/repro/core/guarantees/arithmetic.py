"""Guarantees for decomposed arithmetic constraints (Section 7.1).

The paper manages ``X = Y + Z`` by caching ``Yc``/``Zc`` at X's site and
splitting the constraint into distributed copies plus the local constraint
``X = Yc + Zc``.  The per-operand copies reuse the Section 3.3.1 guarantee
family; the local residue gets :class:`SumFollowsGuarantee`: the metric-
follows statement against the *derived sum timeline*::

    (X = v)@t1  =>  (Yc + Zc = v)@t2 ∧ (t1 - κ < t2 < t1)

i.e. X only ever holds values the cache sum held recently.  (The honest
target is the cache sum, not ``Y + Z`` directly: with independent
propagation delays, mixed cache states can transiently form sums that the
remote pair never held simultaneously — the decomposition's documented
weakening.)
"""

from __future__ import annotations

from repro.core.guarantees.base import Guarantee, GuaranteeReport
from repro.core.intervals import Interval, IntervalSet
from repro.core.items import MISSING, DataItemRef
from repro.core.timebase import Ticks, to_seconds
from repro.core.trace import ExecutionTrace, Timeline


def sum_timeline(trace: ExecutionTrace, refs: list[DataItemRef]) -> Timeline:
    """The pointwise sum of several item timelines.

    The sum is MISSING wherever any operand is MISSING (before all caches
    are populated).
    """
    timelines = [trace.timeline(ref) for ref in refs]
    points: set[Ticks] = {0}
    for timeline in timelines:
        for time, __ in timeline.change_points():
            points.add(time)
    changes: list[tuple[Ticks, object]] = []
    for time in sorted(points):
        values = [t.value_at(time) for t in timelines]
        if any(v is MISSING for v in values):
            changes.append((time, MISSING))
        else:
            changes.append((time, sum(values)))
    return Timeline(changes, trace.horizon)


class SumFollowsGuarantee(Guarantee):
    """Metric follows of a target item against the sum of its operands."""

    def __init__(
        self,
        target_ref: DataItemRef,
        operand_refs: list[DataItemRef],
        within: Ticks,
    ) -> None:
        self.target_ref = target_ref
        self.operand_refs = list(operand_refs)
        self.within = within
        operands = " + ".join(str(r) for r in operand_refs)
        formula = (
            f"({target_ref} = v)@t1 => ({operands} = v)@t2 "
            f"∧ (t1 - {to_seconds(within):g}s < t2 < t1)"
        )
        super().__init__(
            f"sum_follows({target_ref} = {operands}, "
            f"κ={to_seconds(within):g}s)",
            formula,
            metric=True,
        )

    def check(self, trace: ExecutionTrace) -> GuaranteeReport:
        """Evaluate the guarantee over a recorded trace."""
        report = GuaranteeReport(self.name, valid=True, checked_instances=1)
        target = trace.timeline(self.target_ref)
        source = sum_timeline(trace, self.operand_refs)
        source_segments = [
            s for s in source.segments() if s.value is not MISSING
        ]
        for segment in target.segments():
            if segment.value is MISSING:
                continue
            allowed: list[Interval] = []
            for witness in source_segments:
                if witness.value != segment.value:
                    continue
                start = witness.start + 1 if witness.start > 0 else 0
                allowed.append(
                    Interval(start, witness.end + self.within - 1)
                )
            uncovered = IntervalSet(allowed).uncovered(
                Interval(segment.start, segment.end)
            )
            if uncovered:
                report.valid = False
                report.counterexamples.append(
                    f"{self.target_ref} held {segment.value!r} during "
                    f"[{segment.start}, {segment.end}) without the operand "
                    f"sum matching recently enough"
                )
        return report
