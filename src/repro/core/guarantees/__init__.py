"""Guarantees: weakened-consistency statements and their trace checkers.

Section 3.3 of the paper defines guarantees as temporal-logic statements over
event occurrences and data predicates.  This package provides:

- a :class:`~repro.core.guarantees.base.Guarantee` object per guarantee
  *family* in the paper, each carrying its paper-style formula and a rigorous
  checker that evaluates the guarantee over a recorded
  :class:`~repro.core.trace.ExecutionTrace`;
- uniform :class:`~repro.core.guarantees.base.GuaranteeReport` results with
  counterexamples and measured statistics (e.g. the smallest κ for which the
  metric variant holds).

Families implemented (paper anchor in parentheses):

- ``follows(X, Y)`` — "Y follows X", guarantee (1); with ``within=κ`` the
  metric variant, guarantee (4).
- ``leads(X, Y)`` — "X leads Y", guarantee (2); optional metric bound.
- ``strictly_follows(X, Y)`` — "Y strictly follows X", guarantee (3).
- ``invariant(...)`` — unconditional predicates such as the Demarcation
  Protocol's ``X <= Y`` (Section 6.1).
- ``referential_within(...)`` — existence dependencies with a grace period
  (Section 6.2).
- ``monitor_window(...)`` — the Flag/Tb auxiliary-data guarantee
  (Section 6.3).
- ``periodic(...)`` — constraints valid during daily windows (Section 6.4).
"""

from repro.core.guarantees.base import Guarantee, GuaranteeReport
from repro.core.guarantees.copy import (
    FollowsGuarantee,
    LeadsGuarantee,
    StrictlyFollowsGuarantee,
    follows,
    leads,
    strictly_follows,
)
from repro.core.guarantees.invariants import (
    InvariantGuarantee,
    PeriodicCopyGuarantee,
    PeriodicGuarantee,
    invariant,
    periodic,
)
from repro.core.guarantees.referential import (
    ReferentialGuarantee,
    referential_within,
)
from repro.core.guarantees.monitor import MonitorGuarantee, monitor_window

__all__ = [
    "Guarantee",
    "GuaranteeReport",
    "FollowsGuarantee",
    "LeadsGuarantee",
    "StrictlyFollowsGuarantee",
    "follows",
    "leads",
    "strictly_follows",
    "InvariantGuarantee",
    "PeriodicCopyGuarantee",
    "PeriodicGuarantee",
    "invariant",
    "periodic",
    "ReferentialGuarantee",
    "referential_within",
    "MonitorGuarantee",
    "monitor_window",
]
