"""The monitoring guarantee of Section 6.3.

When the CM can observe but not update ``X`` and ``Y``, the best it can do is
*monitor* the copy constraint, maintaining auxiliary data items at the
application's site: a boolean ``Flag`` and a timestamp ``Tb`` recording the
start of the current agreement interval.  The offered guarantee is::

    ((Flag = true) ∧ (Tb = s))@t  =>  (X = Y)@@[s, t - κ]

i.e. whenever an application reads ``Flag = true`` and ``Tb = s``, the
constraint really did hold throughout ``[s, t - κ]``, where κ absorbs the
notification delays.  This module checks the guarantee's **soundness** over a
trace: for every instant at which Flag was true, the claimed interval must
contain no disagreement.
"""

from __future__ import annotations

from repro.core.guarantees.base import Guarantee, GuaranteeReport
from repro.core.items import MISSING, DataItemRef
from repro.core.timebase import Ticks, format_ticks, to_seconds
from repro.core.trace import ExecutionTrace


class MonitorGuarantee(Guarantee):
    """Soundness of the Flag/Tb monitoring auxiliary data."""

    def __init__(
        self,
        x_ref: DataItemRef,
        y_ref: DataItemRef,
        flag_ref: DataItemRef,
        tb_ref: DataItemRef,
        kappa: Ticks,
        start_margin: Ticks = 0,
    ) -> None:
        self.x_ref = x_ref
        self.y_ref = y_ref
        self.flag_ref = flag_ref
        self.tb_ref = tb_ref
        self.kappa = kappa
        #: Margin added to the interval's *start*: the claim becomes
        #: ``[s + start_margin, t - κ]``.  κ absorbs notification delays at
        #: the right end; the start margin absorbs clock skew in the Tb
        #: stamp (Section 7.2: "a clock skew of a few seconds ... can be
        #: accommodated by including an error margin in the interval").
        self.start_margin = start_margin
        margin = (
            f" + {to_seconds(start_margin):g}s" if start_margin else ""
        )
        formula = (
            f"(({flag_ref} = true) ∧ ({tb_ref} = s))@t => "
            f"({x_ref} = {y_ref})@@[s{margin}, t - {to_seconds(kappa):g}s]"
        )
        super().__init__(
            f"monitor({x_ref} = {y_ref}, κ={to_seconds(kappa):g}s"
            + (f", start+{to_seconds(start_margin):g}s" if start_margin else "")
            + ")",
            formula,
            metric=True,
        )

    def check(self, trace: ExecutionTrace) -> GuaranteeReport:
        """Evaluate soundness of every Flag=true claim in the trace."""
        report = GuaranteeReport(self.name, valid=True, checked_instances=0)
        flag_timeline = trace.timeline(self.flag_ref)
        tb_timeline = trace.timeline(self.tb_ref)
        covered: Ticks = 0
        for flag_segment in flag_timeline.segments():
            if flag_segment.value is not True:
                continue
            # Sub-divide by Tb changes within the Flag=true segment so each
            # (t, s) instantiation family has a constant s.
            boundaries = {flag_segment.start, flag_segment.end}
            for time, __ in tb_timeline.change_points():
                if flag_segment.start < time < flag_segment.end:
                    boundaries.add(time)
            ordered = sorted(boundaries)
            for start, end in zip(ordered, ordered[1:]):
                s_value = tb_timeline.value_at(start)
                if s_value is MISSING:
                    report.valid = False
                    report.counterexamples.append(
                        f"Flag true at {format_ticks(start)} but Tb unset"
                    )
                    continue
                report.checked_instances += 1
                # The strongest claim in this sub-segment is made by the
                # largest t, i.e. end - 1: the interval [s, end - 1 - κ].
                claim_end = end - 1 - self.kappa
                disagreement = self._first_disagreement(
                    trace, int(s_value) + self.start_margin, claim_end
                )
                if disagreement is not None:
                    report.valid = False
                    report.counterexamples.append(
                        f"Flag claimed {self.x_ref} = {self.y_ref} over "
                        f"[{format_ticks(int(s_value))}, "
                        f"{format_ticks(claim_end)}] but they differed at "
                        f"{format_ticks(disagreement)}"
                    )
                else:
                    covered += max(0, claim_end - int(s_value))
        report.stats["covered_seconds"] = to_seconds(covered)
        horizon = max(trace.horizon, 1)
        report.stats["coverage_fraction"] = covered / horizon
        return report

    def _first_disagreement(
        self, trace: ExecutionTrace, start: Ticks, end: Ticks
    ) -> Ticks | None:
        """Earliest time in ``[start, end]`` at which X != Y, else None."""
        if start > end:
            return None  # vacuous claim
        points = {start}
        for time, __ in trace.timeline(self.x_ref).change_points():
            if start < time <= end:
                points.add(time)
        for time, __ in trace.timeline(self.y_ref).change_points():
            if start < time <= end:
                points.add(time)
        for time in sorted(points):
            if trace.value_at(self.x_ref, time) != trace.value_at(
                self.y_ref, time
            ):
                return time
        return None


def monitor_window(
    x_ref: DataItemRef,
    y_ref: DataItemRef,
    flag_ref: DataItemRef,
    tb_ref: DataItemRef,
    kappa_seconds: float,
) -> MonitorGuarantee:
    """Build the Section 6.3 monitoring guarantee with κ in seconds."""
    from repro.core.timebase import seconds

    return MonitorGuarantee(x_ref, y_ref, flag_ref, tb_ref, seconds(kappa_seconds))
