"""Guarantee base class, reports, and family-pairing helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.items import DataItemRef
from repro.core.trace import ExecutionTrace


@dataclass
class GuaranteeReport:
    """The result of checking one guarantee over one trace.

    ``valid`` is the verdict over everything that could be decided;
    ``inconclusive`` counts obligations whose deadline lies beyond the trace
    horizon (they neither support nor refute the guarantee).
    ``stats`` carries measured quantities the experiments report, such as the
    smallest metric bound that would have held.
    """

    guarantee: str
    valid: bool
    checked_instances: int = 0
    counterexamples: list[str] = field(default_factory=list)
    inconclusive: int = 0
    stats: dict[str, Any] = field(default_factory=dict)

    def merge(self, other: "GuaranteeReport") -> None:
        """Fold another (per-instance) report into this aggregate."""
        self.valid = self.valid and other.valid
        self.checked_instances += other.checked_instances
        self.counterexamples.extend(other.counterexamples)
        self.inconclusive += other.inconclusive
        for key, value in other.stats.items():
            if key in self.stats and isinstance(value, (int, float)):
                self.stats[key] = max(self.stats[key], value)
            else:
                self.stats[key] = value

    def __str__(self) -> str:
        verdict = "VALID" if self.valid else "VIOLATED"
        extra = f", {self.inconclusive} inconclusive" if self.inconclusive else ""
        return (
            f"{self.guarantee}: {verdict} "
            f"({self.checked_instances} instance(s){extra})"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form for run reports and ``--json`` output."""
        return {
            "guarantee": self.guarantee,
            "valid": self.valid,
            "checked_instances": self.checked_instances,
            "counterexamples": list(self.counterexamples),
            "inconclusive": self.inconclusive,
            "stats": dict(self.stats),
        }


class Guarantee:
    """A guarantee: a named, formula-carrying, trace-checkable statement.

    Subclasses implement :meth:`check`.  ``formula`` is the paper-style
    rendering shown to users; ``metric`` distinguishes guarantees that state
    explicit time bounds (Section 3.3) — the distinction matters for failure
    handling (Section 5: metric failures invalidate only metric guarantees).
    """

    def __init__(self, name: str, formula: str, metric: bool) -> None:
        self.name = name
        self.formula = formula
        self.metric = metric

    def check(self, trace: ExecutionTrace) -> GuaranteeReport:
        """Evaluate the guarantee over a recorded trace."""
        raise NotImplementedError

    def __str__(self) -> str:
        kind = "metric" if self.metric else "non-metric"
        return f"{self.name} ({kind}): {self.formula}"


def paired_refs(
    trace: ExecutionTrace, x_family: str, y_family: str
) -> list[tuple[DataItemRef, DataItemRef]]:
    """Instantiate a parameterized copy guarantee over a trace.

    For plain items (no parameters) this returns the single pair
    ``(X, Y)``.  For parameterized families it pairs ``x_family(args)`` with
    ``y_family(args)`` for every argument tuple seen in the trace on either
    side — quantification over data is achieved through parameterized data
    names, as in Section 3.3 of the paper.
    """
    arg_tuples: set[tuple] = set()
    for ref in trace.refs_of_family(x_family):
        arg_tuples.add(ref.args)
    for ref in trace.refs_of_family(y_family):
        arg_tuples.add(ref.args)
    if not arg_tuples:
        arg_tuples.add(())
    return [
        (DataItemRef(x_family, args), DataItemRef(y_family, args))
        for args in sorted(arg_tuples, key=lambda a: tuple(map(str, a)))
    ]
