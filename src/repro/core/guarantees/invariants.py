"""Invariant and periodic guarantees.

- :class:`InvariantGuarantee` — a predicate over data items that must hold at
  **all** times, e.g. the Demarcation Protocol's ``X <= Y`` (Section 6.1).
- :class:`PeriodicGuarantee` — a predicate that must hold during a recurring
  daily window, e.g. "branch and head-office balances are equal every day
  from 5:15 p.m. to 8 a.m." (Section 6.4).

Both are checked exactly: state histories are piecewise constant, so it
suffices to evaluate the predicate once per maximal constant region of the
joint state, which the checker derives by merging the items' change points.
"""

from __future__ import annotations

from typing import Callable

from repro.core.guarantees.base import Guarantee, GuaranteeReport
from repro.core.intervals import Interval, IntervalSet
from repro.core.items import DataItemRef, Value
from repro.core.timebase import DAY, Ticks, format_ticks, to_seconds
from repro.core.trace import ExecutionTrace

Predicate = Callable[[dict[DataItemRef, Value]], bool]


def _joint_change_points(
    trace: ExecutionTrace, items: list[DataItemRef]
) -> list[Ticks]:
    """Sorted distinct times at which any of the items changes value."""
    points: set[Ticks] = {0}
    for ref in items:
        for time, __ in trace.timeline(ref).change_points():
            points.add(time)
    return sorted(points)


def _violation_intervals(
    trace: ExecutionTrace, items: list[DataItemRef], predicate: Predicate
) -> IntervalSet:
    """The set of times at which the predicate does **not** hold."""
    points = _joint_change_points(trace, items)
    horizon = trace.horizon
    bad: list[Interval] = []
    for index, start in enumerate(points):
        end = points[index + 1] if index + 1 < len(points) else horizon
        if end <= start:
            continue
        state = {ref: trace.value_at(ref, start) for ref in items}
        if not predicate(state):
            bad.append(Interval(start, end))
    return IntervalSet(bad)


class InvariantGuarantee(Guarantee):
    """A predicate that must hold at every instant of the trace."""

    def __init__(
        self,
        name: str,
        items: list[DataItemRef],
        predicate: Predicate,
        formula: str,
    ) -> None:
        super().__init__(name, formula, metric=False)
        self.items = list(items)
        self.predicate = predicate

    def check(self, trace: ExecutionTrace) -> GuaranteeReport:
        report = GuaranteeReport(self.name, valid=True, checked_instances=1)
        bad = _violation_intervals(trace, self.items, self.predicate)
        if bad:
            report.valid = False
            for interval in bad:
                report.counterexamples.append(
                    f"invariant violated during [{format_ticks(interval.start)}, "
                    f"{format_ticks(interval.end)})"
                )
        report.stats["violation_time_seconds"] = to_seconds(bad.total_length)
        horizon = max(trace.horizon, 1)
        report.stats["violation_fraction"] = bad.total_length / horizon
        return report


class PeriodicGuarantee(Guarantee):
    """A predicate that must hold throughout a recurring daily window.

    ``window_start`` / ``window_end`` are ticks-since-midnight
    (:func:`repro.core.timebase.clock_time`); a window that "wraps" past
    midnight (e.g. 17:15 -> 08:00) is handled by extending into the next day.
    Windows clipped by the trace horizon are checked over their elapsed part.
    """

    def __init__(
        self,
        name: str,
        items: list[DataItemRef],
        predicate: Predicate,
        window_start: Ticks,
        window_end: Ticks,
        formula: str,
    ) -> None:
        super().__init__(name, formula, metric=True)
        self.items = list(items)
        self.predicate = predicate
        self.window_start = window_start
        self.window_end = window_end

    def windows(self, horizon: Ticks) -> list[Interval]:
        """The concrete daily windows within ``[0, horizon)``."""
        result: list[Interval] = []
        day = 0
        while day * DAY < horizon:
            start = day * DAY + self.window_start
            if self.window_end > self.window_start:
                end = day * DAY + self.window_end
            else:
                end = (day + 1) * DAY + self.window_end
            clipped = Interval(start, min(end, horizon))
            if not clipped.empty:
                result.append(clipped)
            day += 1
        return result

    def check(self, trace: ExecutionTrace) -> GuaranteeReport:
        report = GuaranteeReport(self.name, valid=True)
        bad = _violation_intervals(trace, self.items, self.predicate)
        windows = self.windows(trace.horizon)
        violated_windows = 0
        for window in windows:
            report.checked_instances += 1
            overlap = bad.intersection(IntervalSet([window]))
            if overlap:
                violated_windows += 1
                report.valid = False
                first = next(iter(overlap))
                report.counterexamples.append(
                    f"window [{format_ticks(window.start)}, "
                    f"{format_ticks(window.end)}) violated from "
                    f"{format_ticks(first.start)}"
                )
        report.stats["windows_checked"] = len(windows)
        report.stats["windows_violated"] = violated_windows
        return report


class PeriodicCopyGuarantee(Guarantee):
    """A parameterized copy constraint valid during a daily window.

    The Section 6.4 banking scenario: for every account ``n``,
    ``balance1(n) = balance2(n)`` holds each day from (say) 17:15 to 08:00.
    Instantiation over ``n`` happens at check time from the trace, like the
    other parameterized guarantees.
    """

    def __init__(
        self,
        src_family: str,
        dst_family: str,
        window_start: Ticks,
        window_end: Ticks,
    ) -> None:
        from repro.core.timebase import format_ticks

        self.src_family = src_family
        self.dst_family = dst_family
        self.window_start = window_start
        self.window_end = window_end
        formula = (
            f"({src_family}(n) = {dst_family}(n)) @@ daily "
            f"[{format_ticks(window_start)[3:]}, {format_ticks(window_end)[3:]}]"
        )
        super().__init__(
            f"periodic_copy({src_family} = {dst_family})", formula, metric=True
        )

    def check(self, trace: ExecutionTrace) -> GuaranteeReport:
        from repro.core.guarantees.base import paired_refs

        report = GuaranteeReport(self.name, valid=True)
        for src_ref, dst_ref in paired_refs(
            trace, self.src_family, self.dst_family
        ):
            inner = PeriodicGuarantee(
                f"{self.name}[{src_ref}]",
                [src_ref, dst_ref],
                lambda state, s=src_ref, d=dst_ref: state[s] == state[d],
                self.window_start,
                self.window_end,
                self.formula,
            )
            pair_report = inner.check(trace)
            pair_report.guarantee = self.name
            report.merge(pair_report)
        return report


def invariant(
    name: str,
    items: list[DataItemRef],
    predicate: Predicate,
    formula: str = "",
) -> InvariantGuarantee:
    """Build an always-true invariant guarantee (e.g. ``X <= Y``)."""
    return InvariantGuarantee(name, items, predicate, formula or name)


def periodic(
    name: str,
    items: list[DataItemRef],
    predicate: Predicate,
    window_start: Ticks,
    window_end: Ticks,
    formula: str = "",
) -> PeriodicGuarantee:
    """Build a daily-window periodic guarantee (Section 6.4)."""
    return PeriodicGuarantee(
        name, items, predicate, window_start, window_end, formula or name
    )
