"""The copy-constraint guarantee family of Section 3.3.1.

Given a copy constraint ``X = Y`` with ``X`` the primary:

- guarantee (1), *Y follows X*::

      (Y = y)@t1  =>  (X = y)@t2 ∧ (t2 < t1)

- guarantee (2), *X leads Y*::

      (X = x)@t1  =>  (Y = x)@t2 ∧ (t2 > t1)

- guarantee (3), *Y strictly follows X*::

      (Y = y1)@t1 ∧ (Y = y2)@t2 ∧ (t1 < t2)
          =>  (X = y1)@t3 ∧ (X = y2)@t4 ∧ (t3 < t4)

- guarantee (4), the metric form of (1)::

      (Y = y)@t1  =>  (X = y)@t2 ∧ (t1 - κ < t2 < t1)

Checking is exact over the piecewise-constant timelines the trace provides:
each maximal constant segment of a timeline is one family of universally
quantified instantiations, and witness existence reduces to interval-set
coverage (see the module docstring of :mod:`repro.core.intervals`).

Two boundary conventions, both documented behaviours:

- **Seeded origins.**  Values both items hold at time 0 (database initial
  loads) are treated as held "since before the trace", so a seeded agreement
  does not violate the strict ``t2 < t1`` requirement.
- **Open obligations.**  An obligation whose witness may still legitimately
  arrive after the end of the run (e.g. "X leads Y" for a value X acquired
  just before the horizon) is counted as *inconclusive*, not as a violation.
  The ``horizon_slack`` parameter sets how close to the horizon an obligation
  must be to be excused; for metric variants the bound itself is used.
"""

from __future__ import annotations

from repro.core.guarantees.base import Guarantee, GuaranteeReport, paired_refs
from repro.core.intervals import Interval, IntervalSet
from repro.core.items import MISSING, DataItemRef
from repro.core.timebase import Ticks, to_seconds
from repro.core.trace import ExecutionTrace, Timeline, TimelineSegment


def _value_segments(timeline: Timeline) -> list[TimelineSegment]:
    """Segments with real (non-MISSING) values."""
    return [s for s in timeline.segments() if s.value is not MISSING]


def _segments_by_value(
    segments: list[TimelineSegment],
) -> dict[object, list[TimelineSegment]] | None:
    """Segments grouped by value, or ``None`` if a value is unhashable.

    Witness lookup per obligation segment is then a dict hit instead of a
    scan over every segment of the other timeline — the difference between
    O(segments²) and O(segments) per checked pair.
    """
    grouped: dict[object, list[TimelineSegment]] = {}
    try:
        for segment in segments:
            grouped.setdefault(segment.value, []).append(segment)
    except TypeError:
        return None
    return grouped


def _witnesses(
    grouped: dict[object, list[TimelineSegment]] | None,
    segments: list[TimelineSegment],
    value: object,
) -> list[TimelineSegment]:
    """Segments holding ``value`` (indexed; falls back to a linear scan)."""
    if grouped is not None:
        try:
            return grouped.get(value, [])
        except TypeError:
            pass
    return [s for s in segments if s.value == value]


class FollowsGuarantee(Guarantee):
    """Guarantee (1) "Y follows X", or its metric form (4) when ``within``
    is given: Y never holds a value X did not previously hold (within κ)."""

    def __init__(
        self, x_family: str, y_family: str, within: Ticks | None = None
    ) -> None:
        self.x_family = x_family
        self.y_family = y_family
        self.within = within
        if within is None:
            formula = (
                f"({y_family} = y)@t1 => ({x_family} = y)@t2 ∧ (t2 < t1)"
            )
            name = f"follows({x_family} -> {y_family})"
        else:
            formula = (
                f"({y_family} = y)@t1 => ({x_family} = y)@t2 "
                f"∧ (t1 - {to_seconds(within):g}s < t2 < t1)"
            )
            name = f"follows({x_family} -> {y_family}, κ={to_seconds(within):g}s)"
        super().__init__(name, formula, metric=within is not None)

    def check(self, trace: ExecutionTrace) -> GuaranteeReport:
        report = GuaranteeReport(self.name, valid=True)
        for x_ref, y_ref in paired_refs(trace, self.x_family, self.y_family):
            report.merge(self._check_pair(trace, x_ref, y_ref))
        return report

    def _check_pair(
        self, trace: ExecutionTrace, x_ref: DataItemRef, y_ref: DataItemRef
    ) -> GuaranteeReport:
        report = GuaranteeReport(self.name, valid=True, checked_instances=1)
        x_timeline = trace.timeline(x_ref)
        y_timeline = trace.timeline(y_ref)
        x_segments = _value_segments(x_timeline)
        x_by_value = _segments_by_value(x_segments)
        max_lag: Ticks = 0
        for segment in _value_segments(y_timeline):
            witnesses = _witnesses(x_by_value, x_segments, segment.value)
            if self.within is None:
                ok, lag = self._check_nonmetric(segment, witnesses)
            else:
                ok, lag = self._check_metric(segment, witnesses)
            if not ok:
                report.valid = False
                report.counterexamples.append(
                    f"{y_ref} held {segment.value!r} during "
                    f"[{segment.start}, {segment.end}) without a prior "
                    f"{'(recent enough) ' if self.within else ''}"
                    f"{x_ref} = {segment.value!r}"
                )
            elif lag is not None:
                max_lag = max(max_lag, lag)
        report.stats["max_lag_ticks"] = max_lag
        report.stats["max_lag_seconds"] = to_seconds(max_lag)
        return report

    def _check_nonmetric(
        self, segment: TimelineSegment, witnesses: list[TimelineSegment]
    ) -> tuple[bool, Ticks | None]:
        best_lag: Ticks | None = None
        for witness in witnesses:
            strictly_before = witness.start < segment.start
            seeded_origin = witness.start == 0 and segment.start == 0
            if strictly_before or seeded_origin:
                lag = segment.start - witness.start
                if best_lag is None or lag < best_lag:
                    best_lag = lag
        return best_lag is not None, best_lag

    def _check_metric(
        self, segment: TimelineSegment, witnesses: list[TimelineSegment]
    ) -> tuple[bool, Ticks | None]:
        assert self.within is not None
        allowed: list[Interval] = []
        for witness in witnesses:
            # t2 must satisfy t1 - κ < t2 < t1 with t2 in [c, d); such a t2
            # exists iff c + 1 <= t1 <= d + κ - 2, i.e. t1 in [c+1, d+κ-1).
            # A witness held since time 0 also covers t1 = 0 (seeded origin).
            start = witness.start + 1 if witness.start > 0 else 0
            allowed.append(Interval(start, witness.end + self.within - 1))
        uncovered = IntervalSet(allowed).uncovered(
            Interval(segment.start, segment.end)
        )
        if uncovered:
            return False, None
        best_lag = min(
            (segment.start - w.start for w in witnesses
             if w.start <= segment.start),
            default=None,
        )
        return True, best_lag


class LeadsGuarantee(Guarantee):
    """Guarantee (2) "X leads Y": no value taken by X is missed by Y.

    With ``within``, additionally requires Y to take the value within κ of
    *every* instant at which X holds it.
    """

    def __init__(
        self,
        x_family: str,
        y_family: str,
        within: Ticks | None = None,
        horizon_slack: Ticks = 0,
    ) -> None:
        self.x_family = x_family
        self.y_family = y_family
        self.within = within
        self.horizon_slack = horizon_slack
        if within is None:
            formula = (
                f"({x_family} = x)@t1 => ({y_family} = x)@t2 ∧ (t2 > t1)"
            )
            name = f"leads({x_family} -> {y_family})"
        else:
            formula = (
                f"({x_family} = x)@t1 => ({y_family} = x)@t2 "
                f"∧ (t1 < t2 < t1 + {to_seconds(within):g}s)"
            )
            name = f"leads({x_family} -> {y_family}, κ={to_seconds(within):g}s)"
        super().__init__(name, formula, metric=within is not None)

    def check(self, trace: ExecutionTrace) -> GuaranteeReport:
        report = GuaranteeReport(self.name, valid=True)
        for x_ref, y_ref in paired_refs(trace, self.x_family, self.y_family):
            report.merge(self._check_pair(trace, x_ref, y_ref))
        return report

    def _check_pair(
        self, trace: ExecutionTrace, x_ref: DataItemRef, y_ref: DataItemRef
    ) -> GuaranteeReport:
        report = GuaranteeReport(self.name, valid=True, checked_instances=1)
        x_timeline = trace.timeline(x_ref)
        y_timeline = trace.timeline(y_ref)
        y_segments = _value_segments(y_timeline)
        y_by_value = _segments_by_value(y_segments)
        horizon = trace.horizon
        missed = 0
        total = 0
        exempt = 0
        max_delay: Ticks = 0
        for segment in _value_segments(x_timeline):
            if segment.start == 0:
                # A value held since time 0 predates constraint management
                # (a seeded initial load); "X leads Y" quantifies over the
                # values X *takes* during the managed execution.  Notify-
                # based strategies only see changes, so prior history is
                # exempt — mirroring the seeded-origin rule in `follows`.
                exempt += 1
                continue
            total += 1
            witnesses = _witnesses(y_by_value, y_segments, segment.value)
            if self.within is None:
                verdict, delay = self._check_nonmetric(segment, witnesses, horizon)
            else:
                verdict, delay = self._check_metric(segment, witnesses, horizon)
            if verdict == "violated":
                missed += 1
                report.valid = False
                report.counterexamples.append(
                    f"{x_ref} took {segment.value!r} at {segment.start} but "
                    f"{y_ref} never{' (in time)' if self.within else ''} "
                    f"reflected it"
                )
            elif verdict == "inconclusive":
                report.inconclusive += 1
            elif delay is not None:
                max_delay = max(max_delay, delay)
        report.stats["values_taken"] = total
        report.stats["values_missed"] = missed
        report.stats["values_exempt_seeded"] = exempt
        report.stats["max_propagation_delay_ticks"] = max_delay
        report.stats["max_propagation_delay_seconds"] = to_seconds(max_delay)
        return report

    def _check_nonmetric(
        self,
        segment: TimelineSegment,
        witnesses: list[TimelineSegment],
        horizon: Ticks,
    ) -> tuple[str, Ticks | None]:
        # A witness interval [e, f) provides t2 > t1 for every t1 < f - 1; a
        # witness still live at the horizon covers every t1 (the value remains
        # reflected).  Obligations t1 within horizon_slack of the horizon are
        # inconclusive: their witness could still legally arrive after the run.
        covered_until: Ticks = 0
        delay: Ticks | None = None
        for witness in witnesses:
            extent = (
                segment.end if witness.end >= horizon else witness.end - 1
            )
            if extent > covered_until:
                covered_until = extent
                delay = max(0, witness.start - segment.start)
        due_end = min(segment.end, horizon - self.horizon_slack + 1)
        if covered_until >= due_end:
            return "ok", delay
        if due_end <= segment.start:
            return "inconclusive", None
        return "violated", None

    def _check_metric(
        self,
        segment: TimelineSegment,
        witnesses: list[TimelineSegment],
        horizon: Ticks,
    ) -> tuple[str, Ticks | None]:
        assert self.within is not None
        allowed: list[Interval] = []
        for witness in witnesses:
            # t2 in [e, f) with t1 < t2 < t1 + κ exists iff
            # e - κ < t1 < f - 1  =>  valid t1 set [e - κ + 1, f - 1).
            allowed.append(
                Interval(max(0, witness.start - self.within + 1), witness.end - 1)
            )
        # Obligations due strictly within the horizon only.
        due_end = min(segment.end, horizon - self.within + 1)
        if due_end <= segment.start:
            return "inconclusive", None
        uncovered = IntervalSet(allowed).uncovered(
            Interval(segment.start, due_end)
        )
        if uncovered:
            return "violated", None
        delay = min(
            (max(0, w.start - segment.start) for w in witnesses),
            default=0,
        )
        return "ok", delay


class StrictlyFollowsGuarantee(Guarantee):
    """Guarantee (3) "Y strictly follows X": Y sees X's values in X's order."""

    def __init__(self, x_family: str, y_family: str) -> None:
        self.x_family = x_family
        self.y_family = y_family
        formula = (
            f"({y_family} = y1)@t1 ∧ ({y_family} = y2)@t2 ∧ (t1 < t2) => "
            f"({x_family} = y1)@t3 ∧ ({x_family} = y2)@t4 ∧ (t3 < t4)"
        )
        super().__init__(
            f"strictly_follows({x_family} -> {y_family})", formula, metric=False
        )

    def check(self, trace: ExecutionTrace) -> GuaranteeReport:
        report = GuaranteeReport(self.name, valid=True)
        for x_ref, y_ref in paired_refs(trace, self.x_family, self.y_family):
            report.merge(self._check_pair(trace, x_ref, y_ref))
        return report

    def _check_pair(
        self, trace: ExecutionTrace, x_ref: DataItemRef, y_ref: DataItemRef
    ) -> GuaranteeReport:
        report = GuaranteeReport(self.name, valid=True, checked_instances=1)
        x_segments = _value_segments(trace.timeline(x_ref))
        y_segments = _value_segments(trace.timeline(y_ref))
        first_start: dict[object, Ticks] = {}
        last_end: dict[object, Ticks] = {}
        for segment in x_segments:
            key = segment.value
            if key not in first_start:
                first_start[key] = segment.start
            last_end[key] = max(last_end.get(key, 0), segment.end)
        checked_pairs: set[tuple[object, object]] = set()
        for index, earlier in enumerate(y_segments):
            for later in y_segments[index:]:
                if later is earlier and later.length < 2:
                    continue  # no two distinct instants in a 1-tick segment
                pair = (earlier.value, later.value)
                if pair in checked_pairs:
                    continue
                checked_pairs.add(pair)
                if not self._witness_order(
                    earlier.value, later.value, first_start, last_end
                ):
                    report.valid = False
                    report.counterexamples.append(
                        f"{y_ref} held {earlier.value!r} then {later.value!r} "
                        f"but {x_ref} never held them in that order"
                    )
        report.stats["ordered_pairs_checked"] = len(checked_pairs)
        return report

    @staticmethod
    def _witness_order(
        y1: object,
        y2: object,
        first_start: dict[object, Ticks],
        last_end: dict[object, Ticks],
    ) -> bool:
        if y1 not in first_start or y2 not in first_start:
            return False
        # t3 in an X=y1 segment and t4 > t3 in an X=y2 segment exist iff the
        # earliest moment X held y1 (first_start[y1]) precedes the last moment
        # X held y2 (last_end[y2] - 1, half-open intervals).
        return first_start[y1] < last_end[y2] - 1


def follows(
    x_family: str, y_family: str, within_seconds: float | None = None
) -> FollowsGuarantee:
    """Guarantee (1), or the metric guarantee (4) when ``within_seconds``."""
    from repro.core.timebase import seconds

    within = seconds(within_seconds) if within_seconds is not None else None
    return FollowsGuarantee(x_family, y_family, within)


def leads(
    x_family: str,
    y_family: str,
    within_seconds: float | None = None,
    horizon_slack_seconds: float = 0.0,
) -> LeadsGuarantee:
    """Guarantee (2), optionally with a metric bound."""
    from repro.core.timebase import seconds

    within = seconds(within_seconds) if within_seconds is not None else None
    return LeadsGuarantee(
        x_family, y_family, within, seconds(horizon_slack_seconds)
    )


def strictly_follows(x_family: str, y_family: str) -> StrictlyFollowsGuarantee:
    """Guarantee (3)."""
    return StrictlyFollowsGuarantee(x_family, y_family)
