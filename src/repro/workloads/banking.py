"""The old-fashioned banking workload of Section 6.4.

"All update transactions occur between 9 a.m. and 5 p.m."  The workload
updates branch account balances only during business hours, which is what
lets the branch offer the update-window interface and the toolkit offer a
periodic guarantee for the 17:15-08:00 window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cm.manager import ConstraintManager
from repro.core.timebase import (
    DAY,
    Ticks,
    clock_time,
    seconds,
    time_of_day,
)


@dataclass
class BankingWorkload:
    """Business-hours-only balance updates across several simulated days."""

    cm: ConstraintManager
    family: str = "balance1"
    account_count: int = 10
    rate: float = 0.01  # updates per second during business hours
    days: int = 3
    open_at: Ticks = clock_time(9)
    close_at: Ticks = clock_time(17)
    accounts: list[str] = field(init=False)
    updates_scheduled: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.accounts = [f"a{i:03d}" for i in range(1, self.account_count + 1)]
        rng = self.cm.scenario.rngs.stream(f"banking:{self.family}")
        balances = {a: round(rng.uniform(100, 10_000), 2) for a in self.accounts}
        for account, balance in balances.items():
            self.cm.scenario.sim.at(
                0,
                lambda a=account, b=balance: self.cm.spontaneous_write(
                    self.family, (a,), b
                ),
            )
        time = 0.0
        horizon = self.days * DAY
        while time < horizon:
            time += rng.expovariate(self.rate) * seconds(1)
            tick = round(time)
            if tick >= horizon:
                break
            if not self.open_at <= time_of_day(tick) < self.close_at:
                continue  # the branch is closed; no transactions
            account = rng.choice(self.accounts)
            delta = round(rng.uniform(-500, 500), 2)
            balances[account] = round(balances[account] + delta, 2)
            self.updates_scheduled += 1
            self.cm.scenario.sim.at(
                tick,
                lambda a=account, b=balances[account]: self.cm.spontaneous_write(
                    self.family, (a,), b
                ),
            )
