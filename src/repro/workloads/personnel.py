"""The personnel workload of the paper's running example (Section 4.2).

A company's San Francisco branch updates employee salaries in its local
database; headquarters in New York keeps copies.  The workload populates an
employee roster and then streams salary updates (per-employee random walks,
Poisson arrivals).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cm.manager import ConstraintManager
from repro.core.timebase import Ticks
from repro.workloads.generators import UpdateStream, random_walk


@dataclass
class PersonnelWorkload:
    """Roster setup plus a salary-update stream."""

    cm: ConstraintManager
    family: str = "salary1"
    employee_count: int = 20
    rate: float = 1.0  # updates per simulated second across the roster
    duration: Ticks = 0
    start: Ticks = 0
    employees: list[str] = field(init=False)
    stream: UpdateStream = field(init=False)

    def __post_init__(self) -> None:
        self.employees = [f"e{i:03d}" for i in range(1, self.employee_count + 1)]
        rng = self.cm.scenario.rngs.stream(f"personnel:{self.family}")
        # Initial roster load: everyone gets a starting salary at time 0;
        # these are spontaneous writes too (the databases pre-exist the CM).
        for employee in self.employees:
            salary = round(rng.uniform(50_000, 150_000), 2)
            self.cm.scenario.sim.at(
                self.start,
                lambda e=employee, s=salary: self.cm.spontaneous_write(
                    self.family, (e,), s
                ),
            )
        self.stream = UpdateStream(
            self.cm,
            self.family,
            self.employees,
            rate=self.rate,
            duration=self.duration,
            value_model=random_walk(step=2_000.0, start=100_000.0),
            start=self.start,
            stream_name=f"personnel-updates:{self.family}",
        )
