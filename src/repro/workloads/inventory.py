"""Inventory workload for the Demarcation Protocol experiment (Section 6.1).

Constraint ``X <= Y``: a storefront's committed orders ``X`` must never
exceed the warehouse's stock level ``Y``.  The storefront keeps trying to
raise ``X`` (sales); the warehouse's ``Y`` drifts (deliveries raise it,
write-offs lower it).  Pressure on the shared slack forces limit-change
handshakes, which is where the slack policies differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.timebase import Ticks, seconds
from repro.protocols.demarcation import DemarcationProtocol
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Simulator


@dataclass
class InventoryWorkload:
    """Drives both agents of an installed demarcation protocol."""

    sim: Simulator
    rngs: RngRegistry
    protocol: DemarcationProtocol
    x_rate: float = 0.5  # sale attempts per second
    y_rate: float = 0.2  # warehouse adjustments per second
    duration: Ticks = seconds(600)
    x_step: float = 5.0  # mean sale size
    y_drift: float = 2.0  # mean warehouse upward drift per adjustment
    attempts: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        x_rng = self.rngs.stream("inventory:x")
        y_rng = self.rngs.stream("inventory:y")
        time = 0.0
        while time < self.duration:
            time += x_rng.expovariate(self.x_rate) * seconds(1)
            if time >= self.duration:
                break
            delta = x_rng.uniform(0.5, self.x_step * 2)
            self.attempts += 1
            self.sim.at(round(time), self._make_sale(delta))
        time = 0.0
        while time < self.duration:
            time += y_rng.expovariate(self.y_rate) * seconds(1)
            if time >= self.duration:
                break
            # Warehouse drifts upward on average (deliveries outpace
            # write-offs) so sales can keep being granted slack.
            delta = y_rng.uniform(-self.y_drift, self.y_drift * 3)
            self.sim.at(round(time), self._make_adjustment(delta))

    def _make_sale(self, delta: float):
        def sale() -> None:
            agent = self.protocol.x_agent
            agent.attempt_update(round(agent.value + delta, 2))

        return sale

    def _make_adjustment(self, delta: float):
        def adjust() -> None:
            agent = self.protocol.y_agent
            agent.attempt_update(round(agent.value + delta, 2))

        return adjust
