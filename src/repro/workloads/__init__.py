"""Seeded workload generators.

Workloads model the *local applications* of the paper — the programs that
update databases spontaneously, unaware of the constraint manager.  Each
generator schedules ``spontaneous_write`` calls on the simulator; all
randomness comes from named, seeded streams so experiments are reproducible.
"""

from repro.workloads.generators import (
    BurstStream,
    ChurnStream,
    UpdateStream,
    ValueModel,
    duplicate_heavy,
    random_walk,
    uniform_values,
)
from repro.workloads.personnel import PersonnelWorkload
from repro.workloads.banking import BankingWorkload
from repro.workloads.inventory import InventoryWorkload

__all__ = [
    "UpdateStream",
    "BurstStream",
    "ChurnStream",
    "ValueModel",
    "uniform_values",
    "random_walk",
    "duplicate_heavy",
    "PersonnelWorkload",
    "BankingWorkload",
    "InventoryWorkload",
]
