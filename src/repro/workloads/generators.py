"""Generic spontaneous-update streams."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.cm.manager import ConstraintManager
from repro.core.events import EventDesc, notify_desc
from repro.core.items import DataItemRef
from repro.core.timebase import Ticks, seconds

ValueModel = Callable[["UpdateStream", str], object]


def notification_stream(
    families: Sequence[str],
    keys_per_family: int,
    count: int,
    seed: int = 0,
    low: float = 0.0,
    high: float = 100.0,
) -> list[EventDesc]:
    """A deterministic pre-generated list of ``N(item, value)`` descriptors.

    The throughput benchmark's raw material: ``count`` notifications drawn
    uniformly (keyed by ``seed``) over a ``families × keys_per_family``
    item grid, ready to feed :meth:`~repro.cm.shell.CMShell.ingest_batch`
    without any per-event generation cost inside the timed region.
    """
    rng = random.Random(seed)
    grid = [
        DataItemRef(family, (f"k{key}",))
        for family in families
        for key in range(keys_per_family)
    ]
    return [
        notify_desc(rng.choice(grid), round(rng.uniform(low, high), 2))
        for _ in range(count)
    ]


def uniform_values(low: float = 0.0, high: float = 100.0, digits: int = 2) -> ValueModel:
    """Independent uniform draws in ``[low, high]``."""

    def model(stream: "UpdateStream", key: str) -> object:
        return round(stream.rng.uniform(low, high), digits)

    return model


def random_walk(step: float = 5.0, start: float = 100.0) -> ValueModel:
    """Per-key random walks (realistic for salaries, balances, positions)."""
    positions: dict[str, float] = {}

    def model(stream: "UpdateStream", key: str) -> object:
        current = positions.get(key, start)
        current += stream.rng.uniform(-step, step)
        positions[key] = current
        return round(current, 2)

    return model


def duplicate_heavy(
    values: Sequence[object] = (1, 2, 3), repeat_probability: float = 0.7
) -> ValueModel:
    """Streams where consecutive updates often repeat the same value.

    Drives the cached-propagation experiment (E3): a cache suppresses the
    write requests these redundant updates would otherwise cause.
    """
    last: dict[str, object] = {}

    def model(stream: "UpdateStream", key: str) -> object:
        if key in last and stream.rng.random() < repeat_probability:
            return last[key]
        value = stream.rng.choice(list(values))
        last[key] = value
        return value

    return model


@dataclass
class StreamStats:
    """What a stream actually generated."""

    updates: int = 0
    deletes: int = 0


class UpdateStream:
    """Poisson-arrival spontaneous updates to one item family.

    ``rate`` is updates per simulated second across the whole key pool; the
    updated key is drawn uniformly.  The stream pre-schedules all its events
    at construction (times are known in advance — the simulator makes no
    difference between pre-scheduled and reactive events).
    """

    def __init__(
        self,
        cm: ConstraintManager,
        family: str,
        keys: Sequence[object] | None,
        rate: float,
        duration: Ticks,
        value_model: ValueModel | None = None,
        start: Ticks = 0,
        stream_name: str = "",
    ):
        self.cm = cm
        self.family = family
        self.keys = list(keys) if keys is not None else [None]
        self.rng = cm.scenario.rngs.stream(
            stream_name or f"workload:{family}"
        )
        self.value_model = value_model or uniform_values()
        self.stats = StreamStats()
        self.schedule: list[Ticks] = []
        time = float(start)
        end = float(start + duration)
        while True:
            time += self.rng.expovariate(rate) * seconds(1)
            if time >= end:
                break
            tick = round(time)
            self.schedule.append(tick)
            cm.scenario.sim.at(tick, self._make_update())

    def _make_update(self) -> Callable[[], None]:
        def update() -> None:
            key = self.rng.choice(self.keys)
            args = () if key is None else (key,)
            value = self.value_model(self, str(key))
            self.cm.spontaneous_write(self.family, args, value)
            self.stats.updates += 1

        return update


class BurstStream:
    """Bursts of back-to-back updates to a single key.

    Exercises the polling-misses-updates behaviour (E2): two or more updates
    inside one polling interval guarantee a missed value.
    """

    def __init__(
        self,
        cm: ConstraintManager,
        family: str,
        key: object,
        burst_times: Sequence[Ticks],
        burst_size: int = 3,
        intra_gap: Ticks = seconds(0.2),
        value_model: ValueModel | None = None,
        stream_name: str = "",
    ):
        self.cm = cm
        self.family = family
        self.key = key
        self.rng = cm.scenario.rngs.stream(
            stream_name or f"burst:{family}:{key}"
        )
        self.value_model = value_model or uniform_values()
        self.stats = StreamStats()
        for burst_start in burst_times:
            for index in range(burst_size):
                tick = burst_start + index * intra_gap
                cm.scenario.sim.at(tick, self._make_update())

    def _make_update(self) -> Callable[[], None]:
        def update() -> None:
            args = () if self.key is None else (self.key,)
            value = self.value_model(self, str(self.key))  # type: ignore[arg-type]
            self.cm.spontaneous_write(self.family, args, value)
            self.stats.updates += 1

        return update


class ChurnStream:
    """Insert/delete churn on a parameterized family (referential workloads).

    With probability ``delete_probability`` an existing key is deleted;
    otherwise a new key is inserted.  Key names are drawn from a counter so
    each insertion is a fresh parameter value.
    """

    def __init__(
        self,
        cm: ConstraintManager,
        family: str,
        rate: float,
        duration: Ticks,
        delete_probability: float = 0.3,
        value_model: Optional[ValueModel] = None,
        start: Ticks = 0,
        key_prefix: str = "k",
        stream_name: str = "",
    ):
        self.cm = cm
        self.family = family
        self.rng = cm.scenario.rngs.stream(stream_name or f"churn:{family}")
        self.delete_probability = delete_probability
        self.value_model = value_model or uniform_values()
        self.stats = StreamStats()
        self.live_keys: list[str] = []
        self._counter = 0
        self.key_prefix = key_prefix
        time = float(start)
        end = float(start + duration)
        while True:
            time += self.rng.expovariate(rate) * seconds(1)
            if time >= end:
                break
            cm.scenario.sim.at(round(time), self._make_op())

    def _make_op(self) -> Callable[[], None]:
        def operate() -> None:
            if self.live_keys and self.rng.random() < self.delete_probability:
                key = self.live_keys.pop(self.rng.randrange(len(self.live_keys)))
                self.cm.spontaneous_delete(self.family, (key,))
                self.stats.deletes += 1
            else:
                self._counter += 1
                key = f"{self.key_prefix}{self._counter}"
                self.live_keys.append(key)
                value = self.value_model(self, key)
                self.cm.spontaneous_write(self.family, (key,), value)
                self.stats.updates += 1

        return operate
