"""Command-line entry point: ``python -m repro``.

Subcommands:

- ``experiments [ids...]`` — run the reproduction harness
  (same as ``python -m repro.experiments.runner``);
- ``menu`` — print the toolkit's interface and strategy menus with their
  paper-style rule shapes;
- ``watch <experiment>`` — run one experiment with the live telemetry
  dashboard (:mod:`repro.obs.watch`) streaming shell/channel/rule
  counters as the run progresses;
- ``demo`` — run the quickstart scenario inline.

The top-level ``--profile <experiment>`` flag runs one experiment under
:mod:`cProfile` and prints the top 25 functions by cumulative time — the
quickest way to see where an experiment's wall clock goes (historically:
rule dispatch, which is why the rule compiler exists).  ``--profile-out``
additionally saves the printed digest to a file for CI artifacts.

The top-level ``--lint <target>`` flag (or ``--lint --all``) statically
analyzes a wired configuration without running any events: it builds the
trigger graph and runs the CM-Lint check battery (see
:mod:`repro.analysis`) over the named experiment or ``example:<stem>``
script.  ``--json PATH`` writes the structured findings; the exit code is
1 when any error-severity finding survives the target's allowlist.
``--lint-codes`` prints the diagnostic-code reference, and ``--explain
CM701`` (any code) deep-dives one code: its registry meaning plus every
matching finding — for the CM7xx parallel-certification codes, the
offending rule pair and the overlapping footprint term the static
analysis could not prove disjoint.
"""

from __future__ import annotations

import argparse
import sys


def _profile_experiment(experiment: str, out_path: str | None) -> int:
    import cProfile
    import io
    import pstats

    from repro.experiments.runner import EXPERIMENTS

    if experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {experiment!r} "
            f"(have: {', '.join(EXPERIMENTS)})",
            file=sys.stderr,
        )
        return 2
    __, run = EXPERIMENTS[experiment]
    profiler = cProfile.Profile()
    profiler.enable()
    result = run()
    profiler.disable()

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(25)
    digest = buffer.getvalue()
    verdict = getattr(result, "claim_holds", None)
    header = f"profile of experiment {experiment}"
    if verdict is not None:
        header += f" (verdict: {'REPRODUCED' if verdict else 'NOT REPRODUCED'})"
    print(header)
    print(digest)
    if out_path is not None:
        from pathlib import Path

        Path(out_path).write_text(
            header + "\n" + digest, encoding="utf-8"
        )
        print(f"profile written to {out_path}")
    return 0


def _lint(
    target: str | None,
    lint_all: bool,
    json_path: str | None,
    explain: str | None = None,
) -> int:
    from repro.analysis.reporters import (
        render_explain,
        render_text,
        write_json,
    )
    from repro.analysis.targets import (
        available_targets,
        lint_all as run_all,
        lint_target,
    )
    from repro.core.errors import ConfigurationError

    if target is not None:
        try:
            results = {target: lint_target(target)}
        except ConfigurationError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    elif lint_all or explain is not None:
        # A bare --explain CODE surveys every target for the code.
        results = run_all()
    else:
        print(
            "--lint needs a target or --all "
            f"(targets: {', '.join(available_targets())})",
            file=sys.stderr,
        )
        return 2
    if explain is not None:
        print(render_explain(explain, results))
    else:
        print(render_text(results))
    if json_path is not None:
        path = write_json(results, json_path)
        print(f"lint report written to {path}")
    return 0 if all(report.ok for report in results.values()) else 1


def _print_lint_codes() -> None:
    from repro.analysis import describe_codes

    print(describe_codes())


def _print_menu() -> None:
    from repro.core.interfaces import (
        conditional_notify_interface,
        no_spontaneous_write_interface,
        notify_interface,
        periodic_notify_interface,
        read_interface,
        update_window_interface,
        write_interface,
    )
    from repro.core.dsl import parse_condition
    from repro.core.strategies import (
        arithmetic_maintenance,
        cached_propagation,
        eod_batch,
        eod_cleanup,
        monitor,
        polling,
        propagation,
    )
    from repro.core.timebase import clock_time, seconds

    print("Interface menu (Section 3.1.1):")
    samples = [
        write_interface("Y", seconds(2), params=("n",)),
        read_interface("X", seconds(1), params=("n",)),
        notify_interface("X", seconds(2), params=("n",)),
        conditional_notify_interface(
            "X", seconds(2), parse_condition("abs(b - a) > a * 0.1")
        ),
        periodic_notify_interface("X", seconds(300), seconds(1)),
        no_spontaneous_write_interface("Y", params=("n",)),
        update_window_interface("X", clock_time(17), clock_time(8)),
    ]
    for spec in samples:
        print(f"  {spec.kind.value:22s} {spec.rule}")
    print()
    print("Strategy menu (Sections 3.2, 4.2, 6, 7.1):")
    strategies = [
        propagation("X", "Y", seconds(5), params=("n",)),
        cached_propagation("X", "Y", seconds(5), dst_site="<dst>"),
        polling("X", "Y", seconds(60), seconds(5)),
        monitor("X", "Y", "<app>", seconds(1)),
        eod_batch("X", "Y", clock_time(17), seconds(2), params=("n",)),
        eod_cleanup("P", "C", clock_time(23), seconds(2)),
        arithmetic_maintenance("X", ("Y", "Z"), "<sx>", seconds(1)),
    ]
    for strategy in strategies:
        print(f"  {strategy}")
        print()
    print(
        "(The Demarcation Protocol, Section 6.1, is a programmed strategy: "
        "repro.protocols.demarcation.)"
    )


def main(argv: list[str] | None = None) -> int:
    """CLI dispatch; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the ICDE 1996 constraint-management "
        "toolkit paper.",
    )
    parser.add_argument(
        "--profile",
        metavar="EXPERIMENT",
        default=None,
        help="run one experiment under cProfile and print the top 25 "
        "functions by cumulative time",
    )
    parser.add_argument(
        "--profile-out",
        metavar="PATH",
        default=None,
        help="also write the profile digest to PATH (with --profile)",
    )
    parser.add_argument(
        "--lint",
        metavar="TARGET",
        nargs="?",
        const="",
        default=None,
        help="statically analyze a wired configuration (an experiment id "
        "or example:<stem>) without running it; exit 1 on error findings",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        dest="lint_all",
        help="with --lint: analyze every experiment and example script",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        dest="lint_json",
        default=None,
        help="with --lint: also write the findings as JSON to PATH",
    )
    parser.add_argument(
        "--lint-codes",
        action="store_true",
        help="print the CM-Lint diagnostic-code reference and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        default=None,
        help="deep-dive one diagnostic code (e.g. CM701): print its "
        "meaning plus every matching finding — for the CM7xx parallel-"
        "certification codes, the offending rule pair and the overlapping "
        "footprint term; combine with --lint TARGET to narrow the survey",
    )
    sub = parser.add_subparsers(dest="command")
    experiments = sub.add_parser(
        "experiments", help="run the reproduction experiments"
    )
    experiments.add_argument("ids", nargs="*")
    experiments.add_argument("--list", action="store_true")
    experiments.add_argument("--json", metavar="PATH", default=None)
    experiments.add_argument("--quiet", action="store_true")
    experiments.add_argument(
        "--runtime",
        choices=("sim", "async"),
        default=None,
        help="run under the 'sim' kernel (default) or the 'async' wire "
        "runtime (asyncio shells over real sockets)",
    )
    experiments.add_argument(
        "--time-scale",
        type=float,
        default=None,
        metavar="FACTOR",
        help="with --runtime async: virtual seconds per wall second",
    )
    experiments.add_argument(
        "--seed", type=int, default=None,
        help="override every experiment's default seed",
    )
    watch = sub.add_parser(
        "watch",
        help="run one experiment with a live telemetry dashboard "
        "(shell/channel/rule counters streamed as the run progresses)",
    )
    watch.add_argument("experiment", help="experiment id (e.g. e1)")
    watch.add_argument(
        "--interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="virtual seconds between dashboard frames (default 1.0)",
    )
    watch.add_argument(
        "--runtime",
        choices=("sim", "async"),
        default=None,
        help="execution runtime (default sim)",
    )
    watch.add_argument(
        "--time-scale",
        type=float,
        default=None,
        metavar="FACTOR",
        help="with --runtime async: virtual seconds per wall second",
    )
    watch.add_argument("--seed", type=int, default=None)
    watch.add_argument(
        "--scale", type=float, default=1.0, metavar="FACTOR",
        help="multiply experiment workload sizes by FACTOR",
    )
    sub.add_parser("menu", help="print the interface and strategy menus")
    sub.add_parser("demo", help="run the quickstart scenario")
    args = parser.parse_args(argv)

    if args.lint_codes:
        _print_lint_codes()
        return 0
    if args.lint is not None or args.lint_all or args.explain is not None:
        target = args.lint if args.lint else None
        return _lint(target, args.lint_all, args.lint_json, args.explain)
    if args.lint_json is not None:
        parser.error("--json requires --lint")
    if args.profile is not None:
        return _profile_experiment(args.profile, args.profile_out)
    if args.profile_out is not None:
        parser.error("--profile-out requires --profile")
    if args.command == "experiments":
        from repro.experiments.runner import main as runner_main

        forwarded = list(args.ids)
        if args.list:
            forwarded.append("--list")
        if args.json is not None:
            forwarded.extend(["--json", args.json])
        if args.quiet:
            forwarded.append("--quiet")
        if args.runtime is not None:
            forwarded.extend(["--runtime", args.runtime])
        if args.time_scale is not None:
            forwarded.extend(["--time-scale", str(args.time_scale)])
        if args.seed is not None:
            forwarded.extend(["--seed", str(args.seed)])
        return runner_main(forwarded)
    if args.command == "watch":
        from repro.experiments.common import RunConfig
        from repro.obs.watch import DEFAULT_INTERVAL_S, watch_experiment

        config = RunConfig(
            runtime=args.runtime or "sim",
            seed=args.seed,
            scale=args.scale,
            time_scale=args.time_scale or 20.0,
        )
        return watch_experiment(
            args.experiment,
            config=config,
            interval_s=(
                args.interval if args.interval is not None
                else DEFAULT_INTERVAL_S
            ),
        )
    if args.command == "menu":
        _print_menu()
        return 0
    if args.command == "demo":
        import runpy
        from pathlib import Path

        quickstart = (
            Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
        )
        if quickstart.exists():
            runpy.run_path(str(quickstart), run_name="__main__")
            return 0
        print("examples/quickstart.py not found", file=sys.stderr)
        return 1
    parser.print_help()
    return 0


if __name__ == "__main__":
    sys.exit(main())
