"""Run-time guarantee validity tracking (Section 5).

When a metric failure occurs at a site, the *metric* guarantees involving
that site stop being valid (non-metric ones survive, letting applications
keep working); a logical failure invalidates every guarantee involving the
site until the system is explicitly reset.  The board receives failure
notices from the shells and maintains, per guarantee, the intervals during
which the toolkit could not stand behind it.

Applications consult :meth:`GuaranteeStatusBoard.is_valid` before relying on
a guarantee (Section 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.guarantees import Guarantee
from repro.core.intervals import Interval, IntervalSet
from repro.core.timebase import Ticks
from repro.cm.failures import FailureNotice
from repro.sim.failures import FailureKind


@dataclass
class _SiteState:
    metric_failed_since: Ticks | None = None
    logical_failed_since: Ticks | None = None


@dataclass
class _GuaranteeEntry:
    guarantee: Guarantee
    sites: frozenset[str]
    invalid_since: Ticks | None = None
    closed_invalid: list[Interval] = field(default_factory=list)


class GuaranteeStatusBoard:
    """Tracks which guarantees are currently standing."""

    def __init__(self) -> None:
        self._sites: dict[str, _SiteState] = {}
        self._entries: dict[str, _GuaranteeEntry] = {}
        self.notices: list[FailureNotice] = []
        self._seen: set[FailureNotice] = set()

    def register(self, guarantee: Guarantee, sites: set[str]) -> None:
        """Start tracking a guarantee that involves the given sites."""
        self._entries[guarantee.name] = _GuaranteeEntry(
            guarantee, frozenset(sites)
        )
        for site in sites:
            self._sites.setdefault(site, _SiteState())

    def guarantees(self) -> list[Guarantee]:
        """All tracked guarantees."""
        return [entry.guarantee for entry in self._entries.values()]

    # -- notice intake -------------------------------------------------------

    def on_notice(self, notice: FailureNotice) -> None:
        """Process a failure/recovery notice from a shell.

        A board is typically attached to every shell, and shells relay
        notices to their peers, so the same notice reaches the board once
        per site — intake is idempotent.
        """
        if notice in self._seen:
            return
        self._seen.add(notice)
        self.notices.append(notice)
        state = self._sites.setdefault(notice.site, _SiteState())
        if notice.recovered:
            if notice.kind is FailureKind.METRIC:
                state.metric_failed_since = None
            # Logical failures do NOT auto-recover: the interface statements
            # were broken, so the system must be reset (Section 5).
        else:
            if notice.kind is FailureKind.METRIC:
                if state.metric_failed_since is None:
                    state.metric_failed_since = notice.time
            else:
                if state.logical_failed_since is None:
                    state.logical_failed_since = notice.time
        self._refresh(notice.time)

    def reset_site(self, site: str, time: Ticks) -> None:
        """Operator reset after a logical failure: guarantees stand again."""
        state = self._sites.setdefault(site, _SiteState())
        state.logical_failed_since = None
        state.metric_failed_since = None
        self._refresh(time)

    # -- queries -------------------------------------------------------------

    def is_valid(self, guarantee: Guarantee) -> bool:
        """Whether the toolkit currently stands behind the guarantee."""
        entry = self._require(guarantee)
        return entry.invalid_since is None

    def invalid_intervals(self, guarantee: Guarantee, horizon: Ticks) -> IntervalSet:
        """All intervals during which the guarantee was not standing."""
        entry = self._require(guarantee)
        intervals = list(entry.closed_invalid)
        if entry.invalid_since is not None:
            intervals.append(Interval(entry.invalid_since, horizon))
        return IntervalSet(intervals)

    def _require(self, guarantee: Guarantee) -> _GuaranteeEntry:
        entry = self._entries.get(guarantee.name)
        if entry is None:
            raise KeyError(f"guarantee not registered: {guarantee.name!r}")
        return entry

    # -- internals ------------------------------------------------------------

    def _affected(self, entry: _GuaranteeEntry) -> bool:
        for site in entry.sites:
            state = self._sites.get(site)
            if state is None:
                continue
            if state.logical_failed_since is not None:
                return True
            if state.metric_failed_since is not None and entry.guarantee.metric:
                return True
        return False

    def _refresh(self, time: Ticks) -> None:
        for entry in self._entries.values():
            affected = self._affected(entry)
            if affected and entry.invalid_since is None:
                entry.invalid_since = time
            elif not affected and entry.invalid_since is not None:
                entry.closed_invalid.append(Interval(entry.invalid_since, time))
                entry.invalid_since = None
