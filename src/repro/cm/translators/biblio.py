"""The bibliographic CM-Translator — a read-only source.

CM-RID locator keys per item family:

- ``field`` — which record field the item's value is (``title``, ``year``,
  ``venue``); or
- ``exists`` — any truthy value: the item's value is ``True`` while the
  record exists (and MISSING otherwise), which is what referential
  constraints need.

Only read interfaces can be offered; constraints against this source are
*monitored*, never enforced (Section 6.3's situation).  Spontaneous activity
(the cataloguing feed) goes through :meth:`CMTranslator.apply_spontaneous_write`
with a title string, which ingests/withdraws records.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.core.items import MISSING, DataItemRef, Value
from repro.cm.translator import CMTranslator
from repro.ris.bibliodb import BibRecord, BiblioDatabase
from repro.ris.base import RISError, RISErrorCode


class BiblioTranslator(CMTranslator):
    """CM-Translator for :class:`~repro.ris.bibliodb.BiblioDatabase`."""

    kind = "bibliographic"

    def __init__(self, source, rid, service=None):
        if not isinstance(source, BiblioDatabase):
            raise ConfigurationError(
                f"BiblioTranslator needs a BiblioDatabase, got "
                f"{type(source).__name__}"
            )
        super().__init__(source, rid, service)
        self.biblio: BiblioDatabase = source

    def _field_for(self, family: str) -> str | None:
        binding = self.rid.binding(family)
        if binding.locator.get("exists"):
            return None
        field = binding.locator.get("field")
        if field is None:
            raise ConfigurationError(
                f"biblio binding for {family!r} needs 'field' or 'exists'"
            )
        return field

    def _record_id(self, ref: DataItemRef) -> str:
        binding = self.rid.binding(ref.name)
        if binding.parameterized:
            return str(ref.args[0])
        record_id = binding.locator.get("record_id")
        if record_id is None:
            raise ConfigurationError(
                f"plain biblio family {ref.name!r} needs a fixed 'record_id'"
            )
        return record_id

    # -- native hooks ----------------------------------------------------------

    def _native_read(self, ref: DataItemRef) -> Value:
        field = self._field_for(ref.name)
        record_id = self._record_id(ref)
        self.count_op("biblio_lookup")
        try:
            record = self.biblio.lookup(record_id)
        except RISError as error:
            if error.code is RISErrorCode.NOT_FOUND:
                return MISSING
            raise
        if field is None:
            return True
        value = getattr(record, field, None)
        if isinstance(value, tuple):
            value = ", ".join(value)
        return MISSING if value is None else value

    def _native_write(self, ref: DataItemRef, value: Value) -> None:
        # Models the external cataloguing feed (apply_spontaneous_write);
        # the CM itself never gets a write interface to this source.
        record_id = self._record_id(ref)
        if value is MISSING:
            self.count_op("biblio_withdraw")
            self.biblio.withdraw(record_id)
            return
        self.count_op("biblio_ingest")
        self.biblio.ingest(
            BibRecord(
                record_id=record_id,
                title=str(value),
                authors=(),
                year=0,
            )
        )

    def _native_enumerate(self, family: str) -> list[DataItemRef]:
        binding = self.rid.binding(family)
        if not binding.parameterized:
            return [DataItemRef(family, ())]
        self.count_op("biblio_scan")
        return [
            DataItemRef(family, (record_id,))
            for record_id in self.biblio.record_ids()
        ]
