"""Concrete CM-Translators, one per raw-source kind.

Each maps the uniform CM-Interface onto one native RISI, configured by a
CM-RID (Section 4.1-4.2 of the paper).  The translator registry
(:func:`translator_for`) picks the right class from a CM-RID's
``source_kind`` — the toolkit's "standard translators" menu.
"""

from repro.cm.rid import CMRID
from repro.cm.translator import CMTranslator, ServiceModel
from repro.cm.translators.relational import RelationalTranslator
from repro.cm.translators.file import FileTranslator
from repro.cm.translators.object import ObjectTranslator
from repro.cm.translators.biblio import BiblioTranslator
from repro.cm.translators.whois import WhoisTranslator
from repro.cm.translators.legacy import LegacyTranslator
from repro.ris.base import RawInformationSource

_REGISTRY: dict[str, type[CMTranslator]] = {
    "relational": RelationalTranslator,
    "flat-file": FileTranslator,
    "object": ObjectTranslator,
    "bibliographic": BiblioTranslator,
    "whois": WhoisTranslator,
    "legacy": LegacyTranslator,
}


def translator_for(
    source: RawInformationSource,
    rid: CMRID,
    service: ServiceModel | None = None,
) -> CMTranslator:
    """Instantiate the standard translator matching a CM-RID's source kind."""
    try:
        cls = _REGISTRY[rid.source_kind]
    except KeyError:
        raise ValueError(
            f"no standard translator for source kind {rid.source_kind!r} "
            f"(known: {sorted(_REGISTRY)})"
        ) from None
    return cls(source, rid, service)


__all__ = [
    "RelationalTranslator",
    "FileTranslator",
    "ObjectTranslator",
    "BiblioTranslator",
    "WhoisTranslator",
    "LegacyTranslator",
    "translator_for",
]
