"""The flat-file CM-Translator (the paper's "Unix file" case, Section 4.3).

CM-RID locator keys per item family:

- ``path`` — the record-format file holding the items;
- ``key`` — (plain items only) the fixed record key; parameterized families
  use the rule parameter as the record key.

The file system offers no change notification, so this translator supports
read and write interfaces only — constraints against files must use polling
strategies, exactly the heterogeneity the toolkit is built to absorb.
Values are stored as strings; non-string values round-trip through ``repr``
-style encoding (ints and floats are parsed back).
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.core.items import MISSING, DataItemRef, Value
from repro.cm.translator import CMTranslator
from repro.ris.base import RISError, RISErrorCode
from repro.ris.filestore import FlatFileStore, parse_records


def encode_value(value: Value) -> str:
    """Encode a value for storage in a text record."""
    if isinstance(value, bool):
        return f"b:{value}"
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        return f"f:{value!r}"
    return f"s:{value}"


def decode_value(text: str) -> Value:
    """Decode a stored record value."""
    tag, __, body = text.partition(":")
    if tag == "i":
        return int(body)
    if tag == "f":
        return float(body)
    if tag == "b":
        return body == "True"
    if tag == "s":
        return body
    return text  # untagged legacy content: raw string


class FileTranslator(CMTranslator):
    """CM-Translator for :class:`~repro.ris.filestore.FlatFileStore`."""

    kind = "flat-file"

    def __init__(self, source, rid, service=None):
        if not isinstance(source, FlatFileStore):
            raise ConfigurationError(
                f"FileTranslator needs a FlatFileStore, got "
                f"{type(source).__name__}"
            )
        super().__init__(source, rid, service)
        self.store: FlatFileStore = source

    def _locator(self, family: str) -> str:
        binding = self.rid.binding(family)
        path = binding.locator.get("path")
        if path is None:
            raise ConfigurationError(
                f"file binding for {family!r} lacks a 'path'"
            )
        return path

    def _key_for(self, ref: DataItemRef) -> str:
        binding = self.rid.binding(ref.name)
        if binding.parameterized:
            if len(ref.args) != 1:
                raise ConfigurationError(
                    f"file families take exactly one parameter; {ref} has "
                    f"{len(ref.args)}"
                )
            return str(ref.args[0])
        key = binding.locator.get("key")
        if key is None:
            raise ConfigurationError(
                f"plain file family {ref.name!r} needs a fixed 'key'"
            )
        return key

    # -- native hooks -------------------------------------------------------

    def _native_read(self, ref: DataItemRef) -> Value:
        path = self._locator(ref.name)
        self.count_op("file_read_record")
        try:
            return decode_value(self.store.read_record(path, self._key_for(ref)))
        except RISError as error:
            if error.code is RISErrorCode.NOT_FOUND:
                return MISSING
            raise

    def _native_write(self, ref: DataItemRef, value: Value) -> None:
        path = self._locator(ref.name)
        key = self._key_for(ref)
        if value is MISSING:
            self.count_op("file_delete_record")
            try:
                self.store.delete_record(path, key)
            except RISError as error:
                if error.code is not RISErrorCode.NOT_FOUND:
                    raise
            return
        self.count_op("file_write_record")
        self.store.write_record(path, key, encode_value(value))

    def _native_enumerate(self, family: str) -> list[DataItemRef]:
        binding = self.rid.binding(family)
        path = self._locator(family)
        if not binding.parameterized:
            return [DataItemRef(family, ())]
        self.count_op("file_scan")
        try:
            records = parse_records(self.store.read_file(path))
        except RISError as error:
            if error.code is RISErrorCode.NOT_FOUND:
                return []
            raise
        return [DataItemRef(family, (key,)) for key in sorted(records)]
