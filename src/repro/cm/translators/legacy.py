"""The legacy-system CM-Translator — the Section 5 cautionary case.

CM-RID locator keys per item family:

- ``key_prefix`` — the native key is ``key_prefix + parameter`` (or exactly
  ``key_prefix`` for plain items).

The legacy system pushes update messages, so a notify interface *can* be
offered — but the feed can drop messages silently, with no error observable
anywhere.  The experiment harness uses this translator to demonstrate why
the paper says a Notify Interface should not be used when the probability of
undetectable failure is unacceptable, and how a Read Interface + polling
recovers the guarantee.
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import ConfigurationError
from repro.core.items import MISSING, DataItemRef, Value
from repro.cm.translator import CMTranslator
from repro.ris.base import RISError, RISErrorCode
from repro.ris.legacy import LegacySystem


class LegacyTranslator(CMTranslator):
    """CM-Translator for :class:`~repro.ris.legacy.LegacySystem`."""

    kind = "legacy"

    def __init__(self, source, rid, service=None):
        if not isinstance(source, LegacySystem):
            raise ConfigurationError(
                f"LegacyTranslator needs a LegacySystem, got "
                f"{type(source).__name__}"
            )
        super().__init__(source, rid, service)
        self.legacy: LegacySystem = source
        self._subscribed = False
        self._notify_families_by_prefix: dict[str, str] = {}

    def _prefix_for(self, family: str) -> str:
        binding = self.rid.binding(family)
        prefix = binding.locator.get("key_prefix")
        if prefix is None:
            raise ConfigurationError(
                f"legacy binding for {family!r} needs a 'key_prefix'"
            )
        return prefix

    def _key_for(self, ref: DataItemRef) -> str:
        prefix = self._prefix_for(ref.name)
        binding = self.rid.binding(ref.name)
        if binding.parameterized:
            return f"{prefix}{ref.args[0]}"
        return prefix

    def _ref_for_key(self, key: str) -> DataItemRef | None:
        for prefix, family in self._notify_families_by_prefix.items():
            binding = self.rid.binding(family)
            if binding.parameterized:
                if key.startswith(prefix) and len(key) > len(prefix):
                    return DataItemRef(family, (key[len(prefix):],))
            elif key == prefix:
                return DataItemRef(family, ())
        return None

    # -- native hooks ---------------------------------------------------------

    def _native_read(self, ref: DataItemRef) -> Value:
        self.count_op("legacy_get")
        try:
            return self.legacy.get(self._key_for(ref))
        except RISError as error:
            if error.code is RISErrorCode.NOT_FOUND:
                return MISSING
            raise

    def _native_write(self, ref: DataItemRef, value: Value) -> None:
        if value is MISSING:
            raise RISError(
                RISErrorCode.UNSUPPORTED,
                "the legacy system cannot delete entries",
            )
        self.count_op("legacy_put")
        self.legacy.put(self._key_for(ref), value)

    def _native_enumerate(self, family: str) -> list[DataItemRef]:
        binding = self.rid.binding(family)
        if not binding.parameterized:
            return [DataItemRef(family, ())]
        prefix = self._prefix_for(family)
        self.count_op("legacy_scan")
        refs = []
        for key in self.legacy.keys():
            if key.startswith(prefix) and len(key) > len(prefix):
                refs.append(DataItemRef(family, (key[len(prefix):],)))
        return refs

    def _setup_native_notify(self, family: str) -> None:
        self._notify_families_by_prefix[self._prefix_for(family)] = family
        if self._subscribed:
            return
        self._subscribed = True

        def on_update(key: str, value: Any) -> None:
            if self._current_spontaneous is None:
                return  # CM-originated write; Ws -> N does not apply
            ref = self._ref_for_key(key)
            if ref is None:
                return
            self._deliver_notification(ref, value, self._current_spontaneous)

        self.legacy.subscribe(on_update)
