"""The relational CM-Translator (the paper's worked example, Section 4.2).

CM-RID locator keys per item family:

- ``table`` — the table holding the items;
- ``key_column`` — the column identifying the instance (for parameterized
  families the rule parameter supplies its value; plain items fix it with
  ``key``);
- ``value_column`` — the column holding the item's value;
- ``key`` — (plain items only) the fixed key value.

Reads and writes become parameterized SQL exactly as the paper describes
("update employees set salary = b where empid = n"); notify interfaces are
implemented by declaring ``AFTER INSERT/UPDATE OF value_column/DELETE``
triggers on the table.  CM-originated writes do not echo back as
notifications — the notify interface covers *spontaneous* writes only
(``Ws -> N``), so the translator suppresses trigger events caused by its own
write requests.
"""

from __future__ import annotations

from repro.core.conditions import evaluate
from repro.core.errors import ConfigurationError
from repro.core.interfaces import InterfaceKind
from repro.core.items import MISSING, DataItemRef, Value
from repro.cm.rid import ItemBinding
from repro.cm.translator import CMTranslator
from repro.ris.relational import RelationalDatabase
from repro.ris.relational.triggers import TriggerEvent


class RelationalTranslator(CMTranslator):
    """CM-Translator for :class:`~repro.ris.relational.RelationalDatabase`."""

    kind = "relational"

    def __init__(self, source, rid, service=None):
        if not isinstance(source, RelationalDatabase):
            raise ConfigurationError(
                f"RelationalTranslator needs a RelationalDatabase, got "
                f"{type(source).__name__}"
            )
        super().__init__(source, rid, service)
        self.db: RelationalDatabase = source
        self._trigger_count = 0

    # -- locator plumbing ---------------------------------------------------

    def _locator(self, family: str) -> tuple[str, str, str]:
        binding = self.rid.binding(family)
        locator = binding.locator
        for required in ("table", "key_column", "value_column"):
            if required not in locator:
                raise ConfigurationError(
                    f"relational binding for {family!r} lacks {required!r}"
                )
        return locator["table"], locator["key_column"], locator["value_column"]

    def _key_for(self, ref: DataItemRef) -> Value:
        binding = self.rid.binding(ref.name)
        if binding.parameterized:
            if len(ref.args) != 1:
                raise ConfigurationError(
                    f"relational families take exactly one parameter; "
                    f"{ref} has {len(ref.args)}"
                )
            return ref.args[0]
        key = binding.locator.get("key")
        if key is None:
            raise ConfigurationError(
                f"plain relational family {ref.name!r} needs a fixed 'key'"
            )
        return key

    # -- native hooks ----------------------------------------------------------

    def _native_read(self, ref: DataItemRef) -> Value:
        table, key_column, value_column = self._locator(ref.name)
        self.count_op("sql_select")
        rows = self.db.query(
            f"SELECT {value_column} FROM {table} WHERE {key_column} = ?",
            (self._key_for(ref),),
        )
        if not rows:
            return MISSING
        return rows[0][0]

    def _native_write(self, ref: DataItemRef, value: Value) -> None:
        table, key_column, value_column = self._locator(ref.name)
        key = self._key_for(ref)
        if value is MISSING:
            self.count_op("sql_delete")
            self.db.execute(
                f"DELETE FROM {table} WHERE {key_column} = ?", (key,)
            )
            return
        self.count_op("sql_update")
        result = self.db.execute(
            f"UPDATE {table} SET {value_column} = ? WHERE {key_column} = ?",
            (value, key),
        )
        if result.rowcount == 0:
            self.count_op("sql_insert")
            self.db.execute(
                f"INSERT INTO {table} ({key_column}, {value_column}) "
                f"VALUES (?, ?)",
                (key, value),
            )

    def _native_enumerate(self, family: str) -> list[DataItemRef]:
        table, key_column, __ = self._locator(family)
        binding = self.rid.binding(family)
        if not binding.parameterized:
            return [DataItemRef(family, ())]
        self.count_op("sql_select")
        rows = self.db.query(f"SELECT {key_column} FROM {table}")
        return sorted(
            (DataItemRef(family, (row[0],)) for row in rows),
            key=lambda r: str(r.args),
        )

    def _setup_native_notify(self, family: str) -> None:
        table, key_column, value_column = self._locator(family)
        binding = self.rid.binding(family)
        interfaces = self.offered_interfaces()
        condition = None
        if interfaces.has(family, InterfaceKind.CONDITIONAL_NOTIFY):
            spec = interfaces.get(family, InterfaceKind.CONDITIONAL_NOTIFY)
            condition = spec.rule.condition

        def on_trigger(event: TriggerEvent) -> None:
            if self._current_spontaneous is None:
                return  # a CM-originated write; Ws -> N does not apply
            row = event.new_row if event.new_row is not None else event.old_row
            assert row is not None
            if binding.parameterized:
                ref = DataItemRef(family, (row[key_column],))
            else:
                if row[key_column] != binding.locator.get("key"):
                    return  # a different row of the shared table
                ref = DataItemRef(family, ())
            if event.operation == "DELETE":
                value: Value = MISSING
            else:
                value = row[value_column]
            if condition is not None and event.operation == "UPDATE":
                old_value = (
                    event.old_row[value_column]
                    if event.old_row is not None
                    else MISSING
                )
                bindings = {"a": old_value, "b": value}
                if not evaluate(condition, bindings):
                    return  # the database filtered this update locally
            self._deliver_notification(ref, value, self._current_spontaneous)

        for operation in ("INSERT", "UPDATE", "DELETE"):
            self._trigger_count += 1
            trigger_name = f"cm_notify_{family}_{operation.lower()}"
            of_clause = (
                f" OF {value_column}" if operation == "UPDATE" else ""
            )
            self.db.execute(
                f"CREATE TRIGGER {trigger_name} AFTER "
                f"{operation}{of_clause} ON {table}"
            )
            self.db.set_trigger_callback(trigger_name, on_trigger)
