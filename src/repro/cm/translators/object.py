"""The object-store CM-Translator (the "OODB" case).

CM-RID locator keys per item family:

- ``class_name`` — the class whose instances hold the items;
- ``attribute`` — the attribute holding the item's value;
- ``key_attribute`` — the attribute identifying the instance (its value is
  the rule parameter); plain items fix the instance with ``oid``.

Notify interfaces ride on the store's change hook; as with the relational
translator, CM-originated writes are not echoed back as notifications.
Writing MISSING deletes the object (the item family *is* the object's
attribute, and an absent object is an absent item).
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.core.items import MISSING, DataItemRef, Value
from repro.cm.translator import CMTranslator
from repro.ris.objectstore import ChangeEvent, ObjectStore


class ObjectTranslator(CMTranslator):
    """CM-Translator for :class:`~repro.ris.objectstore.ObjectStore`."""

    kind = "object"

    def __init__(self, source, rid, service=None):
        if not isinstance(source, ObjectStore):
            raise ConfigurationError(
                f"ObjectTranslator needs an ObjectStore, got "
                f"{type(source).__name__}"
            )
        super().__init__(source, rid, service)
        self.store: ObjectStore = source
        self._hooked = False
        self._notify_specs: dict[str, tuple[str, str, str | None]] = {}

    def _locator(self, family: str) -> tuple[str, str, str | None]:
        binding = self.rid.binding(family)
        locator = binding.locator
        class_name = locator.get("class_name")
        attribute = locator.get("attribute")
        if class_name is None or attribute is None:
            raise ConfigurationError(
                f"object binding for {family!r} needs class_name and attribute"
            )
        return class_name, attribute, locator.get("key_attribute")

    def _find_oid(self, ref: DataItemRef) -> str | None:
        class_name, __, key_attribute = self._locator(ref.name)
        binding = self.rid.binding(ref.name)
        if binding.parameterized:
            if key_attribute is None:
                raise ConfigurationError(
                    f"parameterized object family {ref.name!r} needs a "
                    f"key_attribute"
                )
            matches = self.store.find(class_name, key_attribute, ref.args[0])
            return matches[0] if matches else None
        oid = binding.locator.get("oid")
        if oid is None:
            raise ConfigurationError(
                f"plain object family {ref.name!r} needs a fixed 'oid'"
            )
        return oid if self.store.exists(oid) else None

    # -- native hooks -----------------------------------------------------------

    def _native_read(self, ref: DataItemRef) -> Value:
        __, attribute, ___ = self._locator(ref.name)
        self.count_op("obj_read_attr")
        oid = self._find_oid(ref)
        if oid is None:
            return MISSING
        value = self.store.read_attr(oid, attribute)
        return MISSING if value is None else value

    def _native_write(self, ref: DataItemRef, value: Value) -> None:
        class_name, attribute, key_attribute = self._locator(ref.name)
        oid = self._find_oid(ref)
        if value is MISSING:
            if oid is not None:
                self.count_op("obj_delete")
                self.store.delete(oid)
            return
        self.count_op("obj_create" if oid is None else "obj_write_attr")
        if oid is None:
            attributes: dict[str, Value] = {attribute: value}
            binding = self.rid.binding(ref.name)
            if binding.parameterized:
                assert key_attribute is not None
                attributes[key_attribute] = ref.args[0]
                self.store.create(class_name, attributes)
            else:
                self.store.create(
                    class_name, attributes, oid=binding.locator.get("oid")
                )
            return
        self.store.write_attr(oid, attribute, value)

    def _native_enumerate(self, family: str) -> list[DataItemRef]:
        class_name, __, key_attribute = self._locator(family)
        binding = self.rid.binding(family)
        if not binding.parameterized:
            return [DataItemRef(family, ())]
        assert key_attribute is not None
        self.count_op("obj_extent_scan")
        refs = []
        for oid in self.store.extent(class_name):
            key = self.store.read_attr(oid, key_attribute)
            if key is not None:
                refs.append(DataItemRef(family, (key,)))
        return sorted(refs, key=lambda r: str(r.args))

    def _setup_native_notify(self, family: str) -> None:
        class_name, attribute, key_attribute = self._locator(family)
        self._notify_specs[family] = (class_name, attribute, key_attribute)
        if self._hooked:
            return
        self._hooked = True
        self.store.on_change(self._on_change)

    def _on_change(self, event: ChangeEvent) -> None:
        if self._current_spontaneous is None:
            return  # CM-originated; the notify interface covers Ws only
        for family, (class_name, attribute, key_attribute) in (
            self._notify_specs.items()
        ):
            if event.class_name != class_name:
                continue
            if event.operation == "update" and event.attribute != attribute:
                continue
            ref = self._ref_for_event(family, key_attribute, event)
            if ref is None:
                continue
            if event.operation == "delete":
                value: Value = MISSING
            elif event.operation == "update":
                value = event.new_value
            else:  # create
                value = self.store.read_attr(event.oid, attribute)
                if value is None:
                    value = MISSING
            self._deliver_notification(ref, value, self._current_spontaneous)

    def _ref_for_event(
        self, family: str, key_attribute: str | None, event: ChangeEvent
    ) -> DataItemRef | None:
        binding = self.rid.binding(family)
        if not binding.parameterized:
            if event.oid != binding.locator.get("oid"):
                return None
            return DataItemRef(family, ())
        assert key_attribute is not None
        if event.operation == "delete":
            # The object is gone; we cannot read its key any more.  Real
            # OODBs include the deleted state in the event; ours does not,
            # so deletions of parameterized items are not notified (a
            # documented translator limitation — use polling if deletions
            # matter).
            return None
        key = self.store.read_attr(event.oid, key_attribute)
        if key is None:
            return None
        return DataItemRef(family, (key,))
