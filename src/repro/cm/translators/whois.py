"""The whois CM-Translator — lookup-only directory access.

CM-RID locator keys per item family:

- ``field`` — the directory-entry field holding the item's value (``phone``,
  ``email``, ``address``, ...).

Parameterized families use the rule parameter as the directory key; plain
items fix it with ``key``.  Only read interfaces can be offered; updates
happen through directory administration (modelled by
``apply_spontaneous_write``, which performs an admin update) and are
invisible to the CM until polled.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.core.items import MISSING, DataItemRef, Value
from repro.cm.translator import CMTranslator
from repro.ris.base import RISError, RISErrorCode
from repro.ris.whois import WhoisDirectory


class WhoisTranslator(CMTranslator):
    """CM-Translator for :class:`~repro.ris.whois.WhoisDirectory`."""

    kind = "whois"

    def __init__(self, source, rid, service=None):
        if not isinstance(source, WhoisDirectory):
            raise ConfigurationError(
                f"WhoisTranslator needs a WhoisDirectory, got "
                f"{type(source).__name__}"
            )
        super().__init__(source, rid, service)
        self.directory: WhoisDirectory = source

    def _field_for(self, family: str) -> str:
        binding = self.rid.binding(family)
        field = binding.locator.get("field")
        if field is None:
            raise ConfigurationError(
                f"whois binding for {family!r} needs a 'field'"
            )
        return field

    def _key_for(self, ref: DataItemRef) -> str:
        binding = self.rid.binding(ref.name)
        if binding.parameterized:
            return str(ref.args[0])
        key = binding.locator.get("key")
        if key is None:
            raise ConfigurationError(
                f"plain whois family {ref.name!r} needs a fixed 'key'"
            )
        return key

    # -- native hooks ------------------------------------------------------------

    def _native_read(self, ref: DataItemRef) -> Value:
        self.count_op("whois_lookup")
        try:
            return self.directory.field(
                self._key_for(ref), self._field_for(ref.name)
            )
        except RISError as error:
            if error.code is RISErrorCode.NOT_FOUND:
                return MISSING
            raise

    def _native_write(self, ref: DataItemRef, value: Value) -> None:
        # Directory administration (the spontaneous path only).
        key = self._key_for(ref)
        self.count_op("whois_admin")
        if value is MISSING:
            try:
                self.directory.admin_remove(key)
            except RISError as error:
                if error.code is not RISErrorCode.NOT_FOUND:
                    raise
            return
        self.directory.admin_update(key, **{self._field_for(ref.name): str(value)})

    def _native_enumerate(self, family: str) -> list[DataItemRef]:
        binding = self.rid.binding(family)
        if not binding.parameterized:
            return [DataItemRef(family, ())]
        self.count_op("whois_scan")
        return [DataItemRef(family, (key,)) for key in self.directory.keys()]
