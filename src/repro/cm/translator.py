"""CM-Translator base: mapping native source interfaces to the CM-Interface.

A CM-Translator (Figure 2 of the paper) sits between one raw source and the
site's CM-Shell.  Upward it offers the uniform CM-Interface: write requests,
read requests, notifications, and instance enumeration; downward it speaks
the source's native API.  It is configured by a :class:`~repro.cm.rid.CMRID`,
and it is the component that classifies raw failures into the paper's metric
and logical classes (Section 5) and reports them to the shell.

Time behaviour: every operation takes a sampled service time (plus any
metric-failure slowdown from the scenario's failure plan), so the promised
interface bounds are *honest* — the translator self-reports a metric failure
whenever an operation completes later than the bound the CM-RID advertised.

Subclasses implement four native hooks:

- ``_native_read(ref)`` — return the current value (MISSING if absent);
- ``_native_write(ref, value)`` — write, or delete when value is MISSING;
- ``_native_enumerate(family)`` — all existing instances of a family;
- ``_setup_native_notify(family)`` — hook the source's change mechanism so
  spontaneous writes reach :meth:`_deliver_notification`.

Spontaneous writes by "local applications" are modelled by calling
:meth:`apply_spontaneous_write`, which records the ``Ws`` event and performs
the native write (firing any declared notify hooks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.errors import ConfigurationError, UnsupportedOperationError
from repro.core.events import (
    Event,
    notify_desc,
    read_request_desc,
    read_response_desc,
    spontaneous_write_desc,
    write_desc,
    write_request_desc,
)
from repro.core.interfaces import InterfaceKind, InterfaceSet
from repro.core.items import MISSING, DataItemRef, Value
from repro.core.rules import Rule
from repro.core.timebase import Ticks, seconds
from repro.cm.failures import FailureNotice, classify_error
from repro.cm.rid import CMRID
from repro.ris.base import RawInformationSource, RISError
from repro.sim.failures import FailureKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.cm.shell import CMShell


@dataclass(frozen=True)
class ServiceModel:
    """Base service times of one translator+source pair, in ticks.

    ``jitter`` is a +/- fraction applied uniformly (0.2 = ±20%).
    """

    read: Ticks = seconds(0.02)
    write: Ticks = seconds(0.03)
    notify: Ticks = seconds(0.05)
    jitter: float = 0.2

    def sample(self, operation: str, rng, slowdown: float = 1.0) -> Ticks:
        """One service-time sample for a given operation kind."""
        base = {"read": self.read, "write": self.write, "notify": self.notify}[
            operation
        ]
        if self.jitter:
            factor = 1.0 + rng.uniform(-self.jitter, self.jitter)
        else:
            factor = 1.0
        return max(1, round(base * factor * slowdown))


class CMTranslator:
    """Base class for all translators.  See the module docstring."""

    kind = "abstract"
    #: Retries on transient (BUSY/TIMEOUT) errors before declaring logical.
    max_retries = 3
    #: Backoff between retries.
    retry_delay: Ticks = seconds(0.5)

    def __init__(
        self,
        source: RawInformationSource,
        rid: CMRID,
        service: ServiceModel | None = None,
    ):
        if rid.source_name != source.name:
            raise ConfigurationError(
                f"CM-RID names source {rid.source_name!r} but translator was "
                f"given {source.name!r}"
            )
        self.source = source
        self.rid = rid
        self.service = service or ServiceModel()
        self.shell: Optional["CMShell"] = None
        self._interfaces: InterfaceSet | None = None
        self._failed: FailureKind | None = None
        self._current_spontaneous: Event | None = None
        self._notify_families: set[str] = set()
        self._timers: list = []
        self.writes_requested = 0
        self.reads_requested = 0
        self.notifications_delivered = 0
        self.notifications_suppressed = 0
        self._busy_until: Ticks = 0
        # Lazily resolved observability instruments (shared registry via the
        # shell; dicts so hot paths pay one lookup, not a registry probe).
        self._op_counters: dict[str, object] = {}
        self._prop_hists: dict[str, object] = {}

    # -- wiring ----------------------------------------------------------------

    def attach(self, shell: "CMShell") -> None:
        """Bind this translator to its site's shell (done by the manager)."""
        self.shell = shell

    def _require_shell(self) -> "CMShell":
        if self.shell is None:
            raise ConfigurationError(
                f"translator for {self.source.name!r} is not attached to a shell"
            )
        return self.shell

    @property
    def site(self) -> str:
        """The site of the owning shell."""
        return self._require_shell().site

    @property
    def sim(self):
        """The scenario's simulator (via the owning shell)."""
        return self._require_shell().sim

    @property
    def trace(self):
        """The scenario's execution trace (via the owning shell)."""
        return self._require_shell().trace

    @property
    def _rng(self):
        return self._require_shell().rngs.stream(f"translator:{self.source.name}")

    @property
    def _plan(self):
        return self._require_shell().failure_plan

    @property
    def _obs(self):
        return self._require_shell().obs

    # -- observability helpers -----------------------------------------------

    def count_op(self, op: str, amount: int = 1) -> None:
        """Count one native (RISI) operation against this source.

        Concrete translators call this from their native hooks
        (``sql_select``, ``file_read``, ``whois_lookup``, ...); the counts
        surface as ``ris_ops{source=...,op=...}`` series and in the run
        report's translator section.
        """
        counter = self._op_counters.get(op)
        if counter is None:
            counter = self._obs.metrics.counter(
                "ris_ops", source=self.source.name, op=op
            )
            self._op_counters[op] = counter
        counter.value += amount

    def _observe_propagation(self, family: str, wr_event: Event) -> None:
        """Record end-to-end propagation latency for a completed write.

        Latency is measured from the *root* of the write's trigger chain
        (the spontaneous write or periodic tick that started the causal
        chain) to now — the quantity the metric guarantees bound with κ.
        """
        root = wr_event
        while root.trigger is not None:
            root = root.trigger
        hist = self._prop_hists.get(family)
        if hist is None:
            hist = self._obs.metrics.histogram(
                "propagation_latency", family=family
            )
            self._prop_hists[family] = hist
        hist.observe(self.sim.now - root.time)

    # -- survey (Section 4.1 initialization) -------------------------------------

    def offered_interfaces(self) -> InterfaceSet:
        """The interfaces this translator offers, from its CM-RID."""
        if self._interfaces is None:
            self._interfaces = self.rid.interface_set()
        return self._interfaces

    def families(self) -> list[str]:
        """Item families this translator manages."""
        return list(self.rid.bindings)

    def _interface_rule(self, family: str, kind: InterfaceKind) -> Rule | None:
        interfaces = self.offered_interfaces()
        if interfaces.has(family, kind):
            return interfaces.get(family, kind).rule
        return None

    # -- service-time / failure plumbing --------------------------------------------

    def _delay(self, operation: str) -> Ticks:
        slowdown = self._plan.slowdown_at(self.site, self.sim.now)
        return self.service.sample(operation, self._rng, slowdown)

    def _schedule_op(self, operation: str, fn) -> None:
        """Schedule a native operation on this translator's FIFO lane.

        A translator models one session to its source: operations complete in
        the order they were submitted, never overtaking each other even when
        their sampled service times differ.  This is what makes the paper's
        in-order-processing assumption (Appendix A property 7) hold across
        interface rules that share this site.
        """
        start = max(self.sim.now, self._busy_until)
        completion = start + self._delay(operation)
        self._busy_until = completion
        obs = self._obs
        if obs.enabled:
            # Carry the causal context across the service-time gap so the
            # completion's span parents onto whatever requested the op.
            fn = obs.tracer.bind(fn)
        self.sim.at(completion, fn)

    def _report(self, kind: FailureKind, detail: str) -> None:
        if self._failed is kind:
            return  # already reported; don't spam
        self._failed = kind
        self._require_shell().report_failure(
            FailureNotice(
                site=self.site,
                source_name=self.source.name,
                kind=kind,
                time=self.sim.now,
                detail=detail,
            )
        )

    def _report_error(self, error: RISError, context: str) -> None:
        self._report(classify_error(error), f"{context}: {error}")

    def _note_success(self) -> None:
        if self._failed is None:
            return
        previous, self._failed = self._failed, None
        self._require_shell().report_failure(
            FailureNotice(
                site=self.site,
                source_name=self.source.name,
                kind=previous,
                time=self.sim.now,
                detail="operations succeeding again",
                recovered=True,
            )
        )

    def _check_bound(self, family: str, kind: InterfaceKind, elapsed: Ticks) -> None:
        """Self-report a metric failure when an op exceeded its promise."""
        interfaces = self.offered_interfaces()
        if not interfaces.has(family, kind):
            return
        bound = interfaces.bound(family, kind)
        if bound and elapsed > bound:
            self._report(
                FailureKind.METRIC,
                f"{kind.value} for {family!r} took {elapsed} > bound {bound}",
            )
        elif self._failed is FailureKind.METRIC and bound and elapsed <= bound:
            self._note_success()

    # -- CM-Interface: writes ----------------------------------------------------------

    def request_write(
        self,
        ref: DataItemRef,
        value: Value,
        rule: Rule | None = None,
        trigger: Event | None = None,
    ) -> None:
        """Accept a CM write request: records WR, performs W after service time."""
        interfaces = self.offered_interfaces()
        if not interfaces.has(ref.name, InterfaceKind.WRITE):
            raise UnsupportedOperationError(
                f"{self.source.name!r} offers no write interface for {ref.name!r}"
            )
        self.writes_requested += 1
        wr_event = self.trace.record(
            self.sim.now,
            self.site,
            write_request_desc(ref, value),
            rule=rule,
            trigger=trigger,
        )
        self._schedule_write(ref, value, wr_event, attempt=0)

    def _schedule_write(
        self, ref: DataItemRef, value: Value, wr_event: Event, attempt: int
    ) -> None:
        self._schedule_op(
            "write",
            lambda: self._perform_write(ref, value, wr_event, attempt),
        )

    def _perform_write(
        self, ref: DataItemRef, value: Value, wr_event: Event, attempt: int
    ) -> None:
        if self._plan.logically_failed(self.site, self.sim.now):
            self._report(FailureKind.LOGICAL, f"site down; write {ref} lost")
            return
        try:
            self._native_write(ref, value)
        except RISError as error:
            if error.code.transient and attempt < self.max_retries:
                self._report_error(error, f"write {ref} (will retry)")
                retry = lambda: self._perform_write(  # noqa: E731
                    ref, value, wr_event, attempt + 1
                )
                if self._obs.enabled:
                    retry = self._obs.tracer.bind(retry)
                self.sim.after(self.retry_delay * (attempt + 1), retry)
                return
            if error.code.transient:
                self._report(
                    FailureKind.LOGICAL,
                    f"write {ref} failed after {attempt} retries: {error}",
                )
            else:
                self._report_error(error, f"write {ref}")
            return
        elapsed = self.sim.now - wr_event.time
        self._check_bound(ref.name, InterfaceKind.WRITE, elapsed)
        if self._failed is None:
            self._note_success()
        self._observe_propagation(ref.name, wr_event)
        obs = self._obs
        if obs.enabled and obs.tracer.enabled:
            # Retroactive span: the op's full extent (request to native
            # completion) is only known now.  Its parent is the context the
            # request captured, re-activated by the bound callback.
            span = obs.tracer.start(
                "translator.write",
                self.site,
                wr_event.time,
                source=self.source.name,
                ref=str(ref),
            )
            obs.tracer.finish(span, self.sim.now)
        self.trace.record(
            self.sim.now,
            self.site,
            write_desc(ref, value),
            rule=self._interface_rule(ref.name, InterfaceKind.WRITE),
            trigger=wr_event,
        )

    # -- CM-Interface: reads --------------------------------------------------------------

    def request_read(
        self,
        ref: DataItemRef,
        rule: Rule | None = None,
        trigger: Event | None = None,
    ) -> None:
        """Accept a CM read request: records RR, delivers R after service time."""
        interfaces = self.offered_interfaces()
        if not interfaces.has(ref.name, InterfaceKind.READ):
            raise UnsupportedOperationError(
                f"{self.source.name!r} offers no read interface for {ref.name!r}"
            )
        self.reads_requested += 1
        rr_event = self.trace.record(
            self.sim.now,
            self.site,
            read_request_desc(ref),
            rule=rule,
            trigger=trigger,
        )
        self._schedule_op("read", lambda: self._perform_read(ref, rr_event))

    def _perform_read(self, ref: DataItemRef, rr_event: Event) -> None:
        if self._plan.logically_failed(self.site, self.sim.now):
            self._report(FailureKind.LOGICAL, f"site down; read {ref} lost")
            return
        try:
            value = self._native_read(ref)
        except RISError as error:
            self._report_error(error, f"read {ref}")
            return
        elapsed = self.sim.now - rr_event.time
        self._check_bound(ref.name, InterfaceKind.READ, elapsed)
        if self._failed is None:
            self._note_success()
        r_event = self.trace.record(
            self.sim.now,
            self.site,
            read_response_desc(ref, value),
            rule=self._interface_rule(ref.name, InterfaceKind.READ),
            trigger=rr_event,
        )
        obs = self._obs
        if obs.enabled and obs.tracer.enabled:
            span = obs.tracer.start(
                "translator.read",
                self.site,
                rr_event.time,
                source=self.source.name,
                ref=str(ref),
            )
            obs.tracer.finish(span, self.sim.now)
            obs.tracer.push(span)
            try:
                self._require_shell().deliver_local_event(r_event)
            finally:
                obs.tracer.pop()
        else:
            self._require_shell().deliver_local_event(r_event)

    def enumerate_refs(self, family: str) -> list[DataItemRef]:
        """All current instances of a family (for enumerating reads)."""
        return self._native_enumerate(family)

    # -- CM-Interface: notifications -----------------------------------------------------------

    def setup_notify(self, family: str) -> None:
        """Arrange for update notifications to reach the shell (Section 4.2.1).

        Uses the source's native change mechanism when a (conditional)
        notify interface is offered; falls back to the periodic-notify
        interface (a translator-driven timer pushing the current value every
        period) when that is what the CM-RID offers.
        """
        interfaces = self.offered_interfaces()
        if family in self._notify_families:
            return
        if interfaces.has(family, InterfaceKind.NOTIFY) or interfaces.has(
            family, InterfaceKind.CONDITIONAL_NOTIFY
        ):
            self._notify_families.add(family)
            self._setup_native_notify(family)
            return
        if interfaces.has(family, InterfaceKind.PERIODIC_NOTIFY):
            self._notify_families.add(family)
            self._setup_periodic_notify(
                interfaces.get(family, InterfaceKind.PERIODIC_NOTIFY)
            )
            return
        raise UnsupportedOperationError(
            f"{self.source.name!r} offers no notify interface for {family!r}"
        )

    def _setup_periodic_notify(self, spec) -> None:
        """Drive ``P(p) ∧ (X = b) -> [ε] N(X, b)`` with a translator timer."""
        from repro.core.events import periodic_desc
        from repro.sim.process import PeriodicTimer

        assert spec.period is not None
        ref = DataItemRef(spec.family, ())

        def fire() -> None:
            p_event = self.trace.record(
                self.sim.now, self.site, periodic_desc(spec.period)
            )
            if self._plan.logically_failed(self.site, self.sim.now):
                return
            try:
                value = self._native_read(ref)
            except RISError as error:
                self._report_error(error, f"periodic read {ref}")
                return
            self._deliver_notification(ref, value, p_event, rule=spec.rule)

        self._timers.append(PeriodicTimer(self.sim, spec.period, fire))

    def stop_timers(self) -> None:
        """Stop any translator-driven timers (end of scenario)."""
        for timer in self._timers:
            timer.stop()

    def _deliver_notification(
        self,
        ref: DataItemRef,
        value: Value,
        trigger: Event | None,
        rule: Rule | None = None,
    ) -> None:
        """Push one update notification to the shell, after the notify delay.

        Silent-loss failure windows (Section 5's undetectable legacy case)
        drop the notification here with no error anywhere.
        """
        now = self.sim.now
        drop_probability = self._plan.notify_drop_probability(self.site, now)
        if drop_probability and self._rng.random() < drop_probability:
            self.notifications_suppressed += 1
            return
        if self._plan.logically_failed(self.site, now):
            return  # the site is dead; nothing is sent (logical failure)
        interfaces = self.offered_interfaces()
        if rule is not None:
            pass  # provenance supplied by the caller (periodic notify)
        elif interfaces.has(ref.name, InterfaceKind.CONDITIONAL_NOTIFY):
            rule = interfaces.get(
                ref.name, InterfaceKind.CONDITIONAL_NOTIFY
            ).rule
        else:
            rule = self._interface_rule(ref.name, InterfaceKind.NOTIFY)

        requested = now

        def deliver() -> None:
            n_event = self.trace.record(
                self.sim.now,
                self.site,
                notify_desc(ref, value),
                rule=rule,
                trigger=trigger,
            )
            self.notifications_delivered += 1
            obs = self._obs
            if obs.enabled and obs.tracer.enabled:
                span = obs.tracer.start(
                    "translator.notify",
                    self.site,
                    requested,
                    source=self.source.name,
                    ref=str(ref),
                )
                obs.tracer.finish(span, self.sim.now)
                obs.tracer.push(span)
                try:
                    self._require_shell().deliver_local_event(n_event)
                finally:
                    obs.tracer.pop()
            else:
                self._require_shell().deliver_local_event(n_event)

        self._schedule_op("notify", deliver)

    # -- spontaneous activity (local applications) ----------------------------------------------

    def apply_spontaneous_write(self, ref: DataItemRef, value: Value) -> Event:
        """A local application writes the source directly.

        Records the ``Ws`` event and performs the native write; any notify
        hook set up for the family fires as a consequence.
        """
        old = self.trace.current_value(ref)
        ws_event = self.trace.record(
            self.sim.now, self.site, spontaneous_write_desc(ref, old, value)
        )
        self._current_spontaneous = ws_event
        obs = self._obs
        span = None
        if obs.enabled and obs.tracer.enabled:
            # Root of the causal tree: everything the write triggers
            # (notify hooks, rule firings, cross-site propagation) parents
            # onto this span, directly or via captured contexts.
            span = obs.tracer.start(
                "source.write",
                self.site,
                self.sim.now,
                parent=obs.tracer.current,
                source=self.source.name,
                ref=str(ref),
            )
            obs.tracer.push(span)
        try:
            self._native_write(ref, value)
        finally:
            self._current_spontaneous = None
            if span is not None:
                obs.tracer.pop()
                obs.tracer.finish(span, self.sim.now)
        return ws_event

    def apply_spontaneous_delete(self, ref: DataItemRef) -> Event:
        """A local application deletes the item (writes MISSING)."""
        return self.apply_spontaneous_write(ref, MISSING)

    # -- native hooks (subclass responsibilities) ---------------------------------------------------

    def _native_read(self, ref: DataItemRef) -> Value:
        raise NotImplementedError

    def _native_write(self, ref: DataItemRef, value: Value) -> None:
        raise NotImplementedError

    def _native_enumerate(self, family: str) -> list[DataItemRef]:
        raise NotImplementedError

    def _setup_native_notify(self, family: str) -> None:
        raise UnsupportedOperationError(
            f"{type(self).__name__} cannot implement notification"
        )
