"""The constraint-management toolkit (Figure 2 of the paper).

Layering, bottom-up:

- Raw Information Sources (:mod:`repro.ris`) expose heterogeneous native
  interfaces (RISI).
- :mod:`repro.cm.translators` — per-source **CM-Translators** present those
  RISIs to the shells as the uniform CM-Interface: read/write requests,
  notifications, enumeration, and failure classification.  Standard
  translators are configured to a concrete source by a **CM-RID**
  (:mod:`repro.cm.rid`).
- :mod:`repro.cm.shell` — **CM-Shells**, one per site: distributed rule
  engines executing the installed strategy, holding shell-private data
  (:mod:`repro.cm.store`), and exchanging events over the simulated network.
- :mod:`repro.cm.manager` — the **ConstraintManager** façade: registration,
  interface survey, strategy suggestion (via the proven catalog), rule
  distribution by LHS site, guarantee issuance, and failure bookkeeping
  (:mod:`repro.cm.failures`, :mod:`repro.cm.guarantee_status`).
"""

from repro.cm.builder import ConstraintBuilder, SiteBuilder
from repro.cm.dispatch import InstalledRule, RuleIndex
from repro.cm.manager import ConstraintManager, InstalledConstraint, Scenario
from repro.cm.rid import CMRID, ItemBinding
from repro.cm.shell import CMShell
from repro.cm.store import ShellStore
from repro.cm.translator import CMTranslator, ServiceModel
from repro.cm.failures import FailureNotice
from repro.cm.guarantee_status import GuaranteeStatusBoard
from repro.cm.verify import VerificationReport, verify

__all__ = [
    "ConstraintManager",
    "InstalledConstraint",
    "Scenario",
    "CMRID",
    "ItemBinding",
    "CMShell",
    "ShellStore",
    "CMTranslator",
    "ServiceModel",
    "ConstraintBuilder",
    "SiteBuilder",
    "InstalledRule",
    "RuleIndex",
    "FailureNotice",
    "GuaranteeStatusBoard",
    "VerificationReport",
    "verify",
]
