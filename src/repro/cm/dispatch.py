"""Indexed event dispatch for CM-Shell rule engines.

A shell with *R* installed rules that linearly scans them on every event
does O(R × events) template matches — almost all of which fail, since a
strategy rule only ever matches one ``(event kind, item family)``
combination.  Distributed rule systems avoid exactly this by keying rules
on their trigger discriminator; this module does the same for the paper's
rule language:

- at install time each rule is keyed by its LHS ``(EventKind, family)``
  pair and its :func:`~repro.core.templates.compile_matcher`-compiled
  matcher is cached;
- *family-variable* templates (item patterns named
  :data:`~repro.core.terms.FAMILY_WILDCARD`) and item-less templates with
  no family to key on land in a per-kind **catch-all bucket**;
- :meth:`RuleIndex.candidates` returns, for a ground descriptor, only the
  rules in the exact bucket plus the kind's catch-all bucket — merged by
  installation order, so the firing sequence is *identical* to the linear
  scan's.

The index is purely a pre-filter: every rule it returns still runs its
compiled matcher (which re-checks kind and family), so indexing can drop
non-candidates but never admit a spurious match.

:class:`ShardedDispatcher` layers family sharding on top for the batched
path: a batch is partitioned by item family and each shard runs the pure
matching phase against its own candidate-bucket cache, while condition
evaluation and RHS execution stay serial in batch order (they read and
mutate the store) — which is exactly what keeps a sharded execution's trace
identical to the unsharded kernel's.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.cm.store import shard_of
from repro.core.compile import CompiledRule, compile_rule
from repro.core.errors import CompileError
from repro.core.events import EventDesc, EventKind
from repro.core.rules import Rule
from repro.core.templates import Matcher, compile_matcher
from repro.core.terms import Bindings
from repro.runtime.codec import decode_value, encode_desc_compact

_SCALARS = (str, int, float, bool, type(None))

#: One-shot latch for the thread-pool opt-in warning (threads are strictly
#: slower than the serial path under the GIL; process workers are the real
#: parallel option).
_threads_warning_emitted = False


@dataclass(frozen=True)
class InstalledRule:
    """One installed rule with its routing and pre-compiled matcher.

    ``program`` is the rule's compiled program (:mod:`repro.core.compile`);
    ``None`` when compilation was disabled (``install(compiled=False)``) or
    fell back, in which case dispatch runs the tree-walking reference path
    through ``matcher``.
    """

    rule: Rule
    rhs_site: Optional[str]
    matcher: Matcher = field(compare=False)
    serial: int
    program: Optional[CompiledRule] = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"#{self.serial} {self.rule.name}: {self.rule}"


class RuleIndex:
    """Rules keyed by their LHS dispatch discriminator.

    Iteration order (:meth:`__iter__`, and the merge inside
    :meth:`candidates`) is installation order, preserving the linear scan's
    firing semantics.
    """

    def __init__(self) -> None:
        self._buckets: dict[tuple[EventKind, Optional[str]], list[InstalledRule]] = {}
        self._catch_all: dict[EventKind, list[InstalledRule]] = {}
        self._all: list[InstalledRule] = []

    def add(
        self, rule: Rule, rhs_site: Optional[str], compiled: bool = True
    ) -> InstalledRule:
        """Install a rule; returns its index entry.

        With ``compiled`` (the default) the rule is also compiled into an
        executable program stored next to the matcher; a
        :class:`~repro.core.errors.CompileError` silently falls back to the
        interpreted path (``installed.program is None`` — callers that want
        to count fallbacks inspect that).
        """
        program: Optional[CompiledRule] = None
        if compiled:
            try:
                program = compile_rule(rule)
            except CompileError:
                program = None
        installed = InstalledRule(
            rule=rule,
            rhs_site=rhs_site,
            matcher=compile_matcher(rule.lhs),
            serial=len(self._all),
            program=program,
        )
        self._all.append(installed)
        kind = rule.lhs.kind
        family = rule.lhs.dispatch_family
        if family is None and rule.lhs.item is not None:
            # Family-variable template: must see every event of its kind.
            self._catch_all.setdefault(kind, []).append(installed)
        else:
            # Keyed template — including item-less kinds (P), whose
            # "family" is None and whose descriptors carry no item either.
            self._buckets.setdefault((kind, family), []).append(installed)
        return installed

    def remove(self, installed: InstalledRule) -> None:
        """Withdraw an entry previously returned by :meth:`add`.

        Used by strict installation mode to roll back a rule whose lint
        findings reject it; serials of surviving entries are untouched, so
        installation-order iteration stays correct.
        """
        self._all.remove(installed)
        kind = installed.rule.lhs.kind
        family = installed.rule.lhs.dispatch_family
        if family is None and installed.rule.lhs.item is not None:
            self._catch_all[kind].remove(installed)
        else:
            self._buckets[(kind, family)].remove(installed)

    def candidates(self, desc: EventDesc) -> list[InstalledRule]:
        """Rules whose LHS might match ``desc``, in installation order."""
        family = desc.item.name if desc.item is not None else None
        exact = self._buckets.get((desc.kind, family))
        catch_all = self._catch_all.get(desc.kind)
        if catch_all is None:
            return exact if exact is not None else []
        if exact is None:
            return catch_all
        return _merge_by_serial(exact, catch_all)

    def __len__(self) -> int:
        return len(self._all)

    def __iter__(self) -> Iterator[InstalledRule]:
        return iter(self._all)

    @property
    def rules(self) -> list[Rule]:
        """All installed rules in installation order."""
        return [installed.rule for installed in self._all]


def _merge_by_serial(
    left: list[InstalledRule], right: list[InstalledRule]
) -> list[InstalledRule]:
    """Merge two serial-sorted bucket lists into one serial-sorted list."""
    merged: list[InstalledRule] = []
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i].serial < right[j].serial:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged


#: One matching hit: ``(installed, slots, bindings, cond)`` — ``slots``
#: for compiled programs, ``bindings`` for the interpreted fallback (the
#: unused one is None).  ``cond`` is the condition verdict when a worker
#: already evaluated it (store-free rules under a parallel plan): ``True``
#: means fire without re-evaluating, ``None`` means not yet evaluated
#: (failing hits are dropped at the worker and never ship).
MatchHit = tuple[InstalledRule, Optional[list], Optional[Bindings], Optional[bool]]


class ShardedDispatcher:
    """Family-sharded batch matching over one :class:`RuleIndex`.

    Phase A (*match*, here): a batch's descriptors are partitioned by item
    family — placed by the same deterministic family hash the sharded
    :class:`~repro.cm.store.ShellStore` uses — and each shard runs the pure
    matchers of its own cached candidate buckets against its events.
    Matching depends only on the descriptor, never on the store, so shards
    share no mutable hot structure and may run on a thread pool
    (``threads=True``; off by default, since under the GIL pure-Python
    matching gains nothing from threads — the knob exists so the
    equivalence tests can prove thread-safety of the partitioning).

    **Cross-family rules are the barrier**: an event whose kind has
    catch-all (family-variable) candidates, or that carries no item at all,
    cannot be matched within one family's shard, so it pins to shard 0 (the
    designated barrier shard) and is counted in ``barrier_events``.

    Phase B (run by the shell): condition evaluation and RHS execution walk
    the hits serially, in original batch order.  Conditions read the
    mutable store and RHSs write it, so this phase is what keeps a sharded
    execution's trace *identical* to the unsharded kernel's.
    """

    def __init__(
        self,
        index: RuleIndex,
        shards: int,
        threads: bool = False,
        workers: int = 0,
    ):
        self.index = index
        self.shards = max(1, int(shards))
        self.threads = bool(threads) and self.shards > 1
        #: Worker *processes* for phase A (0 = in-process matching).  This
        #: is the executor that actually parallelizes: each worker holds
        #: its own compiled rule set and matches descriptor slices shipped
        #: by the wire codec's compact form, off the GIL.
        self.workers = max(0, int(workers)) if self.shards > 1 else 0
        if self.threads:
            global _threads_warning_emitted
            if not _threads_warning_emitted:
                _threads_warning_emitted = True
                warnings.warn(
                    "shard_threads runs pure-Python matching on a thread "
                    "pool, which the GIL makes strictly slower than the "
                    "serial path; use shard_workers=N (process-backed "
                    "matching) for real multi-core speedup",
                    RuntimeWarning,
                    stacklevel=3,
                )
        self._family_shard: dict[str, int] = {}
        # Per-shard (kind, family) -> candidate bucket caches, rebuilt when
        # the index changes (rules cannot be installed mid-dispatch).
        self._caches: list[dict] = [{} for _ in range(self.shards)]
        self._cache_rules = len(index)
        self.events_by_shard = [0] * self.shards
        self.barrier_events = 0
        self.batches = 0
        self.last_candidates = 0
        #: Per-event shard assignment of the last ``match_batch`` — the
        #: shell's phase B reads it so store write attribution follows the
        #: shard that actually dispatched the event (barrier-pinned events
        #: attribute to shard 0, matching ``events_by_shard``).
        self.last_shard_of: list[int] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._worker_pool = None
        self._worker_pool_rules = -1
        self._worker_pool_free: frozenset = frozenset()
        #: Serials of rules the active parallel plan proved store-free —
        #: their compiled conditions read no local data, so workers may
        #: evaluate them during phase A, off the GIL.
        self._store_free: frozenset = frozenset()
        self._by_serial: dict[int, InstalledRule] = {}

    def set_plan(self, plan) -> None:
        """Arm plan-driven dispatch from a certified parallel plan.

        Ships the plan's store-free rule set to the matching phase: those
        conditions are evaluated where the match happens (worker processes
        when configured), and their hits arrive pre-decided.  Passing
        ``None`` disarms.  A changed set rebuilds the worker pool on the
        next batch, since workers bake the set in at start.
        """
        if plan is None:
            free: frozenset = frozenset()
        else:
            free = frozenset(
                inst.serial
                for inst in self.index
                if inst.rule.name in plan.store_free
            )
        self._store_free = free

    def shard_for(self, family: str) -> int:
        index = self._family_shard.get(family)
        if index is None:
            index = self._family_shard[family] = shard_of(family, self.shards)
        return index

    def match_batch(
        self, descs: Sequence[EventDesc]
    ) -> list[Optional[list[MatchHit]]]:
        """Phase A: per-event match hits (``None`` where nothing matched).

        ``last_candidates`` afterwards holds the number of candidate rules
        consulted across the batch — the same count the per-event path
        would have accumulated into ``candidates_considered``.
        """
        if self._cache_rules != len(self.index):
            self._caches = [{} for _ in range(self.shards)]
            self._cache_rules = len(self.index)
        matches: list[Optional[list[MatchHit]]] = [None] * len(descs)
        self.batches += 1
        if self.shards == 1:
            self.last_candidates = self._match_shard(
                0, descs, range(len(descs)), matches
            )
            self.events_by_shard[0] += len(descs)
            self.last_shard_of = [0] * len(descs)
            return matches
        assignment: list[list[int]] = [[] for _ in range(self.shards)]
        shard_of_event = [0] * len(descs)
        catch_all = self.index._catch_all
        barrier = assignment[0]
        barriers = 0
        for i, desc in enumerate(descs):
            item = desc.item
            if item is None or catch_all.get(desc.kind):
                barrier.append(i)
                barriers += 1
            else:
                shard = self.shard_for(item.name)
                assignment[shard].append(i)
                shard_of_event[i] = shard
        self.barrier_events += barriers
        self.last_shard_of = shard_of_event
        total = 0
        if self.workers:
            total = self._match_with_workers(descs, assignment, matches)
        elif self.threads:
            pool = self._pool
            if pool is None:
                pool = self._pool = ThreadPoolExecutor(
                    max_workers=self.shards, thread_name_prefix="cm-shard"
                )
            futures = [
                pool.submit(self._match_shard, shard, descs, indices, matches)
                for shard, indices in enumerate(assignment)
                if indices
            ]
            for future in futures:
                total += future.result()
        else:
            for shard, indices in enumerate(assignment):
                if indices:
                    total += self._match_shard(shard, descs, indices, matches)
        for shard, indices in enumerate(assignment):
            self.events_by_shard[shard] += len(indices)
        self.last_candidates = total
        return matches

    def _ensure_worker_pool(self):
        """The live worker pool, (re)built when the rule set changed."""
        from repro.cm.workers import ShardWorkerPool

        if self._worker_pool is not None and (
            self._worker_pool_rules != len(self.index)
            or self._worker_pool_free != self._store_free
        ):
            self._worker_pool.close()
            self._worker_pool = None
        if self._worker_pool is None:
            rules = [(inst.serial, inst.rule) for inst in self.index]
            self._worker_pool = ShardWorkerPool(
                rules, self.workers, store_free=self._store_free
            )
            self._worker_pool_rules = len(self.index)
            self._worker_pool_free = self._store_free
            self._by_serial = {inst.serial: inst for inst in self.index}
        return self._worker_pool

    def _match_with_workers(
        self,
        descs: Sequence[EventDesc],
        assignment: list[list[int]],
        matches: list[Optional[list[MatchHit]]],
    ) -> int:
        """Phase A on the worker processes: ship compact descriptor slices
        (whole shards, so per-event hit order is one worker's bucket
        order), reassemble hits against the parent's installed rules."""
        pool = self._ensure_worker_pool()
        slices: dict[int, list[tuple[int, tuple]]] = {}
        for shard, indices in enumerate(assignment):
            if not indices:
                continue
            slice_ = slices.setdefault(shard % pool.workers, [])
            for i in indices:
                slice_.append((i, encode_desc_compact(descs[i])))
        hits, considered = pool.match_slices(slices)
        by_serial = self._by_serial
        for index, serial, slots, bindings, cond in hits:
            installed = by_serial[serial]
            hit: MatchHit = (
                installed,
                [
                    v if isinstance(v, _SCALARS) else decode_value(v)
                    for v in slots
                ]
                if slots is not None
                else None,
                {
                    name: (v if isinstance(v, _SCALARS) else decode_value(v))
                    for name, v in bindings
                }
                if bindings is not None
                else None,
                cond,
            )
            bucket = matches[index]
            if bucket is None:
                bucket = matches[index] = []
            bucket.append(hit)
        return considered

    def close(self) -> None:
        """Release executors (worker processes, thread pool); idempotent."""
        if self._worker_pool is not None:
            self._worker_pool.close()
            self._worker_pool = None
            self._worker_pool_rules = -1
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _match_shard(
        self,
        shard: int,
        descs: Sequence[EventDesc],
        indices: Sequence[int],
        matches: list[Optional[list[MatchHit]]],
    ) -> int:
        """Match one shard's events; writes only this shard's ``matches``
        slots (disjoint per shard, so concurrent shards never collide)."""
        cache = self._caches[shard]
        candidates = self.index.candidates
        considered = 0
        # Two-level cache (kind, then family), kind level memoized across
        # consecutive events — same trick as the shell's fused loop: one
        # C-level string hash per event instead of an Enum hash.
        last_kind = None
        kind_cache: dict = {}
        for i in indices:
            desc = descs[i]
            item = desc.item
            kind = desc.kind
            if kind is not last_kind:
                kind_cache = cache.get(kind)
                if kind_cache is None:
                    kind_cache = cache[kind] = {}
                last_kind = kind
            name = item.name if item is not None else None
            bucket = kind_cache.get(name)
            if bucket is None:
                bucket = kind_cache[name] = candidates(desc)
            if not bucket:
                continue
            considered += len(bucket)
            hits: Optional[list[MatchHit]] = None
            for installed in bucket:
                program = installed.program
                if program is not None:
                    slots = program.match(desc)
                    if slots is not None:
                        if hits is None:
                            hits = []
                        hits.append((installed, slots, None, None))
                else:
                    bindings = installed.matcher(desc)
                    if bindings is not None:
                        if hits is None:
                            hits = []
                        hits.append((installed, None, bindings, None))
            matches[i] = hits
        return considered

    def stats(self) -> dict:
        """Per-shard dispatch counters for the run report."""
        stats = {
            "shards": self.shards,
            "threads": self.threads,
            "workers": self.workers,
            # Which phase-A executor actually ran this dispatcher.
            "executor": (
                "workers"
                if self.workers
                else ("threads" if self.threads else "serial")
            ),
            "batches": self.batches,
            "events_by_shard": list(self.events_by_shard),
            "barrier_events": self.barrier_events,
        }
        if self._worker_pool is not None:
            stats["worker_pool"] = self._worker_pool.stats()
        return stats
