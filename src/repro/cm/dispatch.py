"""Indexed event dispatch for CM-Shell rule engines.

A shell with *R* installed rules that linearly scans them on every event
does O(R × events) template matches — almost all of which fail, since a
strategy rule only ever matches one ``(event kind, item family)``
combination.  Distributed rule systems avoid exactly this by keying rules
on their trigger discriminator; this module does the same for the paper's
rule language:

- at install time each rule is keyed by its LHS ``(EventKind, family)``
  pair and its :func:`~repro.core.templates.compile_matcher`-compiled
  matcher is cached;
- *family-variable* templates (item patterns named
  :data:`~repro.core.terms.FAMILY_WILDCARD`) and item-less templates with
  no family to key on land in a per-kind **catch-all bucket**;
- :meth:`RuleIndex.candidates` returns, for a ground descriptor, only the
  rules in the exact bucket plus the kind's catch-all bucket — merged by
  installation order, so the firing sequence is *identical* to the linear
  scan's.

The index is purely a pre-filter: every rule it returns still runs its
compiled matcher (which re-checks kind and family), so indexing can drop
non-candidates but never admit a spurious match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.core.compile import CompiledRule, compile_rule
from repro.core.errors import CompileError
from repro.core.events import EventDesc, EventKind
from repro.core.rules import Rule
from repro.core.templates import Matcher, compile_matcher


@dataclass(frozen=True)
class InstalledRule:
    """One installed rule with its routing and pre-compiled matcher.

    ``program`` is the rule's compiled program (:mod:`repro.core.compile`);
    ``None`` when compilation was disabled (``install(compiled=False)``) or
    fell back, in which case dispatch runs the tree-walking reference path
    through ``matcher``.
    """

    rule: Rule
    rhs_site: Optional[str]
    matcher: Matcher = field(compare=False)
    serial: int
    program: Optional[CompiledRule] = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"#{self.serial} {self.rule.name}: {self.rule}"


class RuleIndex:
    """Rules keyed by their LHS dispatch discriminator.

    Iteration order (:meth:`__iter__`, and the merge inside
    :meth:`candidates`) is installation order, preserving the linear scan's
    firing semantics.
    """

    def __init__(self) -> None:
        self._buckets: dict[tuple[EventKind, Optional[str]], list[InstalledRule]] = {}
        self._catch_all: dict[EventKind, list[InstalledRule]] = {}
        self._all: list[InstalledRule] = []

    def add(
        self, rule: Rule, rhs_site: Optional[str], compiled: bool = True
    ) -> InstalledRule:
        """Install a rule; returns its index entry.

        With ``compiled`` (the default) the rule is also compiled into an
        executable program stored next to the matcher; a
        :class:`~repro.core.errors.CompileError` silently falls back to the
        interpreted path (``installed.program is None`` — callers that want
        to count fallbacks inspect that).
        """
        program: Optional[CompiledRule] = None
        if compiled:
            try:
                program = compile_rule(rule)
            except CompileError:
                program = None
        installed = InstalledRule(
            rule=rule,
            rhs_site=rhs_site,
            matcher=compile_matcher(rule.lhs),
            serial=len(self._all),
            program=program,
        )
        self._all.append(installed)
        kind = rule.lhs.kind
        family = rule.lhs.dispatch_family
        if family is None and rule.lhs.item is not None:
            # Family-variable template: must see every event of its kind.
            self._catch_all.setdefault(kind, []).append(installed)
        else:
            # Keyed template — including item-less kinds (P), whose
            # "family" is None and whose descriptors carry no item either.
            self._buckets.setdefault((kind, family), []).append(installed)
        return installed

    def remove(self, installed: InstalledRule) -> None:
        """Withdraw an entry previously returned by :meth:`add`.

        Used by strict installation mode to roll back a rule whose lint
        findings reject it; serials of surviving entries are untouched, so
        installation-order iteration stays correct.
        """
        self._all.remove(installed)
        kind = installed.rule.lhs.kind
        family = installed.rule.lhs.dispatch_family
        if family is None and installed.rule.lhs.item is not None:
            self._catch_all[kind].remove(installed)
        else:
            self._buckets[(kind, family)].remove(installed)

    def candidates(self, desc: EventDesc) -> list[InstalledRule]:
        """Rules whose LHS might match ``desc``, in installation order."""
        family = desc.item.name if desc.item is not None else None
        exact = self._buckets.get((desc.kind, family))
        catch_all = self._catch_all.get(desc.kind)
        if catch_all is None:
            return exact if exact is not None else []
        if exact is None:
            return catch_all
        return _merge_by_serial(exact, catch_all)

    def __len__(self) -> int:
        return len(self._all)

    def __iter__(self) -> Iterator[InstalledRule]:
        return iter(self._all)

    @property
    def rules(self) -> list[Rule]:
        """All installed rules in installation order."""
        return [installed.rule for installed in self._all]


def _merge_by_serial(
    left: list[InstalledRule], right: list[InstalledRule]
) -> list[InstalledRule]:
    """Merge two serial-sorted bucket lists into one serial-sorted list."""
    merged: list[InstalledRule] = []
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i].serial < right[j].serial:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged
