"""One-call post-run verification of a constraint-managed scenario.

Bundles the three validation layers the repository provides:

1. **guarantee checking** — every issued guarantee evaluated against the
   recorded execution trace;
2. **valid-execution checking** — the Appendix A.2 properties over the
   trace, using all installed strategy rules;
3. **board consistency** — the status board must not *believe* a guarantee
   that the trace refutes (belief may be strictly more cautious than truth:
   a transient failure can invalidate a guarantee whose obligations happened
   to be met anyway, but never the other way around — except for silent
   failures, which is precisely what :attr:`VerificationReport.silent_gaps`
   surfaces).

Usage::

    from repro.cm.verify import verify
    report = verify(cm)
    assert report.ok, report.render()
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cm.manager import ConstraintManager
from repro.core.guarantees import GuaranteeReport
from repro.core.trace import Violation, validate_trace


@dataclass
class VerificationReport:
    """Everything :func:`verify` found."""

    guarantee_reports: dict[str, GuaranteeReport] = field(default_factory=dict)
    trace_violations: list[Violation] = field(default_factory=list)
    #: Guarantees the board still believes although the trace refutes them —
    #: the signature of an *undetected* (silent) failure, Section 5.
    silent_gaps: list[str] = field(default_factory=list)
    #: Trace recording/index counters (:meth:`ExecutionTrace.stats`) at
    #: verification time — how much work the indexed hot path actually did.
    trace_stats: dict[str, int] = field(default_factory=dict)
    #: Static CM-Lint findings over the wired configuration
    #: (:func:`repro.analysis.lint_manager`) — surfaced alongside the
    #: dynamic layers so a post-run report also shows what was knowable
    #: before the run.  Error findings fail :attr:`ok`.
    diagnostics: list = field(default_factory=list)

    @property
    def guarantees_ok(self) -> bool:
        """Every issued guarantee checked valid."""
        return all(r.valid for r in self.guarantee_reports.values())

    @property
    def trace_ok(self) -> bool:
        """No Appendix A.2 valid-execution violations."""
        return not self.trace_violations

    @property
    def lint_ok(self) -> bool:
        """No error-severity static findings."""
        from repro.analysis.diagnostics import Severity

        return not any(
            d.severity is Severity.ERROR for d in self.diagnostics
        )

    @property
    def ok(self) -> bool:
        """All validation layers (static and dynamic) passed."""
        return (
            self.guarantees_ok
            and self.trace_ok
            and not self.silent_gaps
            and self.lint_ok
        )

    def render(self) -> str:
        """Human-readable multi-line summary of the findings."""
        lines = [f"verification: {'OK' if self.ok else 'PROBLEMS FOUND'}"]
        for name, report in self.guarantee_reports.items():
            lines.append(f"  {report}")
            for counterexample in report.counterexamples[:3]:
                lines.append(f"    counterexample: {counterexample}")
        if self.trace_violations:
            lines.append(
                f"  {len(self.trace_violations)} valid-execution violations:"
            )
            for violation in self.trace_violations[:5]:
                lines.append(f"    {violation}")
        for name in self.silent_gaps:
            lines.append(
                f"  SILENT GAP: board believes {name!r} but the trace "
                f"refutes it (undetected failure?)"
            )
        if self.diagnostics:
            lines.append(f"  {len(self.diagnostics)} lint finding(s):")
            for finding in self.diagnostics[:5]:
                lines.append(f"    {finding}")
        if self.trace_stats:
            lines.append(
                "  trace: {events_recorded} events, {items_tracked} items, "
                "{state_versions} state versions, "
                "{interpretation_materializations} materializations".format(
                    **self.trace_stats
                )
            )
        return "\n".join(lines)


def verify(
    cm: ConstraintManager,
    *,
    lint: bool = True,
    lint_suppress: tuple[str, ...] = (),
) -> VerificationReport:
    """Run all post-hoc validation layers over a finished scenario.

    ``lint`` (default on) also runs the static CM-Lint battery over the
    still-wired configuration and attaches its findings; pass
    ``lint_suppress`` codes (``"CM501"`` / ``"CM501:rule-name"``) for
    findings that are expected in this scenario.
    """
    report = VerificationReport()
    if lint:
        from repro.analysis import lint_manager

        lint_report = lint_manager(cm, suppress=lint_suppress)
        report.diagnostics = list(lint_report.diagnostics)
    report.guarantee_reports = cm.check_guarantees()
    rules = [
        rule
        for installed in cm.installed
        for rule in installed.strategy.rules
    ]
    report.trace_violations = validate_trace(cm.scenario.trace, rules)
    report.trace_stats = cm.scenario.trace.stats()
    for installed in cm.installed:
        for guarantee in installed.guarantees:
            checked = report.guarantee_reports.get(guarantee.name)
            if checked is None or checked.valid:
                continue
            if cm.board.is_valid(guarantee):
                report.silent_gaps.append(guarantee.name)
    return report
