"""Shell-private data (Section 3.2: "Each CM-Shell can have private data,
stored in the CM-Shell itself, for use in strategies").

The store implements the :class:`~repro.core.conditions.LocalData` protocol
so strategy conditions can read it, and records every write as a ``W`` event
in the execution trace so guarantees over auxiliary data (``Flag``, ``Tb``,
caches) are checkable.

For the batched dispatch path the store can be *sharded by item family*:
each shard owns an independent dict (its own write log counter), placed by a
deterministic hash of the family name, so concurrent per-shard matching
never shares a mutable hot structure.  ``shards=1`` (the default) keeps the
single-dict fast path with zero indirection.
"""

from __future__ import annotations

import zlib
from types import MappingProxyType
from typing import Mapping, Optional

from repro.core.events import Event, write_desc
from repro.core.items import MISSING, DataItemRef, Value
from repro.core.rules import Rule
from repro.core.trace import ExecutionTrace


def shard_of(family: str, shards: int) -> int:
    """Deterministic family -> shard placement (stable across processes)."""
    return zlib.crc32(family.encode("utf-8")) % shards


class ShellStore:
    """The private database of one CM-Shell."""

    def __init__(self, site: str, trace: ExecutionTrace, shards: int = 1):
        self.site = site
        self.trace = trace
        self.shards = max(1, int(shards))
        self._shards: list[dict[DataItemRef, Value]] = [
            {} for _ in range(self.shards)
        ]
        # Unsharded fast path: one dict, no placement lookup.
        self._single = self._shards[0] if self.shards == 1 else None
        self._family_shard: dict[str, int] = {}
        self.writes = 0
        self.writes_by_shard = [0] * self.shards
        #: Attribution override for the sharded dispatch path: the shell's
        #: phase B sets this to the shard that *dispatched* the event whose
        #: RHS is writing, so ``writes_by_shard`` agrees with the
        #: dispatcher's ``events_by_shard`` — barrier-pinned events (item
        #: less, or a kind with family-wildcard candidates) attribute their
        #: writes to barrier shard 0, not the written family's home shard.
        #: ``None`` (the default, and the whole unsharded path) attributes
        #: by home shard.  Data *placement* always stays by family hash.
        self.dispatch_shard: Optional[int] = None
        self._items_view: Optional[Mapping[DataItemRef, Value]] = None

    def _shard_index(self, family: str) -> int:
        index = self._family_shard.get(family)
        if index is None:
            index = self._family_shard[family] = shard_of(family, self.shards)
        return index

    def read_local(self, ref: DataItemRef) -> Value:
        """Current value of a private item; MISSING if never written."""
        data = self._single
        if data is None:
            data = self._shards[self._shard_index(ref.name)]
        return data.get(ref, MISSING)

    def write(
        self,
        ref: DataItemRef,
        value: Value,
        time: int,
        rule: Optional[Rule] = None,
        trigger: Optional[Event] = None,
    ) -> Event:
        """Write a private item, recording the W event."""
        index = 0 if self._single is not None else self._shard_index(ref.name)
        self._shards[index][ref] = value
        self.writes += 1
        attributed = self.dispatch_shard
        self.writes_by_shard[attributed if attributed is not None else index] += 1
        self._items_view = None
        return self.trace.record(
            time, self.site, write_desc(ref, value), rule=rule, trigger=trigger
        )

    def items(self) -> Mapping[DataItemRef, Value]:
        """Read-only view of all private data (for applications, Section 7.1).

        Cached between writes: repeated calls from validation paths return
        the same mapping object instead of rebuilding a dict each time.
        """
        view = self._items_view
        if view is None:
            if self._single is not None:
                view = MappingProxyType(self._single)
            else:
                merged: dict[DataItemRef, Value] = {}
                for shard in self._shards:
                    merged.update(shard)
                view = MappingProxyType(merged)
            self._items_view = view
        return view
