"""Shell-private data (Section 3.2: "Each CM-Shell can have private data,
stored in the CM-Shell itself, for use in strategies").

The store implements the :class:`~repro.core.conditions.LocalData` protocol
so strategy conditions can read it, and records every write as a ``W`` event
in the execution trace so guarantees over auxiliary data (``Flag``, ``Tb``,
caches) are checkable.
"""

from __future__ import annotations

from typing import Optional

from repro.core.events import Event, write_desc
from repro.core.items import MISSING, DataItemRef, Value
from repro.core.rules import Rule
from repro.core.trace import ExecutionTrace


class ShellStore:
    """The private database of one CM-Shell."""

    def __init__(self, site: str, trace: ExecutionTrace):
        self.site = site
        self.trace = trace
        self._data: dict[DataItemRef, Value] = {}
        self.writes = 0

    def read_local(self, ref: DataItemRef) -> Value:
        """Current value of a private item; MISSING if never written."""
        return self._data.get(ref, MISSING)

    def write(
        self,
        ref: DataItemRef,
        value: Value,
        time: int,
        rule: Optional[Rule] = None,
        trigger: Optional[Event] = None,
    ) -> Event:
        """Write a private item, recording the W event."""
        self._data[ref] = value
        self.writes += 1
        return self.trace.record(
            time, self.site, write_desc(ref, value), rule=rule, trigger=trigger
        )

    def items(self) -> dict[DataItemRef, Value]:
        """Snapshot of all private data (for applications, Section 7.1)."""
        return dict(self._data)
