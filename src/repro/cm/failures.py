"""Failure notices: how translators report trouble upward (Section 5).

A CM-Translator maps raw-source errors onto the paper's two failure classes:

- transient error codes (busy, timeout) → **metric** failures: the promised
  actions will still happen, just late; only metric guarantees are affected;
- permanent codes (unavailable) → **logical** failures: the interface
  statements no longer hold; all guarantees involving the site are invalid
  until the system is reset.

On detecting a failure the translator notifies its local CM-Shell, which
propagates the notice so affected guarantees can be marked invalid — that
propagation ends at the :class:`~repro.cm.guarantee_status.GuaranteeStatusBoard`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.timebase import Ticks
from repro.ris.base import RISError
from repro.sim.failures import FailureKind


@dataclass(frozen=True)
class FailureNotice:
    """One failure (or recovery) observation at a site."""

    site: str
    source_name: str
    kind: FailureKind
    time: Ticks
    detail: str
    recovered: bool = False

    def __str__(self) -> str:
        state = "recovered" if self.recovered else "failed"
        return (
            f"[{self.time}] {self.source_name}@{self.site} {state} "
            f"({self.kind.value}): {self.detail}"
        )

    def to_dict(self) -> dict:
        """JSONL/run-report serialization (time also in seconds)."""
        from repro.core.timebase import to_seconds

        return {
            "site": self.site,
            "source": self.source_name,
            "kind": getattr(self.kind, "value", str(self.kind)),
            "time": self.time,
            "time_s": to_seconds(self.time),
            "detail": self.detail,
            "recovered": self.recovered,
        }


def classify_error(error: RISError) -> FailureKind:
    """Map a raw-source error to the paper's failure classes."""
    if error.code.transient:
        return FailureKind.METRIC
    return FailureKind.LOGICAL
