"""Process-backed shard workers: the matching phase on real cores.

:class:`~repro.cm.dispatch.ShardedDispatcher` partitions each batch by
item family and runs the *pure* matching phase per shard.  Threads buy
nothing there — pure-Python matching is GIL-bound — so this module gives
the dispatcher a pool of persistent **worker processes** instead: each
worker holds its own compiled copy of the rule set (rules cross once, at
pool start; compiled programs are closures and never cross at all) and
matches descriptor slices shipped over a pipe in the wire codec's compact
tuple form.  Conditions and RHS execution stay serial in batch order on
the parent — exactly the division that keeps a multi-core execution's
trace byte-identical to the sequential kernel's.

Protocol (one duplex pipe per worker, ``spawn`` start method so workers
never inherit parent state):

- parent → worker: ``("match", batch_id, [(index, compact_desc), ...])``
- worker → parent: ``(batch_id, [(index, serial, slots, bindings, cond),
  ...], considered)`` — ``serial`` identifies the rule in the *parent's*
  index; slot/binding values ride raw when scalar, codec-tagged otherwise.
- parent → worker: ``("stop",)`` ends the worker.

``cond`` carries plan-certified condition verdicts: when the pool was
started with a ``store_free`` serial set (rules whose compiled LHS
condition provably reads no local data — see
:mod:`repro.analysis.parplan`), workers evaluate those conditions right
after matching, *on the worker core*.  A failing hit is dropped at the
worker (exactly what the parent's serial loop would have done) and a
passing one ships ``cond=True`` so the parent commits without
re-evaluating; every other hit ships ``cond=None``.  This is where a
certified phase's condition evaluation actually leaves the parent
process.

The worker rebuilds the same ``(kind, family)``-bucketed candidate index
the parent uses (installation order preserved via the shipped serials), so
per-event hit order — and therefore the downstream trace — is identical.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Any, Optional, Sequence

from repro.core.compile import compile_rule
from repro.core.conditions import NO_LOCAL_DATA
from repro.core.errors import BindingError, CompileError, ConfigurationError
from repro.core.rules import Rule
from repro.core.templates import compile_matcher
from repro.runtime.codec import (
    decode_desc_compact,
    decode_value,
    encode_value,
)

_SCALARS = (str, int, float, bool, type(None))


def _encode_cell(value: Any) -> Any:
    return value if isinstance(value, _SCALARS) else encode_value(value)


def _decode_cell(value: Any) -> Any:
    return value if isinstance(value, _SCALARS) else decode_value(value)


def _worker_main(
    conn,
    rule_blob: list[tuple[int, Rule]],
    store_free: frozenset = frozenset(),
) -> None:
    """Worker process body: compile the rule set, then match slices."""
    # Mirror of RuleIndex bucketing, keyed by the parent's serials so hit
    # order inside a bucket matches the parent's installation order.
    buckets: dict[tuple, list[tuple]] = {}
    catch_all: dict[Any, list[tuple]] = {}
    for serial, rule in rule_blob:
        program = None
        try:
            program = compile_rule(rule)
        except CompileError:
            program = None
        matcher = compile_matcher(rule.lhs)
        entry = (serial, program, matcher)
        kind = rule.lhs.kind
        family = rule.lhs.dispatch_family
        if family is None and rule.lhs.item is not None:
            catch_all.setdefault(kind, []).append(entry)
        else:
            buckets.setdefault((kind, family), []).append(entry)

    def candidates(kind, family):
        exact = buckets.get((kind, family))
        extra = catch_all.get(kind)
        if extra is None:
            return exact or ()
        if exact is None:
            return extra
        merged = sorted(exact + extra, key=lambda e: e[0])
        return merged

    cache: dict[tuple, Sequence[tuple]] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "stop":
            break
        _, batch_id, slice_ = message
        hits: list[tuple] = []
        considered = 0
        for index, compact in slice_:
            desc = decode_desc_compact(compact)
            family = compact[1]
            key = (desc.kind, family)
            bucket = cache.get(key)
            if bucket is None:
                bucket = cache[key] = candidates(desc.kind, family)
            if not bucket:
                continue
            considered += len(bucket)
            for serial, program, matcher in bucket:
                if program is not None:
                    slots = program.match(desc)
                    if slots is None:
                        continue
                    cond = None
                    if serial in store_free:
                        # Plan-certified store-free condition: evaluate it
                        # here, on the worker core.  NO_LOCAL_DATA is safe
                        # exactly because the plan proved the condition
                        # performs no local reads.
                        lhs = program.lhs
                        if lhs is None:
                            cond = True
                        else:
                            try:
                                cond = bool(lhs(slots, NO_LOCAL_DATA))
                            except (BindingError, TypeError):
                                cond = False
                        if not cond:
                            continue  # same drop the parent would make
                    hits.append(
                        (
                            index,
                            serial,
                            [_encode_cell(v) for v in slots],
                            None,
                            cond,
                        )
                    )
                else:
                    bindings = matcher(desc)
                    if bindings is not None:
                        hits.append(
                            (
                                index,
                                serial,
                                None,
                                [
                                    (name, _encode_cell(v))
                                    for name, v in bindings.items()
                                ],
                                None,
                            )
                        )
        try:
            conn.send((batch_id, hits, considered))
        except (BrokenPipeError, OSError):
            break
    conn.close()


class ShardWorkerPool:
    """A persistent pool of matching workers, one pipe each.

    ``submit``/``collect`` are split so the dispatcher can ship every
    worker its slice before blocking on any reply — that is where the
    multi-core overlap comes from.
    """

    def __init__(
        self,
        rules: Sequence[tuple[int, Rule]],
        workers: int,
        store_free: frozenset = frozenset(),
    ) -> None:
        self.workers = max(1, int(workers))
        self.rule_count = len(rules)
        self.store_free = frozenset(store_free)
        ctx = mp.get_context("spawn")
        self._procs: list = []
        self._conns: list = []
        self.batches_by_worker = [0] * self.workers
        self.events_by_worker = [0] * self.workers
        self._batch_id = 0
        blob = list(rules)
        try:
            for _ in range(self.workers):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, blob, self.store_free),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
        except Exception as error:
            self.close()
            raise ConfigurationError(
                f"shard worker pool failed to start (rules must be "
                f"picklable to cross to worker processes): {error}"
            ) from error

    @property
    def pids(self) -> list[int]:
        return [proc.pid for proc in self._procs if proc.pid is not None]

    def match_slices(
        self, slices: dict[int, list[tuple[int, tuple]]]
    ) -> tuple[list[tuple], int]:
        """Ship per-worker descriptor slices; gather all hits.

        ``slices`` maps worker id -> ``[(batch index, compact desc), ...]``.
        Returns ``(hits, considered)`` with hits as
        ``(index, serial, slots, bindings, cond)`` tuples (codec cells
        still encoded — the dispatcher decodes while reassembling;
        ``cond`` is the worker-evaluated verdict for store-free rules).
        """
        self._batch_id += 1
        batch_id = self._batch_id
        active: list[int] = []
        for worker, slice_ in slices.items():
            if not slice_:
                continue
            try:
                self._conns[worker].send(("match", batch_id, slice_))
            except (BrokenPipeError, OSError) as error:
                raise ConfigurationError(
                    f"shard worker {worker} (pid "
                    f"{self._procs[worker].pid}) died mid-run: {error}"
                ) from error
            active.append(worker)
            self.batches_by_worker[worker] += 1
            self.events_by_worker[worker] += len(slice_)
        all_hits: list[tuple] = []
        considered = 0
        for worker in active:
            try:
                reply_id, hits, count = self._conns[worker].recv()
            except (EOFError, OSError) as error:
                raise ConfigurationError(
                    f"shard worker {worker} (pid "
                    f"{self._procs[worker].pid}) died mid-run: {error}"
                ) from error
            if reply_id != batch_id:  # pragma: no cover - protocol guard
                raise ConfigurationError(
                    f"shard worker {worker} answered batch {reply_id}, "
                    f"expected {batch_id}"
                )
            all_hits.extend(hits)
            considered += count
        return all_hits, considered

    def alive(self) -> bool:
        return all(proc.is_alive() for proc in self._procs)

    def stats(self) -> dict:
        return {
            "workers": self.workers,
            "pids": self.pids,
            "batches_by_worker": list(self.batches_by_worker),
            "events_by_worker": list(self.events_by_worker),
            "store_free_rules": len(self.store_free),
        }

    def close(self) -> None:
        """Stop every worker (idempotent)."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self._conns.clear()
        self._procs.clear()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            if self._procs:
                self.close()
        except Exception:
            pass


__all__ = ["ShardWorkerPool"]


def default_worker_count() -> int:
    """A sensible worker count for this machine: physical cores minus one
    for the serial parent phase, at least one."""
    return max(1, (os.cpu_count() or 1) - 1)
