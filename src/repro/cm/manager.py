"""The ConstraintManager façade and the Scenario infrastructure bundle.

This is the operator-facing surface of the toolkit (Section 4 of the paper):

1. build a :class:`Scenario` (simulator, network, trace, failure plan);
2. :meth:`ConstraintManager.add_site` for each participating site;
3. :meth:`ConstraintManager.add_source` to attach each raw source via its
   CM-RID-configured translator — this registers the source's item families
   at the site;
4. :meth:`ConstraintManager.declare` each inter-site constraint;
5. :meth:`ConstraintManager.suggest` to survey interfaces and get the
   applicable strategies with their proven guarantees, then
   :meth:`ConstraintManager.install` one of them — the manager distributes
   rules to shells by LHS site, starts timers, sets up notify hooks,
   allocates shell-private items, and registers the guarantees with the
   status board;
6. run the simulation; afterwards, :meth:`ConstraintManager.check_guarantees`
   evaluates every issued guarantee against the recorded trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.constraints import Constraint, InequalityConstraint
from repro.core.catalog import Suggestion, SuggestionContext, suggest
from repro.core.errors import ConfigurationError
from repro.core.events import Event, EventKind, reset_event_sequence
from repro.core.guarantees import Guarantee, GuaranteeReport
from repro.core.interfaces import InterfaceSet
from repro.core.items import MISSING, DataItemRef, Locations, Value
from repro.core.strategies import StrategySpec
from repro.core.timebase import Ticks
from repro.core.trace import ExecutionTrace
from repro.cm.guarantee_status import GuaranteeStatusBoard
from repro.cm.rid import CMRID
from repro.cm.shell import CMShell
from repro.cm.translator import CMTranslator, ServiceModel
from repro.cm.translators import translator_for
from repro.obs import Instrumentation
from repro.obs.report import RunReport, build_run_report
from repro.ris.base import RawInformationSource
from repro.runtime.api import (
    Clock,
    Runtime,
    RuntimeSpec,
    TransportAPI,
    resolve_runtime,
)
from repro.sim.failures import FailurePlan
from repro.sim.network import LatencyModel
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.cm.builder import ConstraintBuilder, SiteBuilder


#: Module-level hooks invoked with every newly built :class:`Scenario`
#: (right after its runtime is wired, before any sites exist).  This is
#: the seam external observers use to reach scenarios constructed deep
#: inside experiment ``run()`` functions — the ``python -m repro watch``
#: dashboard attaches its telemetry bus here.
_scenario_hooks: list = []


def add_scenario_hook(hook):
    """Register ``hook(scenario)`` to run for each new Scenario."""
    _scenario_hooks.append(hook)
    return hook


def remove_scenario_hook(hook) -> None:
    """Unregister a hook added with :func:`add_scenario_hook`."""
    _scenario_hooks.remove(hook)


@dataclass
class Scenario:
    """The world one experiment runs in — simulated or over the wire.

    ``runtime`` selects the execution substrate (:mod:`repro.runtime`):
    ``"sim"`` (default) is the deterministic discrete-event kernel,
    ``"async"`` runs shells as asyncio tasks over real loopback sockets.
    ``sim`` and ``network`` keep their historical names and surfaces —
    whichever runtime is active, they satisfy the :class:`Clock` and
    :class:`TransportAPI` protocols everything downstream codes against.
    """

    seed: int = 0
    default_latency: Optional[LatencyModel] = None
    failure_plan: FailurePlan = field(default_factory=FailurePlan)
    in_order: bool = True
    runtime: RuntimeSpec = "sim"
    #: Same-tick event batching per shell: events arriving at one virtual
    #: tick dispatch as fused batches of up to this size (0/1 = per-event).
    batch_max: int = 0
    #: Family shards per shell store/dispatcher (1 = the unsharded kernel).
    dispatch_shards: int = 1
    #: Run sharded phase-A matching on a thread pool.  Off by default:
    #: pure-Python matching gains nothing under the GIL, so threads only
    #: demonstrate (and test) that per-shard state is truly independent.
    #: Opting in emits a one-time warning pointing at ``shard_workers``.
    shard_threads: bool = False
    #: Run sharded phase-A matching on this many worker *processes* (0 =
    #: in-process).  The real multi-core option: workers hold their own
    #: compiled rule sets and match descriptor slices shipped by the wire
    #: codec, off the GIL; conditions and RHS stay serial in batch order,
    #: so the trace is identical to the sequential kernel's.  Needs
    #: ``dispatch_shards > 1`` (shards are the unit of distribution).
    shard_workers: int = 0
    #: Drive sharded batch dispatch from each shell's certified
    #: :class:`~repro.analysis.parplan.ParallelPlan`: hoistable conditions
    #: evaluate ahead of the batch's commits and store-free conditions run
    #: on the shard workers.  Trace-identical to the serial kernel — the
    #: plan certifies evaluation order freedom, never commit reordering.
    parallel_phases: bool = False
    #: Attach the dynamic race sanitizer
    #: (:class:`~repro.analysis.sanitizer.RaceSanitizer`): every store
    #: access is checked against the static plan's independence claims;
    #: any flagged pair is a soundness bug in the effect analysis.
    sanitize: bool = False
    sim: Clock = field(init=False)
    rngs: RngRegistry = field(init=False)
    network: TransportAPI = field(init=False)
    trace: ExecutionTrace = field(init=False)
    #: The scenario-wide observability bundle (metrics registry, span
    #: tracer, sinks).  Shells, the network, and translators all share it.
    obs: Instrumentation = field(init=False)
    #: The resolved runtime instance bound to this scenario.
    runtime_impl: Runtime = field(init=False)
    #: The attached race sanitizer (``sanitize=True``), else ``None``.
    sanitizer: Optional[Any] = field(init=False, default=None)

    def __post_init__(self) -> None:
        reset_event_sequence()
        if self.failure_plan is None:  # tolerate explicit None
            self.failure_plan = FailurePlan()
        self.rngs = RngRegistry(self.seed)
        self.obs = Instrumentation()
        self.runtime_impl = resolve_runtime(self.runtime)
        self.sim, self.network = self.runtime_impl.build(self)
        self.trace = ExecutionTrace()
        self.sanitizer = None
        if self.sanitize:
            from repro.analysis.sanitizer import RaceSanitizer

            self.sanitizer = RaceSanitizer(obs=self.obs)
        for hook in list(_scenario_hooks):
            hook(self)

    @property
    def runtime_name(self) -> str:
        """The active runtime's registered name ("sim" or "async")."""
        return self.runtime_impl.name

    def run(self, until: Ticks) -> None:
        """Advance the scenario and close the trace at the horizon."""
        self.runtime_impl.run(self, until)
        self.trace.close(until)

    def shutdown(self) -> None:
        """Release runtime resources (sockets, tasks); sim is a no-op."""
        self.runtime_impl.shutdown(self)


@dataclass
class InstalledConstraint:
    """What :meth:`ConstraintManager.install` hands back: the running
    strategy and the guarantees the toolkit now stands behind."""

    constraint: Constraint
    strategy: StrategySpec
    guarantees: tuple[Guarantee, ...]
    native_protocol: Any = None


class ConstraintManager:
    """The distributed CM: all shells plus global bookkeeping."""

    def __init__(self, scenario: Scenario):
        self.scenario = scenario
        self.locations = Locations()
        self.shells: dict[str, CMShell] = {}
        self.board = GuaranteeStatusBoard()
        self.constraints: list[Constraint] = []
        self.installed: list[InstalledConstraint] = []

    # -- topology ------------------------------------------------------------

    def add_site(self, name: str) -> CMShell:
        """Create the CM-Shell for a site."""
        if name in self.shells:
            raise ConfigurationError(f"site {name!r} already exists")
        shell = CMShell(
            site=name,
            sim=self.scenario.sim,
            network=self.scenario.network,
            trace=self.scenario.trace,
            failure_plan=self.scenario.failure_plan,
            rngs=self.scenario.rngs,
            obs=self.scenario.obs,
            shards=self.scenario.dispatch_shards,
            shard_threads=self.scenario.shard_threads,
            shard_workers=self.scenario.shard_workers,
        )
        if self.scenario.batch_max > 1:
            shell.enable_batching(self.scenario.batch_max)
        if self.scenario.parallel_phases:
            shell.enable_parallel_phases()
        if self.scenario.sanitizer is not None:
            self.scenario.sanitizer.register_shell(shell)
        shell.on_failure.append(self.board.on_notice)
        self.shells[name] = shell
        for other in self.shells.values():
            other.peers = [s for s in self.shells if s != other.site]
        return shell

    def shell(self, site: str) -> CMShell:
        """The CM-Shell at a site; raises for unknown sites."""
        if site not in self.shells:
            raise ConfigurationError(f"unknown site: {site!r}")
        return self.shells[site]

    def close(self) -> None:
        """Release every shell's dispatch executors (worker processes)."""
        for shell in self.shells.values():
            shell.close()

    # -- fluent wiring ---------------------------------------------------------

    def site(self, name: str) -> "SiteBuilder":
        """Fluent wiring for a site, created on first mention.

        ``cm.site("sf").source(db, rid).site("ny").source(hq, rid2)`` replaces
        the ``add_site`` / ``add_source`` two-step; see
        :class:`~repro.cm.builder.SiteBuilder`.
        """
        from repro.cm.builder import SiteBuilder

        if name not in self.shells:
            self.add_site(name)
        return SiteBuilder(self, name)

    def constraint(self, constraint: Constraint) -> "ConstraintBuilder":
        """Fluent declare-suggest-install chain for one constraint.

        ``cm.constraint(CopyConstraint(...)).strategy("propagation")``
        declares the constraint, surveys interfaces, picks the named proven
        strategy, and installs it; see
        :class:`~repro.cm.builder.ConstraintBuilder`.
        """
        from repro.cm.builder import ConstraintBuilder

        return ConstraintBuilder(self, constraint)

    def add_source(
        self,
        site: str,
        source: RawInformationSource,
        rid: CMRID,
        service: ServiceModel | None = None,
        seed_existing: bool = True,
    ) -> CMTranslator:
        """Attach a raw source at a site via its standard translator.

        A site hosting a source without its own CM-Shell (Figure 1's Site 3)
        is modelled by registering the source at the shell acting on its
        behalf — pass that shell's site here.

        With ``seed_existing`` (the default), the current values of every
        bound item instance are snapshotted into the execution trace as the
        time-0 state: the databases pre-exist the constraint manager, and
        guarantees are stated relative to what they held when management
        began.  Disable it only when a scenario loads all data through
        ``spontaneous_write`` after setup.
        """
        translator = translator_for(source, rid, service)
        shell = self.shell(site)
        shell.add_translator(translator)
        for family in translator.families():
            self.locations.register(family, site)
        if seed_existing:
            for family in translator.families():
                for ref in translator._native_enumerate(family):
                    value = translator._native_read(ref)
                    if value is not MISSING:
                        self.scenario.trace.seed(ref, value)
        return translator

    # -- survey and declaration (Section 4.1 initialization) --------------------

    def interfaces(self) -> InterfaceSet:
        """The merged interface survey across all translators."""
        merged = InterfaceSet()
        for shell in self.shells.values():
            seen: set[int] = set()
            for translator in shell.translators.values():
                if id(translator) in seen:
                    continue
                seen.add(id(translator))
                for spec in translator.offered_interfaces().specs:
                    merged.add(spec)
        return merged

    def declare(self, constraint: Constraint) -> Constraint:
        """Register a constraint the applications care about."""
        self.constraints.append(constraint)
        return constraint

    def suggest(self, constraint: Constraint, **options: Any) -> list[Suggestion]:
        """Applicable proven strategies with their guarantees."""
        context = SuggestionContext(
            interfaces=self.interfaces(),
            locations=self.locations,
            options=options,
        )
        return suggest(constraint, context)

    # -- installation --------------------------------------------------------------

    def install(
        self,
        constraint: Constraint,
        suggestion: Suggestion,
        **native_options: Any,
    ) -> InstalledConstraint:
        """Install a suggested strategy; returns the standing guarantees."""
        strategy = suggestion.strategy
        native_protocol = None
        if strategy.executor == "native":
            native_protocol = self._install_native(
                constraint, strategy, native_options
            )
        else:
            self._install_rules(strategy)
        sites = constraint.sites(self.locations)
        for family, site in strategy.private_families:
            sites.add(site)
        for guarantee in suggestion.guarantees:
            self.board.register(guarantee, sites)
        installed = InstalledConstraint(
            constraint, strategy, suggestion.guarantees, native_protocol
        )
        self.installed.append(installed)
        return installed

    def _install_rules(self, strategy: StrategySpec) -> None:
        for family, site in strategy.private_families:
            if not site:
                raise ConfigurationError(
                    f"strategy {strategy.name!r}: private family {family!r} "
                    f"has no site (pass dst_site when building the strategy)"
                )
            self.locations.register(family, site)
        self._validate_rule_requirements(strategy)
        for rule in strategy.rules:
            rhs_site = rule.resolve_rhs_site(self.locations)
            if rule.lhs.kind is EventKind.PERIODIC:
                lhs_site = rule.lhs_site or rhs_site
                if lhs_site is None:
                    raise ConfigurationError(
                        f"rule {rule.name!r}: cannot place the periodic timer"
                    )
                self.shell(lhs_site).install(
                    rule, rhs_site, phase=strategy.timer_phases.get(rule.name)
                )
                if rhs_site is not None and rhs_site != lhs_site:
                    self.shell(rhs_site).register_remote_rule(rule)
                continue
            lhs_site = rule.resolve_lhs_site(self.locations)
            self.shell(lhs_site).install(rule, rhs_site)
            if rhs_site is not None and rhs_site != lhs_site:
                # Cross-site rule: the RHS shell registers the same rule
                # definition so a by-value firing (rule name + slots over
                # the wire) resolves and compiles locally at the receiver.
                self.shell(rhs_site).register_remote_rule(rule)
            if rule.lhs.kind is EventKind.NOTIFY:
                family = rule.lhs.item_family
                assert family is not None
                self.shell(lhs_site).translator_for(family).setup_notify(family)

    def _validate_rule_requirements(self, strategy: StrategySpec) -> None:
        """Fail installation early when a rule needs an unoffered interface.

        A WR (write request) to a family requires its source to offer a
        write interface; an RR a read interface; a notify-triggered LHS a
        (conditional/periodic) notify interface.  Catching this at install
        time mirrors the paper's configuration-time interface survey — a
        strategy that does not fit the offered interfaces should never
        start running.
        """
        from repro.core.interfaces import InterfaceKind

        interfaces = self.interfaces()
        needs: list[tuple[str, InterfaceKind]] = []
        for rule in strategy.rules:
            if rule.lhs.kind is EventKind.NOTIFY and rule.lhs.item_family:
                needs.append((rule.lhs.item_family, InterfaceKind.NOTIFY))
            for step in rule.steps:
                family = step.template.item_family
                if family is None:
                    continue
                if step.template.kind is EventKind.WRITE_REQUEST:
                    needs.append((family, InterfaceKind.WRITE))
                elif step.template.kind is EventKind.READ_REQUEST:
                    needs.append((family, InterfaceKind.READ))
        from repro.core.terms import FAMILY_WILDCARD

        private = {family for family, __ in strategy.private_families}
        for family, kind in needs:
            if family in private or family == FAMILY_WILDCARD:
                continue
            if not self.locations.known(family):
                raise ConfigurationError(
                    f"strategy {strategy.name!r} references family "
                    f"{family!r} ({kind.value} interface needed), but no "
                    f"source is registered for it; add the source with "
                    f"cm.add_source(...) before installing the strategy"
                )
            if kind is InterfaceKind.NOTIFY:
                satisfied = any(
                    interfaces.has(family, k)
                    for k in (
                        InterfaceKind.NOTIFY,
                        InterfaceKind.CONDITIONAL_NOTIFY,
                        InterfaceKind.PERIODIC_NOTIFY,
                    )
                )
            else:
                satisfied = interfaces.has(family, kind)
            if not satisfied:
                raise ConfigurationError(
                    f"strategy {strategy.name!r} needs a {kind.value} "
                    f"interface for {family!r}, but none is offered"
                )

    def _install_native(
        self,
        constraint: Constraint,
        strategy: StrategySpec,
        options: dict[str, Any],
    ) -> Any:
        if strategy.kind == "demarcation":
            from repro.protocols.demarcation import DemarcationProtocol

            if not isinstance(constraint, InequalityConstraint):
                raise ConfigurationError(
                    "the demarcation strategy manages inequality constraints"
                )
            x_ref = DataItemRef(constraint.x_family)
            y_ref = DataItemRef(constraint.y_family)
            x_site = self.locations.site_of(constraint.x_family)
            y_site = self.locations.site_of(constraint.y_family)
            return DemarcationProtocol(
                self.shell(x_site),
                self.shell(y_site),
                x_ref,
                y_ref,
                policy=strategy.metadata["policy"],
                **options,
            )
        if strategy.native_factory is not None:
            return strategy.native_factory(self, constraint, **options)
        raise ConfigurationError(
            f"native strategy {strategy.name!r} has no factory"
        )

    # -- workload entry points ---------------------------------------------------------

    def spontaneous_write(
        self, family: str, args: tuple, value: Value
    ) -> Event:
        """A local application updates an item (records Ws, fires hooks)."""
        site = self.locations.site_of(family)
        shell = self.shell(site)
        ref = DataItemRef(family, args)
        return shell.translator_for(family).apply_spontaneous_write(ref, value)

    def spontaneous_delete(self, family: str, args: tuple) -> Event:
        """A local application deletes an item."""
        site = self.locations.site_of(family)
        shell = self.shell(site)
        ref = DataItemRef(family, args)
        return shell.translator_for(family).apply_spontaneous_delete(ref)

    # -- post-run evaluation ------------------------------------------------------------

    def run(self, until: Ticks) -> None:
        """Advance the scenario (convenience passthrough)."""
        self.scenario.run(until)

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-site dispatch counters plus a ``"total"`` aggregate.

        Each site's entry is its shell's :meth:`CMShell.stats` dict
        (``rules_installed``, ``events_processed``, ``candidates_considered``,
        ``rules_fired``); ``candidates_considered`` vs.
        ``rules_installed * events_processed`` quantifies what indexed
        dispatch pruned away relative to a linear scan.
        """
        per_site = {site: shell.stats() for site, shell in self.shells.items()}
        total = {
            "rules_installed": 0,
            "rules_compiled": 0,
            "rules_fallback": 0,
            "events_processed": 0,
            "candidates_considered": 0,
            "rules_fired": 0,
            "batches_processed": 0,
            "batch_events": 0,
            "match_hits": 0,
            "match_misses": 0,
        }
        for counters in per_site.values():
            for key in total:
                total[key] += counters[key]
        per_site["total"] = total
        return per_site

    def run_report(self) -> RunReport:
        """The structured end-of-run report (see :mod:`repro.obs.report`).

        Per-constraint firing counts, propagation-latency histograms,
        network channel statistics, translator RISI op counts, failure
        classifications, and per-guarantee staleness — everything the perf
        trajectory compares across runs.
        """
        return build_run_report(self)

    def check_guarantees(self) -> dict[str, GuaranteeReport]:
        """Evaluate every issued guarantee against the recorded trace."""
        reports: dict[str, GuaranteeReport] = {}
        for installed in self.installed:
            for guarantee in installed.guarantees:
                reports[guarantee.name] = guarantee.check(self.scenario.trace)
        return reports

    def stop(self) -> None:
        """Stop all shell timers (end of scenario)."""
        for shell in self.shells.values():
            shell.stop_timers()
