"""CM-RID: the Raw Interface Description configuring a standard translator.

Section 4.1 of the paper: "The design and implementation of the
CM-Translator is helped by the CM-Raw Interface Description (CM-RID) file,
which configures standard CM-Translators to the particular underlying data
source ... a CM-Translator for relational databases can be configured to
interface with any DBMS and any database just by specifying the appropriate
CM-RID."

A CM-RID contains, per constraint-relevant item family:

- an :class:`ItemBinding` — *where* the items live in the native source
  (table/key-column/value-column for relational, path for files, class and
  attribute for object stores, ...), expressed as a translator-kind-specific
  ``locator`` mapping, mirroring the paper's example of embedding the actual
  SQL command shape in the CM-RID;
- the :class:`InterfaceOffer` list — *which* interfaces the administrator
  chose to offer for the family, with their time bounds.

Plus connection "protocol details" (server, port) that are carried for
fidelity to the paper's description; the in-process sources don't need them.

CM-RIDs round-trip through plain dicts (:meth:`CMRID.from_dict` /
:meth:`CMRID.to_dict`) so examples can show the config-file workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.dsl import parse_condition
from repro.core.errors import ConfigurationError
from repro.core.interfaces import (
    InterfaceKind,
    InterfaceSet,
    InterfaceSpec,
    conditional_notify_interface,
    no_spontaneous_write_interface,
    notify_interface,
    periodic_notify_interface,
    read_interface,
    update_window_interface,
    write_interface,
)
from repro.core.timebase import Ticks, seconds, to_seconds


@dataclass(frozen=True)
class ItemBinding:
    """Where one item family lives inside the native source."""

    family: str
    locator: dict[str, str]
    params: tuple[str, ...] = ()

    @property
    def parameterized(self) -> bool:
        """Whether the family takes a parameter (e.g. salary1(n))."""
        return bool(self.params)


@dataclass(frozen=True)
class InterfaceOffer:
    """One interface the administrator offers for a family."""

    kind: InterfaceKind
    bound: Ticks = 0
    period: Optional[Ticks] = None
    condition: str = ""  # DSL text, for conditional notify
    window: Optional[tuple[Ticks, Ticks]] = None  # for update-window offers

    def to_spec(self, binding: ItemBinding) -> InterfaceSpec:
        """Materialize the paper-style interface rule for this offer."""
        family = binding.family
        params = binding.params
        if self.kind is InterfaceKind.WRITE:
            return write_interface(family, self.bound, params)
        if self.kind is InterfaceKind.READ:
            return read_interface(family, self.bound, params)
        if self.kind is InterfaceKind.NOTIFY:
            return notify_interface(family, self.bound, params)
        if self.kind is InterfaceKind.CONDITIONAL_NOTIFY:
            if not self.condition:
                raise ConfigurationError(
                    f"conditional notify for {family!r} needs a condition"
                )
            return conditional_notify_interface(
                family, self.bound, parse_condition(self.condition), params
            )
        if self.kind is InterfaceKind.PERIODIC_NOTIFY:
            if self.period is None:
                raise ConfigurationError(
                    f"periodic notify for {family!r} needs a period"
                )
            return periodic_notify_interface(family, self.period, self.bound)
        if self.kind is InterfaceKind.NO_SPONTANEOUS_WRITE:
            return no_spontaneous_write_interface(family, params)
        if self.kind is InterfaceKind.UPDATE_WINDOW:
            if self.window is None:
                raise ConfigurationError(
                    f"update-window offer for {family!r} needs a window"
                )
            return update_window_interface(
                family, self.window[0], self.window[1], params
            )
        raise ConfigurationError(f"unknown interface kind: {self.kind}")


@dataclass
class CMRID:
    """The full configuration of one standard CM-Translator."""

    source_kind: str
    source_name: str
    bindings: dict[str, ItemBinding] = field(default_factory=dict)
    offers: dict[str, list[InterfaceOffer]] = field(default_factory=dict)
    protocol: dict[str, Any] = field(default_factory=dict)

    def bind(
        self,
        family: str,
        params: tuple[str, ...] = (),
        **locator: str,
    ) -> "CMRID":
        """Declare where a family lives (chainable)."""
        if family in self.bindings:
            raise ConfigurationError(f"family {family!r} already bound")
        self.bindings[family] = ItemBinding(family, dict(locator), params)
        return self

    def offer(
        self,
        family: str,
        kind: InterfaceKind,
        bound_seconds: float = 0.0,
        period_seconds: Optional[float] = None,
        condition: str = "",
        window: Optional[tuple[Ticks, Ticks]] = None,
    ) -> "CMRID":
        """Offer an interface for a bound family (chainable)."""
        if family not in self.bindings:
            raise ConfigurationError(
                f"cannot offer an interface for unbound family {family!r}"
            )
        self.offers.setdefault(family, []).append(
            InterfaceOffer(
                kind,
                seconds(bound_seconds),
                seconds(period_seconds) if period_seconds is not None else None,
                condition,
                window,
            )
        )
        return self

    def binding(self, family: str) -> ItemBinding:
        """The binding for a family; raises if unbound."""
        if family not in self.bindings:
            raise ConfigurationError(
                f"translator for {self.source_name!r} has no binding for "
                f"family {family!r}"
            )
        return self.bindings[family]

    def interface_set(self) -> InterfaceSet:
        """All offered interfaces as paper-style rules."""
        interfaces = InterfaceSet()
        for family, offers in self.offers.items():
            binding = self.bindings[family]
            for offer in offers:
                interfaces.add(offer.to_spec(binding))
        return interfaces

    # -- dict round-trip -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (what a CM-RID file would contain)."""
        return {
            "source_kind": self.source_kind,
            "source_name": self.source_name,
            "protocol": dict(self.protocol),
            "bindings": {
                family: {
                    "locator": dict(binding.locator),
                    "params": list(binding.params),
                }
                for family, binding in self.bindings.items()
            },
            "offers": {
                family: [
                    {
                        "kind": offer.kind.value,
                        "bound_seconds": to_seconds(offer.bound),
                        **(
                            {"period_seconds": to_seconds(offer.period)}
                            if offer.period is not None
                            else {}
                        ),
                        **(
                            {"condition": offer.condition}
                            if offer.condition
                            else {}
                        ),
                        **(
                            {
                                "window_seconds": [
                                    to_seconds(offer.window[0]),
                                    to_seconds(offer.window[1]),
                                ]
                            }
                            if offer.window is not None
                            else {}
                        ),
                    }
                    for offer in offers
                ]
                for family, offers in self.offers.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CMRID":
        """Parse the plain-dict (file) form.

        Malformed input — missing required fields, unknown interface-kind
        names, duplicate bindings, offers for unbound families — raises
        :class:`ConfigurationError` naming the offending entry, so a bad
        CM-RID file fails at load time with actionable context instead of
        a bare ``KeyError`` deep in the wiring.
        """
        for required in ("source_kind", "source_name"):
            if required not in data:
                raise ConfigurationError(
                    f"CM-RID is missing the required field {required!r} "
                    f"(got fields: {sorted(data)})"
                )
        rid = cls(
            source_kind=data["source_kind"],
            source_name=data["source_name"],
            protocol=dict(data.get("protocol", {})),
        )
        where = f"CM-RID for {rid.source_kind!r} source {rid.source_name!r}"
        for family, binding_data in data.get("bindings", {}).items():
            if not isinstance(binding_data, dict):
                raise ConfigurationError(
                    f"{where}: binding for family {family!r} must be a "
                    f"mapping with 'locator'/'params', got "
                    f"{type(binding_data).__name__}"
                )
            rid.bind(
                family,
                params=tuple(binding_data.get("params", ())),
                **binding_data.get("locator", {}),
            )
        for family, offers in data.get("offers", {}).items():
            for offer in offers:
                if "kind" not in offer:
                    raise ConfigurationError(
                        f"{where}: offer for family {family!r} is missing "
                        f"'kind' (entry: {offer!r})"
                    )
                try:
                    kind = InterfaceKind(offer["kind"])
                except ValueError:
                    raise ConfigurationError(
                        f"{where}: offer for family {family!r} names "
                        f"unknown interface kind {offer['kind']!r} "
                        f"(valid: "
                        f"{', '.join(k.value for k in InterfaceKind)})"
                    ) from None
                window = offer.get("window_seconds")
                rid.offer(
                    family,
                    kind,
                    bound_seconds=offer.get("bound_seconds", 0.0),
                    period_seconds=offer.get("period_seconds"),
                    condition=offer.get("condition", ""),
                    window=(
                        (seconds(window[0]), seconds(window[1]))
                        if window is not None
                        else None
                    ),
                )
        return rid
