"""CM-Shell: the per-site rule engine of the toolkit (Section 4.1).

Each shell:

- receives events from its local CM-Translators (notifications, read
  responses) and from its periodic timers;
- matches them against the strategy rules whose *left-hand side* is at this
  site (rule distribution, Section 4.1);
- evaluates LHS conditions (with binder equalities) over its private store;
- executes right-hand sides locally, or forwards a fire message to the shell
  owning the RHS site — message transport is the simulated network, whose
  per-channel FIFO provides the in-order processing Appendix A property 7
  requires;
- emits RHS events: ``WR``/``RR`` go to the owning translator, ``W`` on
  shell-private items goes to the local store;
- relays failure notices from its translators to its peers and to any
  registered listeners (the manager's guarantee-status board).

Rule dispatch is *indexed*: :meth:`CMShell.install` keys each rule by its
LHS ``(EventKind, family)`` discriminator in a
:class:`~repro.cm.dispatch.RuleIndex`, so processing an event consults only
the candidate bucket (plus the kind's catch-all bucket for family-variable
templates) instead of scanning every installed rule.  The per-shell counters
``events_processed`` / ``candidates_considered`` / ``rules_fired`` —
surfaced by :meth:`CMShell.stats` — make the pruning observable: a linear
scan would consider ``len(rules)`` candidates per event.  Since PR 2 those
counters live in the scenario's :mod:`repro.obs` metrics registry, and when
tracing is enabled every processed event opens a causal span, so a
cross-site firing chain (``Ws`` → ``N`` → rule fire → network →
``WR``/``W``) is queryable as one trace tree.

A documented extension beyond the paper's examples: a read-request template
with unbound parameters (e.g. ``RR(salary1(n))`` fired by a poll timer) is
executed as an *enumerating read* over all current instances of the family,
which is how parameterized polling and end-of-day scans work.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter_ns
from typing import Callable, Optional

from repro.core.compile import CompiledRule, compile_rule
from repro.core.conditions import evaluate, evaluate_value
from repro.core.errors import (
    BindingError,
    CompileError,
    ConfigurationError,
    SpecError,
)
from repro.core.events import Event, EventKind, periodic_desc
from repro.core.items import DataItemRef
from repro.core.rules import Rule
from repro.core.terms import Bindings, Const, ground_item
from repro.cm.dispatch import RuleIndex, ShardedDispatcher
from repro.core.timebase import Ticks
from repro.core.trace import ExecutionTrace
from repro.cm.failures import FailureNotice
from repro.cm.store import ShellStore
from repro.cm.translator import CMTranslator
from repro.obs import Instrumentation
from repro.obs.metrics import BATCH_SIZE_BOUNDS, RULE_EXEC_NS_BOUNDS
from repro.runtime.api import Clock, TransportAPI
from repro.runtime.codec import WireFiring
from repro.sim.failures import FailurePlan
from repro.sim.network import Message
from repro.sim.process import PeriodicTimer
from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class FireMessage:
    """Cross-site rule firing: 'run this rule's RHS with these bindings'.

    A compiled firing carries the compiled program and its flat binding
    slot tuple (``program``/``slots``); the receiving shell runs the
    program's RHS plan against *its* local store and translators.  An
    interpreted firing carries the classic name/value ``bindings`` pairs.
    """

    rule: Rule
    bindings: tuple[tuple[str, object], ...]
    trigger: Event
    program: object = None
    slots: tuple = ()


class CMShell:
    """One site's constraint-manager shell."""

    def __init__(
        self,
        site: str,
        sim: Clock,
        network: TransportAPI,
        trace: ExecutionTrace,
        failure_plan: FailurePlan,
        rngs: RngRegistry,
        obs: Instrumentation | None = None,
        shards: int = 1,
        shard_threads: bool = False,
        shard_workers: int = 0,
    ):
        self.site = site
        self.sim = sim
        self.network = network
        self.trace = trace
        self.failure_plan = failure_plan
        self.rngs = rngs
        self.obs = obs if obs is not None else network.obs
        self.store = ShellStore(site, trace, shards=shards)
        self.translators: dict[str, CMTranslator] = {}
        self._index = RuleIndex()
        # Family-sharded batch matching; the per-event path never pays for
        # it, and shards=1 keeps the fused batch loop shard-free too.
        self._sharded = (
            ShardedDispatcher(
                self._index,
                shards,
                threads=shard_threads,
                workers=shard_workers,
            )
            if shards > 1
            else None
        )
        self._timers: list[PeriodicTimer] = []
        self.peers: list[str] = []
        self.failure_log: list[FailureNotice] = []
        self.on_failure: list[Callable[[FailureNotice], None]] = []
        # The PR-1 dispatch counters, now metric series in the registry.
        # Hot-path increments go straight at Counter.value, which costs the
        # same as the plain ints they replace; `stats()` and the legacy
        # attribute names read them back.
        metrics = self.obs.metrics
        self._m_events = metrics.counter("shell_events_processed", site=site)
        self._m_candidates = metrics.counter(
            "shell_candidates_considered", site=site
        )
        self._m_fired = metrics.counter("shell_rules_fired", site=site)
        self._m_failures = metrics.counter("shell_failure_notices", site=site)
        self._m_compiled = metrics.counter("shell_rules_compiled", site=site)
        self._m_fallback = metrics.counter("shell_rules_fallback", site=site)
        self._fired_by_rule: dict[str, object] = {}
        # Per-rule profiling instruments (match hits/misses, RHS wall ns),
        # created lazily the first time the *profiled* dispatch loop meets
        # each rule — an unprofiled run never allocates them.
        self._profiles: dict[str, tuple] = {}
        self._rules_by_name: dict[str, Rule] = {}
        self._installed_by_name: dict[str, object] = {}
        # Rules whose LHS fires at a *peer* but whose RHS runs here: the
        # receiving half of the by-value firing codec (rule name + slots
        # cross the wire; this side re-compiles its own program).
        self._remote_rules: dict[str, tuple[Rule, Optional[CompiledRule]]] = {}
        self._chain_depth = 0
        # -- batched dispatch state --
        self._batch_max = 0
        self._batch_buffer: list[Event] = []
        self._batch_flush_scheduled = False
        # (kind, family) -> candidate bucket, valid while the rule set is
        # unchanged (rules cannot be installed mid-batch).
        self._batch_cache: dict = {}
        self._batch_cache_rules = 0
        self._m_batches = metrics.counter("shell_batches_processed", site=site)
        self._m_batch_events = metrics.counter("shell_batch_events", site=site)
        self._batch_hist = metrics.histogram(
            "shell_batch_size",
            bounds=BATCH_SIZE_BOUNDS,
            unit="events",
            site=site,
        )
        # -- certified parallel phases & the race sanitizer --
        #: The attached RaceSanitizer (Scenario(sanitize=True)); None keeps
        #: every hook below to a single identity check on the hot path.
        self._sanitizer = None
        #: Plan-driven dispatch (Scenario(parallel_phases=True)): hoist
        #: certified conditions ahead of the batch's commits and let shard
        #: workers evaluate store-free ones during matching.
        self._parallel = False
        self._parallel_plan = None
        self._parallel_plan_rules = -1
        self._m_hoisted = metrics.counter(
            "shell_hoisted_conditions", site=site
        )
        #: Offset of this site's local clock from true time, in ticks.
        #: Strategy execution never needs clocks (Section 7.2), but rules
        #: that *stamp* local time — the implicit ``now`` variable, as in
        #: the monitor strategy's Tb — read the skewed local clock, letting
        #: experiments quantify the paper's remark that time-referencing
        #: guarantees must absorb clock skew in their margins.
        self.clock_skew: Ticks = 0
        network.register_site(site, self._on_message)

    #: Maximum depth of rule-chained private writes in one causal chain.
    MAX_CHAIN_DEPTH = 16

    # -- wiring --------------------------------------------------------------

    def add_translator(self, translator: CMTranslator) -> None:
        """Attach a translator; its families become locally resolvable."""
        translator.attach(self)
        for family in translator.families():
            existing = self.translators.get(family)
            if existing is not None and existing is not translator:
                raise ConfigurationError(
                    f"family {family!r} already handled by "
                    f"{existing.source.name!r} at site {self.site!r}"
                )
            self.translators[family] = translator

    def translator_for(self, family: str) -> CMTranslator:
        """The translator owning a family at this site; raises if none."""
        translator = self.translators.get(family)
        if translator is None:
            raise ConfigurationError(
                f"site {self.site!r} has no translator for family {family!r}"
            )
        return translator

    #: Default for :meth:`install`'s ``compiled`` flag.  Set the class (or
    #: instance) attribute to ``False`` to force the tree-walking reference
    #: evaluator everywhere — the debugging escape hatch.
    compile_rules = True

    def install(
        self,
        rule: Rule,
        rhs_site: str | None = None,
        *,
        phase: Optional[Ticks] = None,
        compiled: bool | None = None,
        strict: bool = False,
    ) -> None:
        """Install a strategy rule whose LHS is at this site.

        The rule is keyed into the shell's dispatch index by its LHS
        ``(kind, family)`` discriminator and compiled into an executable
        program (:mod:`repro.core.compile`); rules the compiler cannot
        specialize fall back to the tree-walking reference evaluator
        (``stats()['rules_fallback']``), and ``compiled=False`` forces the
        fallback for debugging.  A periodic LHS (``P(p)``) also starts its
        timer here; ``phase`` is then the tick-of-day of the first firing
        (e.g. 17:00 for end-of-day strategies) — without it the timer
        starts at the epoch and fires every period.  ``rhs_site`` defaults
        to this site (local execution).

        With ``strict=True`` the shell lints itself (the single-site
        subset of CM-Lint: interface compliance, variable safety, cycle
        detection) after indexing the rule; any error-severity finding
        rolls the rule back and raises :class:`ConfigurationError`, so a
        strictly-installed shell is always lint-clean.
        """
        existing = self._rules_by_name.get(rule.name)
        if existing is not None and existing != rule:
            raise ConfigurationError(
                f"rule {rule.name!r} is already installed at site "
                f"{self.site!r} with a different definition; rule names key "
                f"firing counters and must be unique per shell"
            )
        if rule.lhs.kind is not EventKind.PERIODIC and phase is not None:
            raise SpecError(
                f"rule {rule.name!r}: phase only applies to periodic rules"
            )
        if compiled is None:
            compiled = self.compile_rules
        installed = self._index.add(rule, rhs_site, compiled=compiled)
        if strict:
            from repro.analysis import lint_shell

            errors = lint_shell(self).errors
            if errors:
                self._index.remove(installed)
                raise ConfigurationError(
                    f"strict install of rule {rule.name!r} at site "
                    f"{self.site!r} rejected by lint:\n  "
                    + "\n  ".join(str(finding) for finding in errors)
                )
        if rule.lhs.kind is EventKind.PERIODIC:
            self._install_timer(rule, phase)
        if installed.program is not None:
            self._m_compiled.value += 1
        elif compiled:
            self._m_fallback.value += 1
        self._rules_by_name[rule.name] = rule
        self._installed_by_name[rule.name] = installed
        if rule.name not in self._fired_by_rule:
            self._fired_by_rule[rule.name] = self.obs.metrics.counter(
                "rule_fired", site=self.site, rule=rule.name
            )

    def register_remote_rule(self, rule: Rule) -> None:
        """Register a rule installed at a peer whose RHS executes here.

        The by-value firing codec ships only the rule *name* plus encoded
        slot values; this registration is the receiving half of the CM-RID
        contract — both sites hold the same rule definition, and this side
        compiles its own program, so an inbound firing resolves and runs
        without referencing any sender memory.  Compilation is
        deterministic, so the sender's slot layout drops straight into the
        local program.
        """
        existing = self._rules_by_name.get(rule.name)
        if existing is not None and existing != rule:
            raise ConfigurationError(
                f"rule {rule.name!r} is already known at site {self.site!r} "
                f"with a different definition; the firing codec resolves "
                f"rules by name, so names must be unique per shell"
            )
        if rule.name in self._remote_rules:
            return
        program: Optional[CompiledRule] = None
        if self.compile_rules:
            try:
                program = compile_rule(rule)
            except CompileError:
                program = None
        self._remote_rules[rule.name] = (rule, program)

    def _resolve_firing(self, firing: WireFiring) -> tuple[Rule, object]:
        """Resolve an inbound by-value firing against local rule knowledge."""
        name = firing.rule_name
        installed = self._installed_by_name.get(name)
        if installed is not None:
            return installed.rule, installed.program
        entry = self._remote_rules.get(name)
        if entry is not None:
            return entry
        raise ConfigurationError(
            f"shell {self.site!r} received a firing for unknown rule "
            f"{name!r}; a cross-site rule must be registered at its RHS "
            f"site (the CM-RID contract the by-value codec relies on)"
        )

    def _install_timer(self, rule: Rule, phase: Optional[Ticks]) -> None:
        """Start the timer driving a ``P(p)``-triggered rule."""
        period_term = rule.lhs.values[0]
        if not isinstance(period_term, Const):
            raise SpecError(
                f"rule {rule.name!r}: periodic template needs a constant period"
            )
        period = int(period_term.value)

        def fire() -> None:
            p_event = self.trace.record(
                self.sim.now, self.site, periodic_desc(period)
            )
            self._process_event(p_event)

        if phase is None:
            timer = PeriodicTimer(self.sim, period, fire)
        else:
            timer = _PhasedTimer(self.sim, period, phase, fire)
        self._timers.append(timer)

    @property
    def rules(self) -> list[Rule]:
        """All installed rules, in installation order."""
        return self._index.rules

    # The PR-1 counter attributes, read-compatibly backed by the registry.

    @property
    def events_processed(self) -> int:
        """Events this shell has dispatched (registry-backed)."""
        return self._m_events.value

    @property
    def candidates_considered(self) -> int:
        """Rules the dispatch index consulted (registry-backed)."""
        return self._m_candidates.value

    @property
    def rules_fired(self) -> int:
        """Rule firings at this shell (registry-backed)."""
        return self._m_fired.value

    def stats(self) -> dict[str, int]:
        """Dispatch counters for this shell.

        ``candidates_considered`` counts rules the index actually consulted;
        a linear scan would have considered
        ``rules_installed * events_processed``.  Since PR 2 these are an
        adapter over the scenario's metrics registry
        (``shell_events_processed{site=...}`` and friends), so the same
        numbers appear in Prometheus exports and run reports.
        """
        return {
            "rules_installed": len(self._index),
            "rules_compiled": self._m_compiled.value,
            "rules_fallback": self._m_fallback.value,
            "events_processed": self._m_events.value,
            "candidates_considered": self._m_candidates.value,
            "rules_fired": self._m_fired.value,
            # Zero unless the batched dispatch path ran.
            "batches_processed": self._m_batches.value,
            "batch_events": self._m_batch_events.value,
            # Zero unless rule profiling was enabled for the run.
            "match_hits": sum(p[0].value for p in self._profiles.values()),
            "match_misses": sum(p[1].value for p in self._profiles.values()),
        }

    def rule_profile(self) -> dict[str, dict]:
        """Per-rule dispatch profile (empty unless profiling was enabled).

        For each rule the profiled dispatch loop considered: how often its
        matcher hit vs. missed, how often it fired, and the wall-time
        histogram of its RHS executions (nanoseconds — real time, not
        virtual; this is the cost of running the rule, not the latency the
        scenario models).
        """
        profile: dict[str, dict] = {}
        for rule_name in sorted(self._profiles):
            hits, misses, exec_hist = self._profiles[rule_name]
            fired = self._fired_by_rule.get(rule_name)
            profile[rule_name] = {
                "match_hits": hits.value,
                "match_misses": misses.value,
                "fired": fired.value if fired is not None else 0,
                "exec_ns": exec_hist.summary(),
            }
        return profile

    def stop_timers(self) -> None:
        """Stop all periodic timers, including translator-driven ones."""
        for timer in self._timers:
            timer.stop()
        seen: set[int] = set()
        for translator in self.translators.values():
            if id(translator) not in seen:
                seen.add(id(translator))
                translator.stop_timers()

    def close(self) -> None:
        """Release dispatch executors (shard worker processes)."""
        if self._sharded is not None:
            self._sharded.close()

    # -- certified parallel phases & the race sanitizer ----------------------

    def attach_sanitizer(self, sanitizer) -> None:
        """Attach the dynamic race sanitizer (see
        :mod:`repro.analysis.sanitizer`); hooks stay dormant otherwise."""
        self._sanitizer = sanitizer

    def enable_parallel_phases(self, enabled: bool = True) -> None:
        """Drive batched dispatch from the certified parallel plan.

        When enabled, each sharded batch (re)builds the site's
        :class:`~repro.analysis.parplan.ParallelPlan` lazily and uses it
        two ways: *hoistable* conditions are evaluated for the whole batch
        before any RHS commits, and *store-free* conditions are shipped to
        the shard workers for evaluation during the matching phase.  RHS
        commits always stay in batch order, so the trace is byte-identical
        to the serial kernel's — certification licenses parallel
        evaluation, never observable reordering.
        """
        self._parallel = bool(enabled)
        self._parallel_plan = None
        self._parallel_plan_rules = -1
        if not enabled and self._sharded is not None:
            self._sharded.set_plan(None)

    def parallel_plan(self):
        """The site's current certified plan (lazy; rebuilt when the rule
        set changes; ``None`` while no rules are installed)."""
        count = len(self._index)
        if count == 0:
            return None
        if self._parallel_plan is None or self._parallel_plan_rules != count:
            from repro.analysis.parplan import build_parallel_plan

            self._parallel_plan = build_parallel_plan(self)
            self._parallel_plan_rules = count
            if self._parallel and self._sharded is not None:
                self._sharded.set_plan(self._parallel_plan)
        return self._parallel_plan

    def parallelism_stats(self) -> dict:
        """Plan-driven dispatch counters plus the plan itself, for the run
        report's ``parallelism`` section.  Empty unless enabled."""
        if not self._parallel:
            return {}
        plan = self.parallel_plan()
        return {
            "enabled": True,
            "hoisted_conditions": self._m_hoisted.value,
            # None for a shell with no installed rules (nothing to plan).
            "plan": plan.to_dict() if plan is not None else None,
        }

    # -- event processing -----------------------------------------------------------

    def deliver_local_event(self, event: Event) -> None:
        """Entry point for events from this site's translators.

        With batching enabled (:meth:`enable_batching`) the event is
        buffered and dispatched with the rest of its tick's arrivals in one
        fused batch; the flush callback is scheduled *at the current tick*,
        so the scheduler (which breaks same-time ties by insertion order)
        runs it after every already-scheduled arrival of this tick — only
        the intra-tick interleaving changes, never cross-tick ordering.
        """
        if self._batch_max:
            buffer = self._batch_buffer
            if buffer and buffer[0].time != event.time:
                # The clock advanced before the scheduled flush ran (the
                # wall-clock runtime can do this): close the old tick's
                # block eagerly so a batch never spans ticks.
                self._flush_event_buffer()
                buffer = self._batch_buffer
            buffer.append(event)
            if len(buffer) >= self._batch_max:
                self._flush_event_buffer()
            elif not self._batch_flush_scheduled:
                self._batch_flush_scheduled = True
                self.sim.at(self.sim.now, self._flush_event_buffer)
            return
        self._process_event(event)

    def enable_batching(self, max_batch: int = 256) -> None:
        """Dispatch translator-delivered events in same-tick batches.

        Events arriving at one virtual tick are buffered and run through
        the fused batch loop together, up to ``max_batch`` per block
        (``max_batch <= 1`` turns batching back off).  Verdict-preserving:
        all buffered events share one tick, so only the intra-tick
        interleaving with other same-tick callbacks changes, which the
        Appendix-A properties are insensitive to (property 7 explicitly
        ignores same-time pairs) — ``tests/cm/test_batched_equivalence.py``
        holds batched runs to the sequential kernel's verdicts.
        """
        self._batch_max = 0 if max_batch <= 1 else int(max_batch)

    def _flush_event_buffer(self) -> None:
        self._batch_flush_scheduled = False
        buffer = self._batch_buffer
        if not buffer:
            return
        self._batch_buffer = []
        self._dispatch_batch(_RecordedBatch(buffer))

    def deliver_local_events(self, events: list[Event]) -> None:
        """Dispatch a batch of already-recorded same-tick events in one
        fused pass (the batched counterpart of :meth:`deliver_local_event`).
        """
        if events:
            self._dispatch_batch(_RecordedBatch(events))

    def ingest_batch(
        self, descs, time: Optional[Ticks] = None
    ) -> int:
        """Record and dispatch a same-tick batch of local event descriptors.

        The high-throughput front door: descriptors go through
        :meth:`ExecutionTrace.record_batch` (journal writes eager, Event
        materialization and index maintenance deferred to one flush per
        block) and then through the fused batch dispatch loop, which
        materializes trigger events lazily — an event nothing matches never
        becomes an Event object until the trace is read.  Returns the
        number of events ingested.
        """
        descs = list(descs)
        if not descs:
            return 0
        when = self.sim.now if time is None else time
        batch = self.trace.record_batch(when, self.site, descs)
        self._dispatch_batch(batch)
        return len(descs)

    def _dispatch_batch(self, batch) -> None:
        """One same-tick batch through the fused hot loop.

        The batched path's contract with the per-event specification path
        (:meth:`_process_event`): identical matching, condition evaluation,
        firing order, and RHS execution — but the per-event fixed costs are
        paid once per batch.  Metrics counters accumulate in locals and
        flush at batch close (also on an exception escaping mid-batch), the
        flight recorder gets one digest per block, and candidate buckets
        are memoized per ``(kind, family)`` for the batch's rule-set
        generation.  When per-event observability artifacts are on (spans,
        event sinks, rule profiles) the loop falls back to
        :meth:`_process_event` per event: batching amortizes bookkeeping,
        never the observability contract.
        """
        descs = batch.descs
        count = len(descs)
        if not count:
            return
        obs = self.obs
        self._m_batches.value += 1
        self._m_batch_events.value += count
        self._batch_hist.observe(count)
        if obs.rule_profiling or obs.sinks or obs.tracer.enabled:
            for index in range(count):
                self._process_event(batch.event_at(index))
            return
        if obs.enabled and obs.flight is not None:
            obs.flight.record(
                self.site, "batch", self.sim.now, f"{count} events"
            )
        site = self.site
        store = self.store
        network = self.network
        n_candidates = 0
        n_fired = 0
        fired_local: dict[str, int] = {}
        try:
            if self._sharded is not None:
                # Phase A: pure per-shard matching (store-free conditions
                # decided on the workers when a plan is armed).  Phase A.5:
                # hoisted condition pre-pass over the whole batch.  Phase B
                # (below): remaining conditions + RHS serially in batch
                # order, which is what keeps the trace identical to the
                # unsharded kernel's.
                san = self._sanitizer
                if self._parallel:
                    self.parallel_plan()
                matches = self._sharded.match_batch(descs)
                n_candidates = self._sharded.last_candidates
                shard_of_event = self._sharded.last_shard_of
                verdicts = (
                    self._hoist_conditions(matches, count)
                    if self._parallel
                    else None
                )
                try:
                    for index in range(count):
                        hits = matches[index]
                        if not hits:
                            continue
                        # Attribute this event's RHS writes to the shard
                        # that dispatched it (barrier-pinned events go to
                        # shard 0, matching events_by_shard).
                        store.dispatch_shard = shard_of_event[index]
                        for installed, slots, bindings, cond in hits:
                            program = installed.program
                            if cond is None and verdicts is not None:
                                cond = verdicts.get((index, installed.serial))
                            if cond is False:
                                continue
                            if cond is None:
                                if program is not None:
                                    lhs = program.lhs
                                    if lhs is not None:
                                        cstore = (
                                            store
                                            if san is None
                                            else san.reader(
                                                site,
                                                installed.rule.name,
                                                store,
                                                self.sim.now,
                                            )
                                        )
                                        try:
                                            if not lhs(slots, cstore):
                                                continue
                                        except (BindingError, TypeError):
                                            continue
                                elif not self._lhs_condition_holds(
                                    installed.rule, bindings
                                ):
                                    continue
                            rule = installed.rule
                            n_fired += 1
                            fired_local[rule.name] = (
                                fired_local.get(rule.name, 0) + 1
                            )
                            trigger = batch.event_at(index)
                            rhs_site = installed.rhs_site
                            if program is not None:
                                if rhs_site is None or rhs_site == site:
                                    self._execute_compiled_rhs(
                                        program, slots, trigger
                                    )
                                else:
                                    network.send(
                                        site,
                                        rhs_site,
                                        FireMessage(
                                            rule, (), trigger,
                                            program=program,
                                            slots=tuple(slots),
                                        ),
                                    )
                            elif rhs_site is None or rhs_site == site:
                                self._execute_rhs(rule, bindings, trigger)
                            else:
                                network.send(
                                    site,
                                    rhs_site,
                                    FireMessage(
                                        rule, tuple(bindings.items()), trigger
                                    ),
                                )
                finally:
                    store.dispatch_shard = None
                return
            # Unsharded fused loop.  The candidate cache is two-level
            # (kind, then family) with the kind level memoized across
            # consecutive events: hashing an Enum member is a Python-level
            # call, and batches are almost always single-kind, so the hot
            # lookup pays only one C-level string hash per event.
            san = self._sanitizer
            index_ = self._index
            cache = self._batch_cache
            if self._batch_cache_rules != len(index_):
                cache = self._batch_cache = {}
                self._batch_cache_rules = len(index_)
            last_kind = None
            kind_cache: dict = {}
            for index in range(count):
                desc = descs[index]
                item = desc.item
                kind = desc.kind
                if kind is not last_kind:
                    kind_cache = cache.get(kind)
                    if kind_cache is None:
                        kind_cache = cache[kind] = {}
                    last_kind = kind
                name = item.name if item is not None else None
                bucket = kind_cache.get(name)
                if bucket is None:
                    bucket = kind_cache[name] = index_.candidates(desc)
                if not bucket:
                    continue
                n_candidates += len(bucket)
                for installed in bucket:
                    program = installed.program
                    if program is not None:
                        slots = program.match(desc)
                        if slots is None:
                            continue
                        lhs = program.lhs
                        if lhs is not None:
                            cstore = (
                                store
                                if san is None
                                else san.reader(
                                    site, installed.rule.name, store,
                                    self.sim.now,
                                )
                            )
                            try:
                                if not lhs(slots, cstore):
                                    continue
                            except (BindingError, TypeError):
                                continue
                        rule = installed.rule
                        n_fired += 1
                        fired_local[rule.name] = (
                            fired_local.get(rule.name, 0) + 1
                        )
                        trigger = batch.event_at(index)
                        rhs_site = installed.rhs_site
                        if rhs_site is None or rhs_site == site:
                            self._execute_compiled_rhs(
                                program, slots, trigger
                            )
                        else:
                            network.send(
                                site,
                                rhs_site,
                                FireMessage(
                                    rule, (), trigger,
                                    program=program, slots=tuple(slots),
                                ),
                            )
                        continue
                    bindings = installed.matcher(desc)
                    if bindings is None:
                        continue
                    rule = installed.rule
                    if not self._lhs_condition_holds(rule, bindings):
                        continue
                    n_fired += 1
                    fired_local[rule.name] = fired_local.get(rule.name, 0) + 1
                    trigger = batch.event_at(index)
                    rhs_site = installed.rhs_site
                    if rhs_site is None or rhs_site == site:
                        self._execute_rhs(rule, bindings, trigger)
                    else:
                        network.send(
                            site,
                            rhs_site,
                            FireMessage(
                                rule, tuple(bindings.items()), trigger
                            ),
                        )
        finally:
            # One flush per batch: the deferred counter deltas.
            self._m_events.value += count
            self._m_candidates.value += n_candidates
            self._m_fired.value += n_fired
            fired_by_rule = self._fired_by_rule
            for name, hits in fired_local.items():
                fired_by_rule[name].value += hits

    def batching_stats(self) -> dict:
        """Batch/shard dispatch counters for the run report.

        Empty when this shell never dispatched a batch and has no sharding
        configured, so unbatched runs' reports are unchanged.
        """
        batches = self._m_batches.value
        sharded = self._sharded
        if not batches and sharded is None:
            return {}
        stats: dict = {
            "batches_processed": batches,
            "batch_events": self._m_batch_events.value,
            "batch_size": self._batch_hist.summary(),
        }
        if sharded is not None:
            stats["shards"] = sharded.shards
            stats["threads"] = sharded.threads
            stats["workers"] = sharded.workers
            stats["executor"] = sharded.stats()["executor"]
            stats["events_by_shard"] = list(sharded.events_by_shard)
            stats["barrier_events"] = sharded.barrier_events
        else:
            stats["shards"] = 1
            stats["threads"] = False
            stats["workers"] = 0
            stats["executor"] = "serial"
            stats["events_by_shard"] = [self._m_batch_events.value]
            stats["barrier_events"] = 0
        return stats

    def _hoist_conditions(self, matches, count: int):
        """Phase A.5: pre-evaluate hoistable conditions for a whole batch.

        Certified safe by the parallel plan: a *hoistable* rule's condition
        reads nothing any local rule (transitively) writes, so evaluating
        it before the batch's RHS commits cannot change its verdict.  Only
        condition *evaluation* moves; RHS commits still run serially in
        batch order, so the trace is unchanged.  Returns
        ``{(event index, rule serial): verdict}`` for the hoisted hits, or
        ``None`` when the plan offers nothing to hoist.
        """
        plan = self.parallel_plan()
        if plan is None or not plan.hoistable:
            return None
        hoistable = plan.hoistable
        san = self._sanitizer
        store = self.store
        site = self.site
        verdicts: dict = {}
        hoisted = 0
        for index in range(count):
            hits = matches[index]
            if not hits:
                continue
            for installed, slots, bindings, cond in hits:
                if cond is not None:
                    continue  # already decided on a worker
                rule = installed.rule
                if rule.name not in hoistable:
                    continue
                program = installed.program
                if program is not None:
                    lhs = program.lhs
                    if lhs is None:
                        ok = True
                    else:
                        cstore = (
                            store
                            if san is None
                            else san.reader(site, rule.name, store, self.sim.now)
                        )
                        try:
                            ok = bool(lhs(slots, cstore))
                        except (BindingError, TypeError):
                            ok = False
                else:
                    ok = self._lhs_condition_holds(rule, bindings)
                verdicts[(index, installed.serial)] = ok
                hoisted += 1
        if hoisted:
            self._m_hoisted.value += hoisted
        return verdicts

    def _process_event(self, event: Event) -> None:
        self._m_events.value += 1
        obs = self.obs
        span = None
        if obs.enabled:
            if obs.flight is not None:
                # The ring-buffer fast path: one tuple append, the detail
                # (the event descriptor) stringified only if ever dumped.
                obs.flight.record(self.site, "event", self.sim.now, event.desc)
            if obs.tracer.enabled:
                span = obs.tracer.start(
                    "shell.process",
                    self.site,
                    self.sim.now,
                    kind=event.desc.kind.value,
                    event=str(event.desc),
                    seq=event.seq,
                )
                obs.tracer.push(span)
            if obs.sinks:
                obs.emit_event(event)
        try:
            self._dispatch(event)
        finally:
            if span is not None:
                obs.tracer.pop()
                obs.tracer.finish(span, self.sim.now)

    def _dispatch(self, event: Event) -> None:
        if self.obs.rule_profiling:
            return self._dispatch_profiled(event)
        desc = event.desc
        site = self.site
        store = self.store
        san = self._sanitizer
        m_candidates = self._m_candidates
        for installed in self._index.candidates(desc):
            m_candidates.value += 1
            program = installed.program
            if program is not None:
                # Compiled hot path: slot matcher -> fused binder/condition
                # closure -> compiled RHS plan.  No AST in sight.
                slots = program.match(desc)
                if slots is None:
                    continue
                lhs = program.lhs
                if lhs is not None:
                    cstore = (
                        store
                        if san is None
                        else san.reader(
                            site, installed.rule.name, store, self.sim.now
                        )
                    )
                    try:
                        if not lhs(slots, cstore):
                            continue
                    except (BindingError, TypeError):
                        # Unbindable condition (e.g. arithmetic over a cache
                        # that is still MISSING): not applicable yet.
                        continue
                rule = installed.rule
                self._m_fired.value += 1
                self._fired_by_rule[rule.name].value += 1
                rhs_site = installed.rhs_site
                if rhs_site is None or rhs_site == site:
                    self._execute_compiled_rhs(program, slots, event)
                else:
                    self.network.send(
                        site,
                        rhs_site,
                        FireMessage(
                            rule, (), event, program=program,
                            slots=tuple(slots),
                        ),
                    )
                continue
            # Interpreted reference path (compiled=False or compile fallback).
            bindings = installed.matcher(desc)
            if bindings is None:
                continue
            rule = installed.rule
            if not self._lhs_condition_holds(rule, bindings):
                continue
            self._m_fired.value += 1
            self._fired_by_rule[rule.name].value += 1
            rhs_site = installed.rhs_site
            if rhs_site is None or rhs_site == site:
                self._execute_rhs(rule, bindings, event)
            else:
                self.network.send(
                    site,
                    rhs_site,
                    FireMessage(rule, tuple(bindings.items()), event),
                )

    def _profile_for(self, rule_name: str) -> tuple:
        profile = self._profiles.get(rule_name)
        if profile is None:
            metrics = self.obs.metrics
            profile = (
                metrics.counter(
                    "rule_match_hits", site=self.site, rule=rule_name
                ),
                metrics.counter(
                    "rule_match_misses", site=self.site, rule=rule_name
                ),
                metrics.histogram(
                    "rule_exec_ns",
                    bounds=RULE_EXEC_NS_BOUNDS,
                    unit="ns",
                    site=self.site,
                    rule=rule_name,
                ),
            )
            self._profiles[rule_name] = profile
        return profile

    def _dispatch_profiled(self, event: Event) -> None:
        """The dispatch loop with per-rule profiling instruments.

        Semantically identical to :meth:`_dispatch`; kept separate so the
        unprofiled hot path pays exactly one extra attribute check.  A
        *miss* is a candidate the index nominated whose matcher or LHS
        condition rejected the event; execution time covers the RHS (or
        the cross-site fire send), measured in wall nanoseconds.
        """
        desc = event.desc
        site = self.site
        store = self.store
        san = self._sanitizer
        for installed in self._index.candidates(desc):
            self._m_candidates.value += 1
            rule = installed.rule
            hits, misses, exec_hist = self._profile_for(rule.name)
            program = installed.program
            if program is not None:
                slots = program.match(desc)
                if slots is None:
                    misses.value += 1
                    continue
                lhs = program.lhs
                if lhs is not None:
                    cstore = (
                        store
                        if san is None
                        else san.reader(site, rule.name, store, self.sim.now)
                    )
                    try:
                        if not lhs(slots, cstore):
                            misses.value += 1
                            continue
                    except (BindingError, TypeError):
                        misses.value += 1
                        continue
                hits.value += 1
                self._m_fired.value += 1
                self._fired_by_rule[rule.name].value += 1
                rhs_site = installed.rhs_site
                began = perf_counter_ns()
                if rhs_site is None or rhs_site == site:
                    self._execute_compiled_rhs(program, slots, event)
                else:
                    self.network.send(
                        site,
                        rhs_site,
                        FireMessage(
                            rule, (), event, program=program,
                            slots=tuple(slots),
                        ),
                    )
                exec_hist.observe(perf_counter_ns() - began)
                continue
            bindings = installed.matcher(desc)
            if bindings is None:
                misses.value += 1
                continue
            if not self._lhs_condition_holds(rule, bindings):
                misses.value += 1
                continue
            hits.value += 1
            self._m_fired.value += 1
            self._fired_by_rule[rule.name].value += 1
            rhs_site = installed.rhs_site
            began = perf_counter_ns()
            if rhs_site is None or rhs_site == site:
                self._execute_rhs(rule, bindings, event)
            else:
                self.network.send(
                    site,
                    rhs_site,
                    FireMessage(rule, tuple(bindings.items()), event),
                )
            exec_hist.observe(perf_counter_ns() - began)

    def _lhs_condition_holds(self, rule: Rule, bindings: Bindings) -> bool:
        san = self._sanitizer
        store = (
            self.store
            if san is None
            else san.reader(self.site, rule.name, self.store, self.sim.now)
        )
        try:
            for var, expr in rule.binders:
                bindings[var] = evaluate_value(expr, bindings, store)
            return evaluate(rule.condition, bindings, store)
        except (BindingError, TypeError):
            # An unbindable condition (e.g. arithmetic over a cache that is
            # still MISSING) means the rule is simply not applicable yet.
            return False

    # -- RHS execution -----------------------------------------------------------------

    def _on_message(self, message: Message) -> None:
        payload = message.payload
        san = self._sanitizer
        if san is not None and isinstance(payload, (FireMessage, WireFiring)):
            # Merge the sender's vector clock before any RHS runs here —
            # the FIFO channel makes receive order a happens-before witness.
            san.on_receive(self.site, message.src)
        if isinstance(payload, FireMessage):
            obs = self.obs
            span = None
            if obs.enabled:
                if obs.flight is not None:
                    obs.flight.record(
                        self.site, "fire", self.sim.now, payload.rule.name
                    )
                if obs.tracer.enabled:
                    # Parent is the in-flight net.send activation the
                    # network pushed (a local span, or a SpanContext
                    # resumed off a wire frame).
                    span = obs.tracer.start(
                        "shell.fire",
                        self.site,
                        self.sim.now,
                        rule=payload.rule.name,
                    )
                    obs.tracer.push(span)
            try:
                if payload.program is not None:
                    self._execute_compiled_rhs(
                        payload.program, list(payload.slots), payload.trigger
                    )
                else:
                    self._execute_rhs(
                        payload.rule, dict(payload.bindings), payload.trigger
                    )
            finally:
                if span is not None:
                    obs.tracer.pop()
                    obs.tracer.finish(span, self.sim.now)
        elif isinstance(payload, WireFiring):
            # A firing that crossed a by-value channel: resolve the rule
            # from local knowledge and run the locally compiled program.
            rule, program = self._resolve_firing(payload)
            obs = self.obs
            span = None
            if obs.enabled:
                if obs.flight is not None:
                    obs.flight.record(self.site, "fire", self.sim.now, rule.name)
                if obs.tracer.enabled:
                    span = obs.tracer.start(
                        "shell.fire", self.site, self.sim.now, rule=rule.name
                    )
                    obs.tracer.push(span)
            try:
                if payload.slots is not None:
                    if program is None:
                        raise ConfigurationError(
                            f"shell {self.site!r}: firing for rule "
                            f"{rule.name!r} carries compiled slots but the "
                            f"rule did not compile here — both sides of a "
                            f"channel must share the rule definition"
                        )
                    self._execute_compiled_rhs(
                        program, list(payload.slots), payload.trigger
                    )
                else:
                    self._execute_rhs(
                        rule, dict(payload.bindings or ()), payload.trigger
                    )
            finally:
                if span is not None:
                    obs.tracer.pop()
                    obs.tracer.finish(span, self.sim.now)
        elif isinstance(payload, FailureNotice):
            self._handle_failure(payload)
        else:
            raise ConfigurationError(
                f"shell {self.site!r} received unknown message {payload!r}"
            )

    def _execute_rhs(self, rule: Rule, bindings: Bindings, trigger: Event) -> None:
        san = self._sanitizer
        store = (
            self.store
            if san is None
            else san.reader(self.site, rule.name, self.store, self.sim.now)
        )
        for step in rule.steps:
            if step.template.kind is EventKind.FALSE:
                continue  # prohibitions are promises, not actions
            step_bindings = dict(bindings)
            step_bindings["now"] = self.sim.now + self.clock_skew
            try:
                applicable = evaluate(
                    step.condition, step_bindings, store
                )
            except (BindingError, TypeError):
                applicable = False  # unevaluable condition = not applicable
            if not applicable:
                continue
            self._emit(step.template, step_bindings, rule, trigger)

    def _execute_compiled_rhs(
        self, program, slots: list, trigger: Event
    ) -> None:
        """Run a compiled rule program's RHS plan.

        Semantically identical to :meth:`_execute_rhs` over the equivalent
        bindings dict, but flat: ``now`` is one slot store instead of a
        per-step dict copy, step conditions are pre-compiled closures, and
        each emission's item/value accessors were resolved at install time.
        """
        rule = program.rule
        slots[program.now_slot] = self.sim.now + self.clock_skew
        san = self._sanitizer
        store = (
            self.store
            if san is None
            else san.reader(self.site, rule.name, self.store, self.sim.now)
        )
        for step in program.steps:
            condition = step.condition
            if condition is not None:
                try:
                    if not condition(slots, store):
                        continue
                except (BindingError, TypeError):
                    continue  # unevaluable condition = not applicable
            kind = step.kind
            if kind is EventKind.WRITE_REQUEST:
                ref = step.make_ref(slots)
                if san is not None:
                    san.on_write(self.site, rule.name, ref, self.sim.now)
                self.translator_for(ref.name).request_write(
                    ref, step.make_value(slots), rule=rule, trigger=trigger
                )
            elif kind is EventKind.READ_REQUEST:
                if step.enumerating:
                    translator = self.translator_for(step.family)
                    for ref in translator.enumerate_refs(step.family):
                        if san is not None:
                            san.on_read(
                                self.site, rule.name, ref, self.sim.now
                            )
                        translator.request_read(ref, rule=rule, trigger=trigger)
                else:
                    ref = step.make_ref(slots)
                    if san is not None:
                        san.on_read(self.site, rule.name, ref, self.sim.now)
                    self.translator_for(ref.name).request_read(
                        ref, rule=rule, trigger=trigger
                    )
            else:  # EventKind.WRITE — the only other compiled emission
                ref = step.make_ref(slots)
                if ref.name in self.translators:
                    raise SpecError(
                        f"rule {rule.name!r} writes {ref.name!r} directly; "
                        f"database items need a WR (write request) event"
                    )
                if san is not None:
                    san.on_write(self.site, rule.name, ref, self.sim.now)
                event = self.store.write(
                    ref, step.make_value(slots), self.sim.now,
                    rule=rule, trigger=trigger,
                )
                self._chain_depth += 1
                try:
                    if self._chain_depth > self.MAX_CHAIN_DEPTH:
                        raise SpecError(
                            f"rule chaining exceeded depth "
                            f"{self.MAX_CHAIN_DEPTH} at {ref} "
                            f"(self-triggering rule set?)"
                        )
                    self._process_event(event)
                finally:
                    self._chain_depth -= 1

    def _emit(self, template, bindings: Bindings, rule: Rule, trigger: Event) -> None:
        kind = template.kind
        san = self._sanitizer
        if kind is EventKind.WRITE_REQUEST:
            ref = ground_item(template.item, bindings)
            value = _ground_value(template, bindings, index=0)
            if san is not None:
                san.on_write(self.site, rule.name, ref, self.sim.now)
            self.translator_for(ref.name).request_write(
                ref, value, rule=rule, trigger=trigger
            )
            return
        if kind is EventKind.READ_REQUEST:
            unbound = template.item.variables() - set(bindings)
            if unbound:
                translator = self.translator_for(template.item.name)
                for ref in translator.enumerate_refs(template.item.name):
                    if san is not None:
                        san.on_read(self.site, rule.name, ref, self.sim.now)
                    translator.request_read(ref, rule=rule, trigger=trigger)
                return
            ref = ground_item(template.item, bindings)
            if san is not None:
                san.on_read(self.site, rule.name, ref, self.sim.now)
            self.translator_for(ref.name).request_read(
                ref, rule=rule, trigger=trigger
            )
            return
        if kind is EventKind.WRITE:
            ref = ground_item(template.item, bindings)
            if ref.name in self.translators:
                raise SpecError(
                    f"rule {rule.name!r} writes {ref.name!r} directly; "
                    f"database items need a WR (write request) event"
                )
            value = _ground_value(template, bindings, index=0)
            if san is not None:
                san.on_write(self.site, rule.name, ref, self.sim.now)
            event = self.store.write(
                ref, value, self.sim.now, rule=rule, trigger=trigger
            )
            # Rule chaining: a generated write on private data is itself an
            # event other rules may trigger on (how the Section 7.1
            # arithmetic decomposition recomputes X from its caches).  Depth
            # is bounded to catch self-triggering rule sets.
            self._chain_depth += 1
            try:
                if self._chain_depth > self.MAX_CHAIN_DEPTH:
                    raise SpecError(
                        f"rule chaining exceeded depth "
                        f"{self.MAX_CHAIN_DEPTH} at {ref} (self-triggering "
                        f"rule set?)"
                    )
                self._process_event(event)
            finally:
                self._chain_depth -= 1
            return
        raise SpecError(
            f"rule {rule.name!r}: cannot generate a {kind.value} event"
        )

    # -- failure propagation ---------------------------------------------------------------

    def report_failure(self, notice: FailureNotice) -> None:
        """Record a locally detected failure and propagate it (Section 5)."""
        self._handle_failure(notice)
        for peer in self.peers:
            if peer != self.site:
                self.network.send(self.site, peer, notice)

    def _handle_failure(self, notice: FailureNotice) -> None:
        """The one intake for failure notices, local and remote alike.

        Both paths log the notice *and* invoke the ``on_failure`` listeners,
        so a guarantee-status board (or any other observer) attached at this
        shell sees peer failures, not just locally detected ones.  Only
        :meth:`report_failure` — the local detection path — forwards to
        peers, so a notice crosses the network once.
        """
        self._m_failures.value += 1
        self.obs.metrics.counter(
            "failure_notices",
            site=self.site,
            kind=getattr(notice.kind, "value", str(notice.kind)),
            recovered=str(notice.recovered).lower(),
        ).value += 1
        self.failure_log.append(notice)
        flight = self.obs.flight
        if flight is not None:
            flight.record(self.site, "failure", self.sim.now, notice)
            if not notice.recovered:
                # Freeze the rings: the last-N-digests context around the
                # incident.  The reason keys the dedup — one notice relayed
                # to every peer still produces exactly one dump.
                kind = getattr(notice.kind, "value", str(notice.kind))
                flight.dump(
                    f"failure:{notice.site}:{notice.source_name}:"
                    f"{kind}@{notice.time}",
                    self.sim.now,
                )
        for listener in self.on_failure:
            listener(notice)


class _RecordedBatch:
    """Adapter giving already-recorded events the shape the fused batch
    loop consumes (``descs`` + ``event_at``), mirroring
    :class:`~repro.core.trace.TraceBatch`."""

    __slots__ = ("descs", "_events")

    def __init__(self, events: list[Event]) -> None:
        self._events = events
        self.descs = [event.desc for event in events]

    def event_at(self, index: int) -> Event:
        return self._events[index]


def _ground_value(template, bindings: Bindings, index: int):
    from repro.core.terms import ground_term

    return ground_term(template.values[index], bindings)


class _PhasedTimer:
    """A daily-phase periodic timer: first fires at the next occurrence of
    ``phase`` ticks-past-midnight, then every ``period``."""

    def __init__(self, sim: Simulator, period: Ticks, phase: Ticks, callback):
        from repro.core.timebase import DAY

        self.sim = sim
        self.period = period
        self.callback = callback
        self._stopped = False
        self.fire_count = 0
        first = (sim.now // DAY) * DAY + phase
        while first <= sim.now:
            first += DAY
        self._pending = sim.at(first, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.fire_count += 1
        self._pending = self.sim.after(self.period, self._fire)
        self.callback()

    def stop(self) -> None:
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
