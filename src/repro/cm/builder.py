"""Fluent wiring for the ConstraintManager.

The classic wiring API is a multi-step imperative sequence — ``add_site``,
``add_source``, ``declare``, ``suggest``, ``install`` — that every scenario
re-implements.  The builders here collapse that into one chained expression:

    cm = ConstraintManager(Scenario(seed=7))
    (cm.site("san-francisco").source(branch, rid_a)
       .site("new-york").source(hq, rid_b)
       .constraint(CopyConstraint("salary1", "salary2", params=("n",)))
       .strategy("propagation"))

Every builder method returns a builder, and the chain can hop between sites
(:meth:`SiteBuilder.site`) and constraints (:meth:`SiteBuilder.constraint`)
freely; :attr:`manager` recovers the underlying
:class:`~repro.cm.manager.ConstraintManager` at any point.  Builders hold no
state of their own beyond the current site/constraint — everything is applied
to the manager immediately, so mixing fluent and classic calls is safe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.constraints import Constraint
from repro.core.catalog import Suggestion
from repro.core.errors import ConfigurationError, SpecError
from repro.core.events import EventKind
from repro.core.rules import Rule
from repro.core.timebase import Ticks
from repro.cm.rid import CMRID
from repro.cm.shell import CMShell
from repro.cm.translator import CMTranslator, ServiceModel
from repro.ris.base import RawInformationSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.cm.manager import ConstraintManager, InstalledConstraint


class SiteBuilder:
    """Wiring chained onto one site (create it via ``manager.site(name)``)."""

    def __init__(self, manager: "ConstraintManager", name: str):
        self.manager = manager
        self.name = name

    @property
    def shell(self) -> CMShell:
        """The underlying CM-Shell, for anything the builder doesn't cover."""
        return self.manager.shell(self.name)

    def source(
        self,
        source: RawInformationSource,
        rid: CMRID,
        service: ServiceModel | None = None,
        seed_existing: bool = True,
    ) -> "SiteBuilder":
        """Attach a raw source here via its standard CM-RID translator."""
        self.manager.add_source(
            self.name, source, rid, service, seed_existing=seed_existing
        )
        return self

    def translator(self, translator: CMTranslator) -> "SiteBuilder":
        """Attach a custom (hand-built) translator here.

        Registers the translator's item families at this site — the manual
        ``add_translator`` + ``locations.register`` steps the tutorial used
        to spell out.
        """
        self.shell.add_translator(translator)
        for family in translator.families():
            self.manager.locations.register(family, self.name)
        return self

    def private(self, *families: str) -> "SiteBuilder":
        """Declare shell-private item families living at this site."""
        for family in families:
            self.manager.locations.register(family, self.name)
        return self

    def rule(
        self,
        rule: Rule | str,
        rhs_site: Optional[str] = None,
        *,
        phase: Optional[Ticks] = None,
        name: Optional[str] = None,
    ) -> "SiteBuilder":
        """Install a hand-written strategy rule whose LHS is at this site.

        Accepts a :class:`~repro.core.rules.Rule` or rule-language text.
        ``rhs_site`` defaults to the registered location of the RHS families
        (falling back to this site for purely private right-hand sides);
        notify-triggered rules get their translator hook set up, matching
        what catalog installation does.
        """
        from repro.core.dsl import parse_rule

        if isinstance(rule, str):
            rule = parse_rule(rule, name=name)
        if rhs_site is None:
            try:
                rhs_site = rule.resolve_rhs_site(self.manager.locations)
            except (ConfigurationError, SpecError):
                rhs_site = self.name
        self.shell.install(rule, rhs_site, phase=phase)
        if rule.lhs.kind is EventKind.NOTIFY:
            family = rule.lhs.item_family
            if family is not None and family in self.shell.translators:
                self.shell.translator_for(family).setup_notify(family)
        return self

    def site(self, name: str) -> "SiteBuilder":
        """Hop to (or create) another site and keep chaining."""
        return self.manager.site(name)

    def constraint(self, constraint: Constraint) -> "ConstraintBuilder":
        """Start a declare-suggest-install chain for a constraint."""
        return self.manager.constraint(constraint)


class ConstraintBuilder:
    """Declare-suggest-install chained onto one constraint."""

    def __init__(self, manager: "ConstraintManager", constraint: Constraint):
        self.manager = manager
        self.constraint_obj = manager.declare(constraint)
        self.installed: Optional["InstalledConstraint"] = None

    def suggestions(self, **options: Any) -> list[Suggestion]:
        """The applicable proven strategies (escape hatch for inspection)."""
        return self.manager.suggest(self.constraint_obj, **options)

    def strategy(
        self,
        name: Optional[str] = None,
        *,
        native: Optional[dict[str, Any]] = None,
        **options: Any,
    ) -> "ConstraintBuilder":
        """Pick and install a proven strategy.

        ``name`` selects from the suggestion list by (sub)string match on the
        strategy name; omitted, the catalog's best suggestion wins.
        ``options`` go to the suggestion survey (``polling_period``,
        ``rule_delay``, ...); ``native`` holds keyword arguments for native
        protocol construction (e.g. the demarcation initial values).
        """
        suggestions = self.manager.suggest(self.constraint_obj, **options)
        if not suggestions:
            raise ConfigurationError(
                f"no applicable strategy for {self.constraint_obj}; "
                f"check the offered interfaces"
            )
        chosen = self._pick(suggestions, name)
        self.installed = self.manager.install(
            self.constraint_obj, chosen, **(native or {})
        )
        return self

    @staticmethod
    def _pick(suggestions: list[Suggestion], name: Optional[str]) -> Suggestion:
        if name is None:
            return suggestions[0]
        for suggestion in suggestions:
            if suggestion.strategy.name == name:
                return suggestion
        for suggestion in suggestions:
            if name in suggestion.strategy.name:
                return suggestion
        offered = ", ".join(s.strategy.name for s in suggestions)
        raise ConfigurationError(
            f"no suggested strategy matches {name!r}; offered: {offered}"
        )

    @property
    def guarantees(self) -> tuple:
        """The standing guarantees of the installed strategy."""
        if self.installed is None:
            raise ConfigurationError(
                "no strategy installed yet; call .strategy(...) first"
            )
        return self.installed.guarantees

    @property
    def native_protocol(self) -> Any:
        """The installed native protocol object, if the strategy has one."""
        if self.installed is None:
            raise ConfigurationError(
                "no strategy installed yet; call .strategy(...) first"
            )
        return self.installed.native_protocol

    def site(self, name: str) -> SiteBuilder:
        """Hop back to site wiring and keep chaining."""
        return self.manager.site(name)

    def constraint(self, constraint: Constraint) -> "ConstraintBuilder":
        """Chain straight into the next constraint."""
        return self.manager.constraint(constraint)
