"""E1 — Section 4.2: the notify→write propagation strategy.

Paper claim: "Given the interfaces and the strategy above, we can prove that
guarantees (1), (2) and (3) of Section 3.3.1 are all valid.  We can also
prove that the associated metric guarantee (4) is valid for an appropriate
κ."

The experiment runs the salary scenario under the propagation strategy for a
sweep of update rates, checks all four guarantees against the recorded
trace, validates the trace against the Appendix A properties, and reports
the measured worst-case propagation lag against the computed κ.
"""

from __future__ import annotations

from repro.core.timebase import seconds, to_seconds
from repro.core.trace import validate_trace
from repro.experiments.common import (
    ExperimentResult,
    RunConfig,
    attach_observability,
    build_salary_scenario,
    resolve_config,
)
from repro.workloads import PersonnelWorkload

CLAIM = (
    "under notify->write propagation, guarantees (1) follows, (2) leads, "
    "(3) strictly follows, and (4) metric follows are all valid"
)


def run(
    config: RunConfig | None = None,
    *,
    rates: tuple[float, ...] = (0.2, 1.0, 5.0),
    employee_count: int = 20,
    duration_seconds: float = 300.0,
    seed: int = 0,
) -> ExperimentResult:
    """Sweep the spontaneous-update rate; all guarantees must hold."""
    config = resolve_config(config)
    seed = config.resolve_seed(seed)
    employee_count = config.scaled(employee_count)
    result = ExperimentResult(
        experiment="E1 propagation (Section 4.2)",
        claim=CLAIM,
        headers=[
            "rate/s",
            "updates",
            "g1 follows",
            "g2 leads",
            "g3 strict",
            "g4 metric",
            "kappa_s",
            "max_lag_s",
            "trace_ok",
        ],
    )
    for rate in rates:
        salary = build_salary_scenario(
            strategy_kind="propagation", seed=seed,
            runtime=config.runtime_spec(),
        )
        workload = PersonnelWorkload(
            salary.cm,
            employee_count=employee_count,
            rate=rate,
            duration=seconds(duration_seconds),
        )
        salary.cm.run(until=seconds(duration_seconds + 60))
        reports = salary.cm.check_guarantees()
        by_kind = {name: rep for name, rep in reports.items()}
        follows = _report(by_kind, "follows(", metric=False)
        leads = _report(by_kind, "leads(")
        strict = _report(by_kind, "strictly_follows(")
        metric = _report(by_kind, "follows(", metric=True)
        kappa = _metric_kappa(by_kind)
        violations = validate_trace(
            salary.scenario.trace, list(salary.installed.strategy.rules)
        )
        row = [
            rate,
            workload.stream.stats.updates,
            follows.valid,
            leads.valid,
            strict.valid,
            metric.valid,
            kappa,
            metric.stats.get("max_lag_seconds", 0.0),
            not violations,
        ]
        result.rows.append(row)
        if not all(
            (follows.valid, leads.valid, strict.valid, metric.valid)
        ) or violations:
            result.claim_holds = False
    result.notes.append(
        "kappa computed by the catalog from the offered interface bounds; "
        "max_lag is the measured worst-case value lag, which must stay "
        "below kappa"
    )
    attach_observability(result, salary.cm)
    return result


def _report(reports: dict, prefix: str, metric: bool | None = None):
    for name, report in reports.items():
        if not name.startswith(prefix):
            continue
        is_metric = "κ=" in name
        if metric is None or metric == is_metric:
            return report
    raise KeyError(f"no report with prefix {prefix!r} (metric={metric})")


def _metric_kappa(reports: dict) -> float:
    for name in reports:
        if name.startswith("follows(") and "κ=" in name:
            return float(name.split("κ=")[1].rstrip("s)"))
    return 0.0


def main() -> None:
    """Print the experiment's result table."""
    print(run().render())


if __name__ == "__main__":
    main()


def build_for_lint():
    """CM-Lint hook: the wired configuration this experiment runs."""
    return build_salary_scenario(strategy_kind="propagation", seed=0).cm
