"""E8 — Section 5: failure handling.

Paper claims:

1. **Metric failure** (delay bounds violated, work still done): "the metric
   guarantees for that constraint are no longer valid.  However, the
   non-metric guarantees continue to be valid, which may allow many
   applications to continue to function."
2. **Logical failure** (interface statements broken): "both metric and
   non-metric guarantees involving the failed site are no longer valid until
   the system is reset."  Translators detect these from the source's error
   codes and shells propagate the invalidation.
3. **Silent failures**: a notify feed that drops messages with no observable
   error is *undetectable*; "if it is not possible to ensure that the
   probability of such undetectable failures is acceptably low, then a
   Notify Interface should not be used for this database."

The experiment runs the salary scenario four times — healthy, with an
injected metric overload, with a database crash, and with silent notify
loss — and reports, for each: what the status board believed, what the trace
checker actually found, and whether the failure was detected at all.  The
silent case is the one where belief and truth diverge.
"""

from __future__ import annotations

from repro.core.timebase import seconds
from repro.experiments.common import (
    ExperimentResult,
    RunConfig,
    attach_observability,
    build_salary_scenario,
    resolve_config,
)
from repro.sim.failures import FailureKind, FailurePlan, FailureWindow
from repro.workloads import UpdateStream
from repro.workloads.generators import random_walk

CLAIM = (
    "metric failures invalidate only metric guarantees; logical failures "
    "invalidate all guarantees until reset; silent notify loss is "
    "undetectable and breaks guarantees the board still believes"
)


def _run_case(
    case: str, seed: int, duration: float = 300.0, runtime="sim"
) -> tuple:
    failure_plan = FailurePlan()
    if case == "metric":
        failure_plan.add(
            FailureWindow(
                site="ny",
                kind=FailureKind.METRIC,
                start=seconds(100),
                end=seconds(160),
                slowdown=500.0,
            )
        )
    if case == "silent":
        failure_plan.add(
            FailureWindow(
                site="sf",
                kind=FailureKind.SILENT_NOTIFY_LOSS,
                start=seconds(100),
                end=seconds(160),
                drop_probability=1.0,
            )
        )
    salary = build_salary_scenario(
        strategy_kind="propagation",
        seed=seed,
        failure_plan=failure_plan,
        runtime=runtime,
    )
    if case == "logical":
        # The HQ database crashes (and later recovers); the CM detects this
        # from the UNAVAILABLE errors its write requests hit.
        salary.cm.scenario.sim.at(
            seconds(100), lambda: salary.hq_db.set_available(False)
        )
        salary.cm.scenario.sim.at(
            seconds(160), lambda: salary.hq_db.set_available(True)
        )
    UpdateStream(
        salary.cm,
        "salary1",
        [f"e{i}" for i in range(1, 6)],
        rate=0.5,
        duration=seconds(duration),
        value_model=random_walk(step=100.0, start=1000.0),
    )
    # Generous drain time: a metric failure *delays* work (the backlog the
    # 500x slowdown builds up is eventually served), and the Section 5 claim
    # is precisely that the delayed-but-performed writes still satisfy the
    # non-metric guarantees.
    salary.cm.run(until=seconds(duration + 900))

    board = salary.cm.board
    horizon = salary.scenario.trace.horizon
    board_metric_ok = True
    board_nonmetric_ok = True
    for guarantee in board.guarantees():
        ever_invalid = bool(board.invalid_intervals(guarantee, horizon))
        if guarantee.metric:
            board_metric_ok = board_metric_ok and not ever_invalid
        else:
            board_nonmetric_ok = board_nonmetric_ok and not ever_invalid

    reports = salary.cm.check_guarantees()
    empirical_metric_ok = all(
        r.valid for n, r in reports.items() if "κ=" in n
    )
    empirical_nonmetric_ok = all(
        r.valid for n, r in reports.items() if "κ=" not in n
    )
    outcome = {
        "case": case,
        "detected": len(board.notices) > 0,
        "board_metric_ok": board_metric_ok,
        "board_nonmetric_ok": board_nonmetric_ok,
        "empirical_metric_ok": empirical_metric_ok,
        "empirical_nonmetric_ok": empirical_nonmetric_ok,
    }
    return outcome, salary.cm


def run(
    config: RunConfig | None = None, *, seed: int = 7
) -> ExperimentResult:
    """Run the healthy/metric/logical/silent cases and assemble the matrix."""
    config = resolve_config(config)
    seed = config.resolve_seed(seed)
    result = ExperimentResult(
        experiment="E8 failure handling (Section 5)",
        claim=CLAIM,
        headers=[
            "case",
            "detected",
            "board metric ok",
            "board non-metric ok",
            "true metric ok",
            "true non-metric ok",
        ],
    )
    outcomes = {}
    for case in ("healthy", "metric", "logical", "silent"):
        outcome, case_cm = _run_case(case, seed, runtime=config.runtime_spec())
        outcomes[case] = outcome
        result.rows.append(
            [
                outcome["case"],
                outcome["detected"],
                outcome["board_metric_ok"],
                outcome["board_nonmetric_ok"],
                outcome["empirical_metric_ok"],
                outcome["empirical_nonmetric_ok"],
            ]
        )

    healthy = outcomes["healthy"]
    if not (
        healthy["board_metric_ok"]
        and healthy["empirical_metric_ok"]
        and healthy["empirical_nonmetric_ok"]
        and not healthy["detected"]
    ):
        result.claim_holds = False
        result.notes.append("the healthy baseline was not clean")

    metric = outcomes["metric"]
    if not (
        metric["detected"]
        and not metric["board_metric_ok"]
        and metric["board_nonmetric_ok"]
        and not metric["empirical_metric_ok"]
        and metric["empirical_nonmetric_ok"]
    ):
        result.claim_holds = False
        result.notes.append(
            "metric failure did not behave per Section 5 "
            f"(outcome: {metric})"
        )

    logical = outcomes["logical"]
    if not (
        logical["detected"]
        and not logical["board_metric_ok"]
        and not logical["board_nonmetric_ok"]
        and not logical["empirical_nonmetric_ok"]
    ):
        result.claim_holds = False
        result.notes.append(
            "logical failure did not behave per Section 5 "
            f"(outcome: {logical})"
        )

    silent = outcomes["silent"]
    if not (
        not silent["detected"]
        and silent["board_nonmetric_ok"]
        and not silent["empirical_nonmetric_ok"]
    ):
        result.claim_holds = False
        result.notes.append(
            "silent notify loss should be undetected yet harmful "
            f"(outcome: {silent})"
        )
    result.notes.append(
        "the silent row is the paper's warning: the board still believes "
        "the guarantees while the trace shows missed values"
    )
    attach_observability(result, case_cm)
    return result


def main() -> None:
    """Print the experiment's result table."""
    print(run().render())


if __name__ == "__main__":
    main()


def build_for_lint():
    """CM-Lint hook: the baseline wiring (failure plans are runtime-only,
    so the no-failure configuration is the statically relevant one)."""
    return build_salary_scenario(strategy_kind="propagation", seed=7).cm
