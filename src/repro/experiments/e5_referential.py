"""E5 — Section 6.2: weakened referential integrity.

Paper claim: with the strategy "at the end of each working day, the CM
deletes all project records from the projects database that do not have a
corresponding salary record", the weakened guarantee holds: "the referential
integrity constraint may be violated for any one employee ID for a period of
at most 24 hours".

The experiment churns project records (some created orphaned, some orphaned
later by salary-record deletions) across several simulated days with a
nightly cleanup, then measures every violation window.  Shape: violations
*do* occur (the constraint is weakened, not strict) but no window exceeds
the grace period.
"""

from __future__ import annotations

from repro.cm import CMRID, ConstraintManager, Scenario
from repro.constraints import ReferentialConstraint
from repro.core.interfaces import InterfaceKind
from repro.core.timebase import DAY, clock_time, days, hours, seconds, to_seconds
from repro.experiments.common import (
    ExperimentResult,
    RunConfig,
    attach_observability,
    resolve_config,
)
from repro.ris.relational import RelationalDatabase
from repro.runtime.api import RuntimeSpec

CLAIM = (
    "orphaned project records exist transiently but never for longer than "
    "the 24-hour grace window, thanks to the nightly cleanup"
)


def build_referential_cm(
    seed: int, runtime: RuntimeSpec = "sim"
) -> ConstraintManager:
    """Two relational sites with the project->salary referential constraint."""
    scenario = Scenario(seed=seed, runtime=runtime)
    cm = ConstraintManager(scenario)
    cm.add_site("projects-site")
    cm.add_site("payroll-site")

    projects_db = RelationalDatabase("projects")
    projects_db.execute(
        "CREATE TABLE assignments (empid TEXT PRIMARY KEY, project TEXT)"
    )
    rid_projects = (
        CMRID("relational", "projects")
        .bind(
            "project",
            params=("i",),
            table="assignments",
            key_column="empid",
            value_column="project",
        )
        .offer("project", InterfaceKind.READ, bound_seconds=1.0)
        .offer("project", InterfaceKind.WRITE, bound_seconds=1.0)
    )
    cm.add_source("projects-site", projects_db, rid_projects)

    payroll_db = RelationalDatabase("payroll")
    payroll_db.execute(
        "CREATE TABLE salaries (empid TEXT PRIMARY KEY, amount REAL)"
    )
    rid_payroll = CMRID("relational", "payroll").bind(
        "salaryrec",
        params=("i",),
        table="salaries",
        key_column="empid",
        value_column="amount",
    ).offer("salaryrec", InterfaceKind.READ, bound_seconds=1.0)
    cm.add_source("payroll-site", payroll_db, rid_payroll)

    constraint = cm.declare(
        ReferentialConstraint("project", "salaryrec", grace=days(1))
    )
    suggestions = cm.suggest(constraint, cleanup_fire_at=clock_time(23, 0))
    cm.install(constraint, suggestions[0])
    return cm


def run(
    config: RunConfig | None = None,
    *,
    simulated_days: int = 4,
    employees_per_day: int = 12,
    orphan_fraction: float = 0.3,
    seed: int = 4,
) -> ExperimentResult:
    """Churn records for several days; measure every violation window."""
    config = resolve_config(config)
    seed = config.resolve_seed(seed)
    employees_per_day = config.scaled(employees_per_day)
    result = ExperimentResult(
        experiment="E5 referential integrity (Section 6.2)",
        claim=CLAIM,
        headers=[
            "employees",
            "orphans_created",
            "salary_deletions",
            "guarantee",
            "max_window_h",
            "grace_h",
        ],
    )
    cm = build_referential_cm(seed, runtime=config.runtime_spec())
    rng = cm.scenario.rngs.stream("referential-workload")
    orphans_created = 0
    salary_deletions = 0
    counter = 0
    horizon = simulated_days * DAY
    for day in range(simulated_days):
        for __ in range(employees_per_day):
            counter += 1
            empid = f"emp{counter:04d}"
            at = day * DAY + clock_time(9) + round(
                rng.uniform(0, 8 * 3600)
            ) * 1_000_000
            if rng.random() < orphan_fraction:
                # A project record with no salary record: a violation the
                # nightly cleanup must bound.
                orphans_created += 1
                cm.scenario.sim.at(
                    at,
                    lambda e=empid: cm.spontaneous_write(
                        "project", (e,), "skunkworks"
                    ),
                )
            else:
                cm.scenario.sim.at(
                    at,
                    lambda e=empid: cm.spontaneous_write(
                        "salaryrec", (e,), 90_000.0
                    ),
                )
                cm.scenario.sim.at(
                    at + seconds(60),
                    lambda e=empid: cm.spontaneous_write(
                        "project", (e,), "mainline"
                    ),
                )
                if rng.random() < 0.25:
                    # The employee leaves: payroll deletes the salary record
                    # during a later business day, orphaning the project.
                    salary_deletions += 1
                    leave_at = at + days(1) + round(
                        rng.uniform(0, 6 * 3600)
                    ) * 1_000_000
                    if leave_at < horizon:
                        cm.scenario.sim.at(
                            leave_at,
                            lambda e=empid: cm.spontaneous_delete(
                                "salaryrec", (e,)
                            ),
                        )
    cm.run(until=horizon)
    reports = cm.check_guarantees()
    report = next(iter(reports.values()))
    max_window_h = report.stats["max_violation_window_seconds"] / 3600.0
    grace_h = 24.5  # catalog adds a 30-minute cleanup-run margin
    result.rows.append(
        [
            counter,
            orphans_created,
            salary_deletions,
            report.valid,
            max_window_h,
            grace_h,
        ]
    )
    if not report.valid:
        result.claim_holds = False
        result.notes.extend(report.counterexamples[:3])
    if max_window_h == 0.0:
        result.claim_holds = False
        result.notes.append(
            "no violation window ever opened; the weakening is untested"
        )
    attach_observability(result, cm)
    return result


def main() -> None:
    """Print the experiment's result table."""
    print(run().render())


if __name__ == "__main__":
    main()


def build_for_lint():
    """CM-Lint hook: the referential-integrity configuration."""
    return build_referential_cm(seed=4)
