"""Ablations of the design choices the paper calls out.

1. **In-order message processing** (Appendix A property 7).  The paper notes
   that the requirement for in-order processing was *discovered* while
   proving the "Y strictly follows X" guarantee.  The ablation disables the
   network's per-channel FIFO and shows guarantee (3) — and the
   path-plotting application built on it — breaking, while guarantee (1)
   survives (it never cared about order).

2. **Trigger-echo suppression.**  Translators do not report CM-originated
   writes through notify interfaces (``Ws -> N`` covers spontaneous writes
   only).  Disabling the suppression on a two-way copy pair would ping-pong
   writes forever; here we measure the echo volume a *one-way* pair would
   needlessly emit.
"""

from __future__ import annotations

from repro.apps import PlotterApp
from repro.core.items import DataItemRef
from repro.core.timebase import seconds
from repro.experiments.common import (
    ExperimentResult,
    RunConfig,
    attach_observability,
    build_salary_scenario,
    resolve_config,
)
from repro.sim.network import UniformLatency
from repro.workloads import UpdateStream


CLAIM = (
    "with FIFO channels disabled, guarantee (3) 'Y strictly follows X' "
    "breaks (and the plotter draws out-of-order paths) while guarantee (1) "
    "still holds — confirming why the formalism demands in-order processing"
)


def run_in_order_ablation(
    config: RunConfig | None = None,
    *,
    seed: int = 10,
    updates: int = 300,
    duration: float = 150.0,
) -> ExperimentResult:
    """Run the propagation scenario with and without FIFO channels."""
    config = resolve_config(config)
    seed = config.resolve_seed(seed)
    updates = config.scaled(updates)
    result = ExperimentResult(
        experiment="Ablation: in-order delivery (Appendix A property 7)",
        claim=CLAIM,
        headers=[
            "channels",
            "g1 follows",
            "g3 strict",
            "plot points",
            "out_of_order_pairs",
        ],
    )
    outcomes = {}
    for in_order in (True, False):
        salary = build_salary_scenario(
            strategy_kind="propagation",
            seed=seed,
            in_order=in_order,
            # High jitter relative to the update gap makes overtaking likely
            # once the FIFO clamp is gone.
            latency=UniformLatency(seconds(0.01), seconds(2.0)),
            runtime=config.runtime_spec(),
        )

        counter = iter(range(1, updates + 1))

        def next_position(stream, key):
            return float(next(counter))

        UpdateStream(
            salary.cm,
            "salary1",
            ["robot"],
            rate=updates / duration,
            duration=seconds(duration),
            value_model=next_position,
        )
        salary.cm.run(until=seconds(duration + 30))
        reports = salary.cm.check_guarantees()
        follows_ok = next(
            r.valid
            for n, r in reports.items()
            if n.startswith("follows(") and "κ=" not in n
        )
        strict_ok = next(
            r.valid
            for n, r in reports.items()
            if n.startswith("strictly_follows(")
        )
        plotter = PlotterApp(
            salary.cm,
            DataItemRef("salary1", ("robot",)),
            DataItemRef("salary2", ("robot",)),
        )
        audit = plotter.audit()
        outcomes[in_order] = (follows_ok, strict_ok, audit)
        result.rows.append(
            [
                "fifo" if in_order else "free-for-all",
                follows_ok,
                strict_ok,
                audit.points_plotted,
                len(audit.out_of_order_pairs),
            ]
        )
    fifo_follows, fifo_strict, fifo_audit = outcomes[True]
    free_follows, free_strict, free_audit = outcomes[False]
    if not (fifo_follows and fifo_strict and fifo_audit.ordered):
        result.claim_holds = False
        result.notes.append("FIFO channels did not preserve guarantee (3)")
    if free_strict or free_audit.ordered:
        result.claim_holds = False
        result.notes.append(
            "removing FIFO did not break guarantee (3); raise latency jitter"
        )
    if not free_follows:
        result.claim_holds = False
        result.notes.append(
            "guarantee (1) broke without FIFO; it should be order-insensitive"
        )
    attach_observability(result, salary.cm)
    return result


ECHO_CLAIM = (
    "without translator echo suppression every CM write would come back as "
    "a notification — pure overhead on a one-way pair and a feedback loop "
    "on a two-way one"
)


def run_echo_ablation(
    config: RunConfig | None = None,
    *,
    seed: int = 11,
    duration: float = 120.0,
) -> ExperimentResult:
    """Measure notify traffic with echo suppression on and off."""
    config = resolve_config(config)
    seed = config.resolve_seed(seed)
    result = ExperimentResult(
        experiment="Ablation: trigger-echo suppression",
        claim=ECHO_CLAIM,
        headers=["suppression", "notifications", "write_requests"],
    )
    from repro.core.events import EventKind

    counts = {}
    for suppress in (True, False):
        salary = build_salary_scenario(
            strategy_kind="propagation", seed=seed,
            runtime=config.runtime_spec(),
        )
        if not suppress:
            translator = salary.cm.shell("ny").translator_for("salary2")
            # Expose the echo: pretend every native write is spontaneous by
            # pinning the marker event (what a naive translator would do).
            original = translator._native_write

            def leaky_write(ref, value, _original=original, _t=translator):
                marker = _t._current_spontaneous
                if marker is None:
                    _t._current_spontaneous = object()  # fake Ws marker
                try:
                    _original(ref, value)
                finally:
                    _t._current_spontaneous = marker

            translator._native_write = leaky_write  # type: ignore[method-assign]
            # The echo needs a notify hook on the destination to fire at all.
            translator.rid.offer(
                "salary2", __import__(
                    "repro.core.interfaces", fromlist=["InterfaceKind"]
                ).InterfaceKind.NOTIFY, bound_seconds=2.0,
            )
            translator._interfaces = None
            translator.setup_notify("salary2")
        UpdateStream(
            salary.cm,
            "salary1",
            ["e1"],
            rate=0.5,
            duration=seconds(duration),
        )
        salary.cm.run(until=seconds(duration + 30))
        trace = salary.scenario.trace
        notifications = sum(
            1 for e in trace.events if e.desc.kind is EventKind.NOTIFY
        )
        write_requests = sum(
            1 for e in trace.events if e.desc.kind is EventKind.WRITE_REQUEST
        )
        counts[suppress] = notifications
        result.rows.append(
            ["on" if suppress else "off", notifications, write_requests]
        )
    if counts[False] <= counts[True]:
        result.claim_holds = False
        result.notes.append("disabling suppression produced no echo traffic")
    attach_observability(result, salary.cm)
    return result


SKEW_CLAIM = (
    "a shell clock running behind stamps Tb too early, making the monitor "
    "guarantee unsound once the skew exceeds the kappa margin — time-"
    "referencing guarantees must absorb clock skew (Section 7.2)"
)


def run_clock_skew_ablation(
    config: RunConfig | None = None,
    *,
    skews_seconds: tuple[float, ...] = (0.0, -1.0, -10.0),
    seed: int = 12,
) -> ExperimentResult:
    """Sweep (negative) clock skew at the monitoring shell.

    Positive skew is conservative (Tb stamped late shrinks the claimed
    interval); *negative* skew — the local clock behind true time — extends
    claims backwards over time before the agreement began, which only the
    kappa margin can absorb.
    """
    from repro.core.guarantees.monitor import MonitorGuarantee
    from repro.core.items import DataItemRef
    from repro.core.timebase import to_seconds
    from repro.experiments.e6_monitor import build_monitor_cm

    config = resolve_config(config)
    seed = config.resolve_seed(seed)
    result = ExperimentResult(
        experiment="Ablation: clock skew (Section 7.2)",
        claim=SKEW_CLAIM,
        headers=[
            "skew_s",
            "kappa_s",
            "sound at kappa",
            "start_margin_s",
            "sound with margin",
        ],
    )
    outcomes = {}
    for skew_s in skews_seconds:
        cm, installed, catalog_kappa = build_monitor_cm(
            seed, runtime=config.runtime_spec()
        )
        cm.shell("site-y").clock_skew = seconds(skew_s)
        rng = cm.scenario.rngs.stream("skew-workload")
        time = 5.0
        for index in range(50):
            value = float(index)
            cm.scenario.sim.at(
                seconds(time),
                lambda v=value: cm.spontaneous_write("X", (), v),
            )
            lag = rng.uniform(8.0, 15.0) if index % 5 == 0 else 0.5
            cm.scenario.sim.at(
                seconds(time + lag),
                lambda v=value: cm.spontaneous_write("Y", (), v),
            )
            time += rng.expovariate(0.1)
        cm.run(until=seconds(time + 60))
        strategy = installed.strategy
        flag = DataItemRef(strategy.metadata["flag_family"])
        tb = DataItemRef(strategy.metadata["tb_family"])
        at_kappa = MonitorGuarantee(
            DataItemRef("X"), DataItemRef("Y"), flag, tb,
            seconds(catalog_kappa),
        ).check(cm.scenario.trace)
        # The paper's remedy: an error margin *in the interval* — here on
        # its start, since a behind-running clock stamps Tb too early.
        widened = MonitorGuarantee(
            DataItemRef("X"), DataItemRef("Y"), flag, tb,
            seconds(catalog_kappa),
            start_margin=seconds(abs(skew_s)),
        ).check(cm.scenario.trace)
        outcomes[skew_s] = (at_kappa.valid, widened.valid)
        result.rows.append(
            [
                skew_s,
                catalog_kappa,
                at_kappa.valid,
                abs(skew_s),
                widened.valid,
            ]
        )
    if not outcomes[0.0][0]:
        result.claim_holds = False
        result.notes.append("the zero-skew baseline was already unsound")
    worst = min(skews_seconds)
    if outcomes[worst][0]:
        result.claim_holds = False
        result.notes.append(
            f"skew {worst}s did not break the unwidened guarantee; "
            f"increase the skew relative to kappa"
        )
    if not all(widened for __, widened in outcomes.values()):
        result.claim_holds = False
        result.notes.append(
            "a start margin of |skew| did not restore soundness"
        )
    attach_observability(result, cm)
    return result


def main() -> None:
    print(run_in_order_ablation().render())
    print()
    print(run_echo_ablation().render())
    print()
    print(run_clock_skew_ablation().render())


if __name__ == "__main__":
    main()


#: The out-of-order ablation deliberately runs the catalog's propagation
#: strategy over a channel whose jitter (up to 2s) exceeds the latency
#: headroom its κ assumes — CM-Lint correctly flags the metric guarantee
#: as statically infeasible (CM601), which is the very effect the ablation
#: measures.  Keep the finding visible but allowlisted.
LINT_SUPPRESS = ("CM601",)


def build_for_lint():
    """CM-Lint hook: the baseline wiring plus the out-of-order variant."""
    return [
        build_salary_scenario(strategy_kind="propagation", seed=10).cm,
        build_salary_scenario(
            strategy_kind="propagation",
            seed=10,
            in_order=False,
            latency=UniformLatency(seconds(0.01), seconds(2.0)),
        ).cm,
    ]
