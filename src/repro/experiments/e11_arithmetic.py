"""E11 — Section 7.1: decomposing complex constraints into copies.

Paper claim: "consider the constraint X = Y + Z, where X, Y, and Z are at
three different sites.  A common way to manage this constraint is to have
cached copies Yc and Zc of Y and Z, respectively, at the site where X is.
Hence, we would have the constraints X = Yc + Zc, Yc = Y and Zc = Z.  Only
the simple copy constraints are distributed and they can be handled by the
strategies of Section 3.3.1."

The experiment builds the three-site federation, manages ``X = Y + Z`` with
the decomposition under both transports (notify-based caches vs. polled
caches), and reports: whether the issued guarantees hold, how stale X gets
relative to the true remote sum (the decomposition's documented weakening),
and the message cost.  Shape: both transports keep their guarantees;
notify-based caches track the true sum far more tightly and, at comparable
staleness, more cheaply than fast polling.
"""

from __future__ import annotations

from repro.cm import CMRID, ConstraintManager, Scenario
from repro.constraints import ArithmeticConstraint
from repro.core.guarantees.arithmetic import sum_timeline
from repro.core.interfaces import InterfaceKind
from repro.core.items import MISSING, DataItemRef
from repro.core.timebase import Ticks, seconds, to_seconds
from repro.experiments.common import (
    ExperimentResult,
    RunConfig,
    attach_observability,
    resolve_config,
)
from repro.ris.relational import RelationalDatabase
from repro.runtime.api import RuntimeSpec

CLAIM = (
    "X = Y + Z is managed by distributed copies plus a local recompute; "
    "all issued guarantees hold under both cache transports, and notify-"
    "based caches keep X fresher than polled ones"
)


def build_arithmetic_cm(
    seed: int, transport: str, period_s: float, runtime: RuntimeSpec = "sim"
):
    """Three sites holding X, Y, Z with the decomposition installed."""
    scenario = Scenario(seed=seed, runtime=runtime)
    cm = ConstraintManager(scenario)
    databases = {}
    for site, family in (("sx", "X"), ("sy", "Y"), ("sz", "Z")):
        cm.add_site(site)
        db = RelationalDatabase(f"db-{site}")
        db.execute("CREATE TABLE c (k TEXT PRIMARY KEY, v REAL)")
        databases[family] = db
        rid = CMRID("relational", f"db-{site}").bind(
            family, table="c", key_column="k", value_column="v", key=family
        )
        if family == "X":
            rid.offer(family, InterfaceKind.WRITE, bound_seconds=1.0)
            rid.offer(family, InterfaceKind.READ, bound_seconds=1.0)
        elif transport == "notify":
            rid.offer(family, InterfaceKind.NOTIFY, bound_seconds=1.0)
        else:
            rid.offer(family, InterfaceKind.READ, bound_seconds=1.0)
        cm.add_source(site, db, rid)
    constraint = cm.declare(ArithmeticConstraint("X", ("Y", "Z")))
    suggestions = cm.suggest(
        constraint,
        rule_delay=seconds(0.5),
        polling_period=seconds(period_s),
    )
    assert len(suggestions) == 1
    installed = cm.install(constraint, suggestions[0])
    return cm, databases, installed


def measure_staleness(cm: ConstraintManager) -> float:
    """Fraction of time X differs from the true remote sum Y + Z."""
    trace = cm.scenario.trace
    x_ref = DataItemRef("X")
    true_sum = sum_timeline(trace, [DataItemRef("Y"), DataItemRef("Z")])
    x_timeline = trace.timeline(x_ref)
    points: set[Ticks] = set()
    for timeline in (true_sum, x_timeline):
        for time, __ in timeline.change_points():
            points.add(time)
    ordered = sorted(points)
    stale: Ticks = 0
    measured: Ticks = 0
    for index, start in enumerate(ordered):
        end = ordered[index + 1] if index + 1 < len(ordered) else trace.horizon
        if end <= start:
            continue
        expected = true_sum.value_at(start)
        actual = x_timeline.value_at(start)
        if expected is MISSING:
            continue
        measured += end - start
        if actual != expected:
            stale += end - start
    return stale / max(1, measured)


def run(
    config: RunConfig | None = None,
    *,
    update_count: int = 60,
    mean_gap_seconds: float = 8.0,
    polling_period_seconds: float = 5.0,
    seed: int = 11,
) -> ExperimentResult:
    """Run both cache transports; report guarantee verdicts and staleness."""
    config = resolve_config(config)
    seed = config.resolve_seed(seed)
    update_count = config.scaled(update_count)
    result = ExperimentResult(
        experiment="E11 arithmetic decomposition (Section 7.1)",
        claim=CLAIM,
        headers=[
            "transport",
            "updates",
            "guarantees",
            "all valid",
            "stale_frac",
            "messages",
        ],
    )
    staleness: dict[str, float] = {}
    for transport in ("notify", "poll"):
        cm, databases, installed = build_arithmetic_cm(
            seed, transport, polling_period_seconds,
            runtime=config.runtime_spec(),
        )
        rng = cm.scenario.rngs.stream("e11-workload")
        time = 5.0
        for __ in range(update_count):
            family = rng.choice(["Y", "Z"])
            value = float(rng.randint(0, 50))
            cm.scenario.sim.at(
                seconds(time),
                lambda f=family, v=value: cm.spontaneous_write(f, (), v),
            )
            time += rng.expovariate(1.0 / mean_gap_seconds)
        cm.run(until=seconds(time + 60))
        reports = cm.check_guarantees()
        all_valid = all(r.valid for r in reports.values())
        stale = measure_staleness(cm)
        staleness[transport] = stale
        result.rows.append(
            [
                transport,
                update_count,
                len(reports),
                all_valid,
                stale,
                cm.scenario.network.messages_sent,
            ]
        )
        if not all_valid:
            result.claim_holds = False
            for name, report in reports.items():
                if not report.valid:
                    result.notes.append(
                        f"{transport}: {name} violated: "
                        + "; ".join(report.counterexamples[:2])
                    )
    if staleness["notify"] >= staleness["poll"]:
        result.claim_holds = False
        result.notes.append(
            "notify-based caches were not fresher than polled ones"
        )
    result.notes.append(
        "stale_frac = fraction of time X differs from the true remote "
        "Y + Z; nonzero by design (the enforced constraint is the local "
        "X = Yc + Zc, the paper's weakening)"
    )
    attach_observability(result, cm)
    return result


def main() -> None:
    """Print the experiment's result table."""
    print(run().render())


if __name__ == "__main__":
    main()


def build_for_lint():
    """CM-Lint hook: both cache transports."""
    return [
        build_arithmetic_cm(11, transport, 5.0)[0]
        for transport in ("notify", "poll")
    ]
