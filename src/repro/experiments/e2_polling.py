"""E2 — Section 4.2.3: the polling strategy after the interface change.

Paper claim: "Guarantees (1), (3) and (4) from Section 3.3.1 are valid in
this scenario, while guarantee (2) is not...  it is possible for us to
'miss' updates when two or more updates to salary1(n) occur in the same
polling interval."

The experiment drives a single employee with Poisson updates, sweeps the
polling period against the mean inter-update time, and reports (a) the
guarantee verdicts and (b) the missed-value fraction.  The shape to
reproduce: guarantee (2) fails whenever the update rate makes same-interval
collisions likely, and the missed fraction grows with period x rate; with
periods far below the inter-update time misses (and hence violations)
disappear.
"""

from __future__ import annotations

from repro.core.guarantees import leads
from repro.core.timebase import seconds, to_seconds
from repro.experiments.common import (
    ExperimentResult,
    RunConfig,
    attach_observability,
    build_salary_scenario,
    resolve_config,
)
from repro.workloads import UpdateStream
from repro.workloads.generators import random_walk

CLAIM = (
    "under polling, guarantees (1)(3)(4) stay valid but guarantee (2) "
    "fails once two updates can share a polling interval; the missed-value "
    "fraction grows with polling period"
)


def run(
    config: RunConfig | None = None,
    *,
    periods: tuple[float, ...] = (1.0, 5.0, 20.0, 60.0),
    mean_inter_update: float = 10.0,
    duration_seconds: float = 1200.0,
    seed: int = 1,
) -> ExperimentResult:
    """Sweep polling periods; report guarantee verdicts and missed fractions."""
    config = resolve_config(config)
    seed = config.resolve_seed(seed)
    result = ExperimentResult(
        experiment="E2 polling (Section 4.2.3)",
        claim=CLAIM,
        headers=[
            "period_s",
            "updates",
            "g1 follows",
            "g2 leads",
            "g3 strict",
            "g4 metric",
            "missed",
            "missed_frac",
        ],
    )
    missed_fractions: list[tuple[float, float]] = []
    for period in periods:
        salary = build_salary_scenario(
            strategy_kind="polling",
            seed=seed,
            polling_period=period,
            runtime=config.runtime_spec(),
        )
        stream = UpdateStream(
            salary.cm,
            "salary1",
            ["e001"],
            rate=1.0 / mean_inter_update,
            duration=seconds(duration_seconds),
            value_model=random_walk(step=500.0, start=100_000.0),
        )
        salary.cm.run(until=seconds(duration_seconds + 3 * period + 30))
        reports = salary.cm.check_guarantees()
        follows_report = _get(reports, "follows(", metric=False)
        strict_report = _get(reports, "strictly_follows(")
        metric_report = _get(reports, "follows(", metric=True)
        # Guarantee (2) is not offered by the catalog under polling; check
        # it anyway to demonstrate *why* it is not offered.
        kappa = 3 * period + 30
        leads_report = leads(
            "salary1", "salary2", horizon_slack_seconds=kappa
        ).check(salary.scenario.trace)
        missed = leads_report.stats.get("values_missed", 0)
        taken = max(1, leads_report.stats.get("values_taken", 1))
        fraction = missed / taken
        missed_fractions.append((period, fraction))
        result.rows.append(
            [
                period,
                stream.stats.updates,
                follows_report.valid,
                leads_report.valid,
                strict_report.valid,
                metric_report.valid,
                missed,
                fraction,
            ]
        )
        if not (
            follows_report.valid
            and strict_report.valid
            and metric_report.valid
        ):
            result.claim_holds = False
            result.notes.append(
                f"period {period}: a guarantee the paper says survives "
                f"polling was violated"
            )
    # Shape checks: misses are monotone-ish in the period, absent for tiny
    # periods, present for large ones.
    fractions = dict(missed_fractions)
    smallest, largest = min(fractions), max(fractions)
    if fractions[largest] <= fractions[smallest]:
        result.claim_holds = False
        result.notes.append(
            "missed fraction did not grow with the polling period"
        )
    if fractions[largest] == 0.0:
        result.claim_holds = False
        result.notes.append("slow polling missed nothing; claim untestable")
    result.notes.append(
        f"mean inter-update time {mean_inter_update:g}s; the crossover "
        f"sits where the period reaches the inter-update time"
    )
    attach_observability(result, salary.cm)
    return result


def _get(reports: dict, prefix: str, metric: bool | None = None):
    for name, report in reports.items():
        if not name.startswith(prefix):
            continue
        is_metric = "κ=" in name
        if metric is None or metric == is_metric:
            return report
    raise KeyError(f"no report with prefix {prefix!r}")


def main() -> None:
    """Print the experiment's result table."""
    print(run().render())


if __name__ == "__main__":
    main()


def build_for_lint():
    """CM-Lint hook: the polling configuration at the default period."""
    return build_salary_scenario(strategy_kind="polling", seed=1).cm
