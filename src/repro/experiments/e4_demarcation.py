"""E4 — Section 6.1: the Demarcation Protocol.

Paper claims: (a) "The protocol guarantees that the constraint X <= Y is
always valid" — including during limit-change handshakes; (b) different
limit-change *policies* yield implementations of different quality — the
degenerate one that never moves the limits is valid but denies every local
update beyond the initial slack.

The experiment runs the inventory workload under each slack policy and
reports: the X <= Y invariant verdict (checked continuously from the trace),
the Lx <= Ly limit invariant, the denied-update fraction, and the message
count.  Shape: every policy keeps the invariant; FROZEN denies the most;
EAGER uses the fewest handshakes.
"""

from __future__ import annotations

from repro.cm import CMRID, ConstraintManager, Scenario
from repro.constraints import InequalityConstraint
from repro.core.interfaces import InterfaceKind
from repro.core.timebase import seconds
from repro.experiments.common import (
    ExperimentResult,
    RunConfig,
    attach_observability,
    resolve_config,
)
from repro.protocols.demarcation import SlackPolicy
from repro.runtime.api import RuntimeSpec
from repro.ris.relational import RelationalDatabase
from repro.workloads import InventoryWorkload

CLAIM = (
    "X <= Y holds at every instant under every slack policy; the frozen "
    "policy denies the most updates and eager needs the fewest handshakes"
)


def build_inventory_cm(
    seed: int, policy: SlackPolicy, runtime: RuntimeSpec = "sim"
) -> tuple[ConstraintManager, object]:
    """Two sites, two relational DBs, the demarcation protocol installed."""
    scenario = Scenario(seed=seed, runtime=runtime)
    cm = ConstraintManager(scenario)
    cm.add_site("storefront")
    cm.add_site("warehouse")

    store_db = RelationalDatabase("orders")
    store_db.execute("CREATE TABLE counters (name TEXT PRIMARY KEY, val REAL)")
    rid_store = (
        CMRID("relational", "orders")
        .bind(
            "committed",
            table="counters",
            key_column="name",
            value_column="val",
            key="committed",
        )
        .offer("committed", InterfaceKind.READ, bound_seconds=1.0)
        .offer("committed", InterfaceKind.WRITE, bound_seconds=1.0)
    )
    cm.add_source("storefront", store_db, rid_store)

    stock_db = RelationalDatabase("stock")
    stock_db.execute("CREATE TABLE counters (name TEXT PRIMARY KEY, val REAL)")
    rid_stock = (
        CMRID("relational", "stock")
        .bind(
            "stock",
            table="counters",
            key_column="name",
            value_column="val",
            key="stock",
        )
        .offer("stock", InterfaceKind.READ, bound_seconds=1.0)
        .offer("stock", InterfaceKind.WRITE, bound_seconds=1.0)
    )
    cm.add_source("warehouse", stock_db, rid_stock)

    constraint = cm.declare(InequalityConstraint("committed", "stock"))
    suggestions = cm.suggest(constraint, demarcation_policy=policy)
    installed = cm.install(
        constraint,
        suggestions[0],
        # Plenty of warehouse stock: denials then measure the *policy's*
        # slack allocation, not a fundamentally infeasible workload.
        initial_x=0.0,
        initial_y=5000.0,
        initial_limit=50.0,
    )
    return cm, installed


def run(
    config: RunConfig | None = None,
    *,
    policies: tuple[SlackPolicy, ...] = (
        SlackPolicy.EXACT,
        SlackPolicy.EAGER,
        SlackPolicy.SPLIT,
        SlackPolicy.FROZEN,
    ),
    duration_seconds: float = 600.0,
    seed: int = 3,
) -> ExperimentResult:
    """Drive the inventory workload under each slack policy."""
    config = resolve_config(config)
    seed = config.resolve_seed(seed)
    result = ExperimentResult(
        experiment="E4 demarcation protocol (Section 6.1)",
        claim=CLAIM,
        headers=[
            "policy",
            "attempts",
            "applied",
            "denied",
            "denied_frac",
            "requests",
            "X<=Y",
            "Lx<=Ly",
        ],
    )
    denied_by_policy: dict[SlackPolicy, float] = {}
    requests_by_policy: dict[SlackPolicy, int] = {}
    for policy in policies:
        cm, installed = build_inventory_cm(
            seed, policy, runtime=config.runtime_spec()
        )
        protocol = installed.native_protocol
        InventoryWorkload(
            cm.scenario.sim,
            cm.scenario.rngs,
            protocol,
            duration=seconds(duration_seconds),
        )
        cm.run(until=seconds(duration_seconds + 30))
        reports = cm.check_guarantees()
        value_ok = next(
            r for n, r in reports.items() if n.startswith("committed <=")
        )
        limit_ok = next(
            r for n, r in reports.items() if n.startswith("Limit_")
        )
        stats_x = protocol.x_agent.stats
        stats_y = protocol.y_agent.stats
        attempts = stats_x.updates_attempted + stats_y.updates_attempted
        applied = stats_x.updates_applied + stats_y.updates_applied
        denied = stats_x.updates_denied + stats_y.updates_denied
        requests = stats_x.requests_sent + stats_y.requests_sent
        denied_fraction = denied / max(1, attempts)
        denied_by_policy[policy] = denied_fraction
        requests_by_policy[policy] = requests
        result.rows.append(
            [
                policy.value,
                attempts,
                applied,
                denied,
                denied_fraction,
                requests,
                value_ok.valid,
                limit_ok.valid,
            ]
        )
        if not (value_ok.valid and limit_ok.valid):
            result.claim_holds = False
            result.notes.append(f"invariant broken under {policy.value}")
    active = [p for p in policies if p is not SlackPolicy.FROZEN]
    if SlackPolicy.FROZEN in denied_by_policy and active:
        worst_active = max(denied_by_policy[p] for p in active)
        if denied_by_policy[SlackPolicy.FROZEN] <= worst_active:
            result.claim_holds = False
            result.notes.append(
                "the frozen policy did not deny the most updates"
            )
    if (
        SlackPolicy.EAGER in requests_by_policy
        and SlackPolicy.EXACT in requests_by_policy
        and requests_by_policy[SlackPolicy.EAGER]
        > requests_by_policy[SlackPolicy.EXACT]
    ):
        result.claim_holds = False
        result.notes.append("eager slack needed more handshakes than exact")
    attach_observability(result, cm)
    return result


def main() -> None:
    """Print the experiment's result table."""
    print(run().render())


if __name__ == "__main__":
    main()


def build_for_lint():
    """CM-Lint hook: the inventory wiring (the protocol itself is a
    programmed native strategy, so only its interface rules are nodes)."""
    return build_inventory_cm(3, SlackPolicy.EXACT)[0]
