"""E10 — Sections 4.3 / 7.2: scaling without global coordination.

Paper claims: the toolkit "coordinate[s] the activities of the loosely
coupled, heterogeneous databases without modifying the databases or the
existing applications"; strategies need no global data access, no global
transactions, and no clock synchronization — each rule runs at the shell
owning its LHS, so adding sites/constraints adds only local work plus
point-to-point messages.

The experiment builds a hub-and-spoke federation (one primary personnel
database, N replica sites, one parameterized copy constraint per replica),
drives a fixed-rate update stream, and reports — per federation size — the
end-to-end propagation latency percentiles and per-site event counts.
Shape: latency stays flat as sites are added (fan-out adds messages, not
coordination rounds), demonstrating the no-global-coordination claim.
"""

from __future__ import annotations

from repro.cm import CMRID, ConstraintManager, Scenario
from repro.constraints import CopyConstraint
from repro.core.events import EventKind
from repro.core.interfaces import InterfaceKind
from repro.core.items import DataItemRef
from repro.core.timebase import seconds, to_seconds
from repro.experiments.common import (
    ExperimentResult,
    RunConfig,
    attach_observability,
    pick_suggestion,
    resolve_config,
)
from repro.runtime.api import RuntimeSpec
from repro.ris.relational import RelationalDatabase
from repro.workloads import UpdateStream
from repro.workloads.generators import random_walk

CLAIM = (
    "per-update propagation latency stays flat as replica sites are added: "
    "rule distribution keeps all work local plus point-to-point messages"
)


def build_federation(
    replica_count: int, seed: int, runtime: RuntimeSpec = "sim"
) -> tuple[ConstraintManager, list[str]]:
    """A hub source plus N replica sites, one copy constraint per replica."""
    scenario = Scenario(seed=seed, runtime=runtime)
    cm = ConstraintManager(scenario)
    cm.add_site("hub")
    hub_db = RelationalDatabase("hub-db")
    hub_db.execute("CREATE TABLE people (pid TEXT PRIMARY KEY, phone TEXT)")
    rid_hub = (
        CMRID("relational", "hub-db")
        .bind(
            "phone0",
            params=("n",),
            table="people",
            key_column="pid",
            value_column="phone",
        )
        .offer("phone0", InterfaceKind.NOTIFY, bound_seconds=2.0)
        .offer("phone0", InterfaceKind.READ, bound_seconds=1.0)
    )
    cm.add_source("hub", hub_db, rid_hub)
    replica_families = []
    for index in range(1, replica_count + 1):
        site = f"replica{index}"
        family = f"phone{index}"
        cm.add_site(site)
        db = RelationalDatabase(f"replica-db-{index}")
        db.execute("CREATE TABLE people (pid TEXT PRIMARY KEY, phone TEXT)")
        rid = (
            CMRID("relational", f"replica-db-{index}")
            .bind(
                family,
                params=("n",),
                table="people",
                key_column="pid",
                value_column="phone",
            )
            .offer(family, InterfaceKind.WRITE, bound_seconds=2.0)
            .offer(family, InterfaceKind.NO_SPONTANEOUS_WRITE)
        )
        cm.add_source(site, db, rid)
        constraint = cm.declare(
            CopyConstraint("phone0", family, params=("n",))
        )
        suggestion = pick_suggestion(
            cm.suggest(constraint, rule_delay=seconds(1)), "propagation"
        )
        cm.install(constraint, suggestion)
        replica_families.append(family)
    return cm, replica_families


def measure_propagation_latencies(
    cm: ConstraintManager, replica_families: list[str]
) -> list[float]:
    """Per (source write, replica) end-to-end latencies, in seconds."""
    trace = cm.scenario.trace
    latencies: list[float] = []
    families = set(replica_families)
    for event in trace.events_of_kind(EventKind.WRITE):
        item = event.desc.item
        if item is None or item.name not in families:
            continue
        # Walk provenance back to the originating spontaneous write.
        origin = event
        while origin.trigger is not None:
            origin = origin.trigger
        if origin.desc.kind is EventKind.SPONTANEOUS_WRITE:
            latencies.append(to_seconds(event.time - origin.time))
    return latencies


def _percentile(values: list[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def run(
    config: RunConfig | None = None,
    *,
    replica_counts: tuple[int, ...] = (1, 2, 4, 8),
    people: int = 10,
    rate: float = 1.0,
    duration: float = 120.0,
    seed: int = 9,
) -> ExperimentResult:
    """Sweep federation sizes; report latency percentiles and message counts."""
    config = resolve_config(config)
    seed = config.resolve_seed(seed)
    people = config.scaled(people)
    result = ExperimentResult(
        experiment="E10 scale-out (Sections 4.3, 7.2)",
        claim=CLAIM,
        headers=[
            "replicas",
            "events",
            "messages",
            "p50_lat_s",
            "p95_lat_s",
            "all_valid",
        ],
    )
    p95_by_size: dict[int, float] = {}
    for replica_count in replica_counts:
        cm, families = build_federation(
            replica_count, seed, runtime=config.runtime_spec()
        )
        def phone_numbers(stream, key):
            return f"555-{stream.rng.randint(1000, 9999)}"

        UpdateStream(
            cm,
            "phone0",
            [f"p{i}" for i in range(people)],
            rate=rate,
            duration=seconds(duration),
            value_model=phone_numbers,
        )
        cm.run(until=seconds(duration + 30))
        latencies = measure_propagation_latencies(cm, families)
        reports = cm.check_guarantees()
        all_valid = all(r.valid for r in reports.values())
        p50 = _percentile(latencies, 0.50)
        p95 = _percentile(latencies, 0.95)
        p95_by_size[replica_count] = p95
        result.rows.append(
            [
                replica_count,
                len(cm.scenario.trace.events),
                cm.scenario.network.messages_sent,
                p50,
                p95,
                all_valid,
            ]
        )
        if not all_valid:
            result.claim_holds = False
            result.notes.append(
                f"{replica_count} replicas: a guarantee was violated"
            )
    smallest = min(p95_by_size)
    largest = max(p95_by_size)
    if p95_by_size[largest] > 3.0 * max(p95_by_size[smallest], 0.05):
        result.claim_holds = False
        result.notes.append(
            "p95 propagation latency grew super-linearly with fan-out"
        )
    attach_observability(result, cm)
    return result


def run_scaled(
    config: RunConfig | None = None,
    *,
    replica_counts: tuple[int, ...] = (8, 16),
    people: int = 25,
    rate: float = 2.0,
    duration: float = 180.0,
    seed: int = 11,
) -> ExperimentResult:
    """The scaled-up E10 configuration.

    Sixteen replicas x 25 people x 2 writes/s over 180s drives roughly an
    order of magnitude more trace events than :func:`run`; practical only
    now that trace recording is O(1) per event and the latency measurement
    reads the per-kind event index instead of rescanning the trace.
    """
    return run(
        config,
        replica_counts=replica_counts,
        people=people,
        rate=rate,
        duration=duration,
        seed=seed,
    )


def main() -> None:
    """Print the experiment's result table."""
    print(run().render())


if __name__ == "__main__":
    main()


def build_for_lint():
    """CM-Lint hook: a small federation (the sweep only changes N)."""
    return build_federation(replica_count=2, seed=9)[0]
