"""E6 — Section 6.3: monitoring with Flag/Tb auxiliary data.

Paper claim: when the CM can observe but not update ``X`` and ``Y``, the
monitor strategy's guarantee
``((Flag = true) ∧ (Tb = s))@t => (X = Y)@@[s, t - κ]`` is sound for an
appropriate κ (one that absorbs the notification delays).

The experiment runs two notify-only sources whose values agree most of the
time but diverge in bursts (an external replication process the CM does not
control), installs the monitor strategy, and then checks the guarantee's
soundness for a sweep of κ values over the same trace.  Shape: small κ
(below the notification-delay bound) yields unsound claims; the
catalog-computed κ and anything above it is sound.  The auditor application
is also exercised: every query it certifies as CONSISTENT must truly have
seen ``X = Y``.
"""

from __future__ import annotations

from repro.apps import AuditorApp
from repro.apps.auditor import AuditVerdict
from repro.cm import CMRID, ConstraintManager, Scenario
from repro.constraints import CopyConstraint
from repro.core.guarantees.monitor import MonitorGuarantee
from repro.core.interfaces import InterfaceKind
from repro.core.items import DataItemRef
from repro.core.timebase import seconds, to_seconds
from repro.experiments.common import (
    ExperimentResult,
    RunConfig,
    attach_observability,
    resolve_config,
)
from repro.ris.legacy import LegacySystem
from repro.runtime.api import RuntimeSpec

CLAIM = (
    "the Flag/Tb monitoring guarantee is sound at and above the computed "
    "kappa and becomes unsound for kappa below the notification delays"
)


def build_monitor_cm(
    seed: int, runtime: RuntimeSpec = "sim"
) -> tuple[ConstraintManager, object, float]:
    """Two notify-only legacy feeds with the monitor strategy installed."""
    scenario = Scenario(seed=seed, runtime=runtime)
    cm = ConstraintManager(scenario)
    cm.add_site("site-x")
    cm.add_site("site-y")

    source_x = LegacySystem("feed-x")
    rid_x = (
        CMRID("legacy", "feed-x")
        .bind("X", key_prefix="x-value")
        .offer("X", InterfaceKind.NOTIFY, bound_seconds=1.0)
    )
    cm.add_source("site-x", source_x, rid_x)

    source_y = LegacySystem("feed-y")
    rid_y = (
        CMRID("legacy", "feed-y")
        .bind("Y", key_prefix="y-value")
        .offer("Y", InterfaceKind.NOTIFY, bound_seconds=1.0)
    )
    cm.add_source("site-y", source_y, rid_y)

    constraint = cm.declare(CopyConstraint("X", "Y"))
    suggestions = cm.suggest(constraint, rule_delay=seconds(0.5))
    assert suggestions, "the catalog should offer the monitor strategy"
    installed = cm.install(constraint, suggestions[0])
    guarantee = installed.guarantees[0]
    assert isinstance(guarantee, MonitorGuarantee)
    return cm, installed, to_seconds(guarantee.kappa)


def run(
    config: RunConfig | None = None,
    *,
    kappa_factors: tuple[float, ...] = (0.02, 0.2, 1.0, 2.0),
    value_count: int = 60,
    mean_gap_seconds: float = 10.0,
    divergence_probability: float = 0.25,
    seed: int = 5,
) -> ExperimentResult:
    """Sweep kappa over one trace; audit past queries via the application."""
    config = resolve_config(config)
    seed = config.resolve_seed(seed)
    value_count = config.scaled(value_count)
    result = ExperimentResult(
        experiment="E6 monitor strategy (Section 6.3)",
        claim=CLAIM,
        headers=["kappa_s", "factor", "sound", "claims", "covered_s"],
    )
    cm, installed, catalog_kappa = build_monitor_cm(
        seed, runtime=config.runtime_spec()
    )
    rng = cm.scenario.rngs.stream("monitor-workload")
    # An external replication process: X changes, Y copies it shortly after;
    # occasionally Y lags a long time (divergence bursts).
    time = 5.0
    for index in range(value_count):
        value = float(index + 1)
        cm.scenario.sim.at(
            seconds(time), lambda v=value: cm.spontaneous_write("X", (), v)
        )
        if rng.random() < divergence_probability:
            lag = rng.uniform(5.0, 15.0)  # a long divergence
        else:
            lag = rng.uniform(0.3, 1.0)
        cm.scenario.sim.at(
            seconds(time + lag),
            lambda v=value: cm.spontaneous_write("Y", (), v),
        )
        time += rng.expovariate(1.0 / mean_gap_seconds)
    horizon = seconds(time + 60)

    strategy = installed.strategy
    flag_ref = DataItemRef(strategy.metadata["flag_family"])
    tb_ref = DataItemRef(strategy.metadata["tb_family"])
    auditor = AuditorApp(
        cm.shell("site-y"), flag_ref, tb_ref, seconds(catalog_kappa)
    )
    # Audit random past queries every 20 seconds.
    audit_rng = cm.scenario.rngs.stream("auditor")

    def schedule_audits() -> None:
        audit_time = seconds(30)
        while audit_time < horizon:
            cm.scenario.sim.at(
                audit_time,
                lambda at=audit_time: auditor.audit_query(
                    at - seconds(audit_rng.uniform(1.0, 25.0))
                ),
            )
            audit_time += seconds(20)

    schedule_audits()
    cm.run(until=horizon)

    trace = cm.scenario.trace
    sound_at_catalog = True
    for factor in kappa_factors:
        kappa = seconds(catalog_kappa * factor)
        guarantee = MonitorGuarantee(
            DataItemRef("X"), DataItemRef("Y"), flag_ref, tb_ref, kappa
        )
        report = guarantee.check(trace)
        result.rows.append(
            [
                to_seconds(kappa),
                factor,
                report.valid,
                report.checked_instances,
                report.stats.get("covered_seconds", 0.0),
            ]
        )
        if factor >= 1.0 and not report.valid:
            result.claim_holds = False
            result.notes.append(
                f"catalog kappa x{factor} was unsound: "
                + "; ".join(report.counterexamples[:2])
            )
        if factor >= 1.0:
            sound_at_catalog = sound_at_catalog and report.valid
    small = [
        row for row in result.rows if row[1] < 1.0
    ]
    if small and all(row[2] for row in small):
        result.notes.append(
            "warning: even tiny kappa was sound on this trace (no "
            "notification raced a divergence); increase divergence "
            "probability to exercise the bound"
        )
    # Auditor soundness: every CONSISTENT verdict must be truthful.
    x_ref, y_ref = DataItemRef("X"), DataItemRef("Y")
    lies = 0
    consistent = 0
    for record in auditor.audits:
        if record.verdict is AuditVerdict.CONSISTENT:
            consistent += 1
            if trace.value_at(x_ref, record.query_time) != trace.value_at(
                y_ref, record.query_time
            ):
                lies += 1
    result.notes.append(
        f"auditor: {consistent}/{len(auditor.audits)} queries certified "
        f"consistent, {lies} certifications false"
    )
    if lies:
        result.claim_holds = False
    attach_observability(result, cm)
    return result


def main() -> None:
    """Print the experiment's result table."""
    print(run().render())


if __name__ == "__main__":
    main()


def build_for_lint():
    """CM-Lint hook: the monitor configuration (κ verdicts not needed)."""
    return build_monitor_cm(seed=5)[0]


#: Both monitor rules (one per ticker site) raise the shared divergence
#: flag; CM-Lint correctly reports the write-write race (CM501), but the
#: monitor design is insensitive to it — either order leaves Flag=true
#: with a valid timebound, and the auditor treats Flag=true
#: conservatively.  Allowlist the finding rather than restructure the
#: paper's strategy.
LINT_SUPPRESS = ("CM501:monitor_X",)
