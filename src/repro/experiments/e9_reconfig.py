"""E9 — Sections 4.2.3 / 4.3: reconfiguration cost.

Paper claims: "consider what happens if the administrator at site A decides
to change the interface for data item salary1(n) from the above notify
interface to a read interface...  we must use a polling strategy", and
"incorporating new databases or changing the interface to an existing
database requires very little work, since only the high-level interface and
strategy specifications have to be modified (and can be chosen from a menu
in most cases)".

The experiment performs the interface change as an administrator would:
edit the CM-RID (one offer swapped), re-survey, and take the toolkit's new
suggestion.  It reports how many *specification* entries changed (diffing
the CM-RID dict forms), that zero translator code changed (same standard
translator class both times), which guarantees were lost by the weaker
interface, and that both configurations run correctly end to end.
"""

from __future__ import annotations

from repro.core.timebase import seconds
from repro.experiments.common import (
    ExperimentResult,
    RunConfig,
    attach_observability,
    build_salary_scenario,
    resolve_config,
)
from repro.workloads import UpdateStream
from repro.workloads.generators import random_walk

CLAIM = (
    "swapping salary1's notify interface for a read interface needs only a "
    "CM-RID edit; the toolkit re-suggests a polling strategy, losing "
    "exactly the leads guarantee, with no translator code changes"
)


def _dict_entries(data: dict, prefix: str = "") -> set[str]:
    entries: set[str] = set()
    for key, value in data.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            entries |= _dict_entries(value, path)
        elif isinstance(value, list):
            entries.add(f"{path}={value!r}")
        else:
            entries.add(f"{path}={value!r}")
    return entries


def run(
    config: RunConfig | None = None,
    *,
    seed: int = 8,
    duration: float = 300.0,
) -> ExperimentResult:
    """Perform the notify->read interface change and diff the configurations."""
    config = resolve_config(config)
    seed = config.resolve_seed(seed)
    result = ExperimentResult(
        experiment="E9 reconfiguration (Sections 4.2.3, 4.3)",
        claim=CLAIM,
        headers=[
            "configuration",
            "strategy",
            "guarantees",
            "all valid",
            "spec_changes",
            "code_changes",
        ],
    )
    configs = {}
    for label, offer_notify in (("notify", True), ("read-only", False)):
        salary = build_salary_scenario(
            strategy_kind="propagation" if offer_notify else "polling",
            seed=seed,
            offer_notify=offer_notify,
            polling_period=10.0,
            runtime=config.runtime_spec(),
        )
        UpdateStream(
            salary.cm,
            "salary1",
            ["e1", "e2", "e3"],
            rate=0.2,
            duration=seconds(duration),
            value_model=random_walk(step=50.0, start=500.0),
        )
        salary.cm.run(until=seconds(duration + 60))
        reports = salary.cm.check_guarantees()
        configs[label] = {
            "rid": _rid_of(salary),
            "strategy": salary.installed.strategy.kind,
            "guarantee_names": sorted(reports),
            "all_valid": all(r.valid for r in reports.values()),
            "translator_class": type(
                salary.cm.shell("sf").translator_for("salary1")
            ).__name__,
        }

    before = _dict_entries(configs["notify"]["rid"])
    after = _dict_entries(configs["read-only"]["rid"])
    spec_changes = len(before ^ after)
    code_changes = (
        0
        if configs["notify"]["translator_class"]
        == configs["read-only"]["translator_class"]
        else 1
    )
    for label in ("notify", "read-only"):
        config = configs[label]
        result.rows.append(
            [
                label,
                config["strategy"],
                len(config["guarantee_names"]),
                config["all_valid"],
                spec_changes if label == "read-only" else 0,
                code_changes if label == "read-only" else 0,
            ]
        )
        if not config["all_valid"]:
            result.claim_holds = False
            result.notes.append(f"{label}: an issued guarantee was violated")

    lost = set(configs["notify"]["guarantee_names"]) - set(
        configs["read-only"]["guarantee_names"]
    )
    if not any(name.startswith("leads(") for name in lost):
        result.claim_holds = False
        result.notes.append(
            f"expected the leads guarantee to be lost; lost: {sorted(lost)}"
        )
    if code_changes != 0:
        result.claim_holds = False
        result.notes.append("the standard translator had to be replaced")
    result.notes.append(
        f"guarantees lost by weakening the interface: {sorted(lost)}"
    )
    attach_observability(result, salary.cm)
    return result


def _rid_of(salary) -> dict:
    translator = salary.cm.shell("sf").translator_for("salary1")
    return translator.rid.to_dict()


def main() -> None:
    """Print the experiment's result table."""
    print(run().render())


if __name__ == "__main__":
    main()


def build_for_lint():
    """CM-Lint hook: both interface generations the experiment swaps
    between (notify-capable, then read-only with polling)."""
    return [
        build_salary_scenario(
            strategy_kind="propagation", seed=8, offer_notify=True
        ).cm,
        build_salary_scenario(
            strategy_kind="polling",
            seed=8,
            offer_notify=False,
            polling_period=10.0,
        ).cm,
    ]
