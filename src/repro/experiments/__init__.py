"""The experiment harness reproducing the paper's claims.

The paper's evaluation is qualitative (its claims are guarantee-validity
statements per scenario); each module here turns one claim into a
quantitative, checkable experiment.  See DESIGN.md's experiment index for
the mapping to paper sections, and ``python -m repro.experiments.runner``
for the command-line entry point.

- :mod:`repro.experiments.e1_propagation` — §4.2: notify→write propagation
  validates guarantees (1)-(4).
- :mod:`repro.experiments.e2_polling` — §4.2.3: polling keeps (1)(3)(4) but
  loses (2); missed updates vs polling period.
- :mod:`repro.experiments.e3_caching` — §3.2 fn.3: cached propagation
  suppresses redundant writes.
- :mod:`repro.experiments.e4_demarcation` — §6.1: X ≤ Y always; slack
  policies compared.
- :mod:`repro.experiments.e5_referential` — §6.2: 24-hour violation windows
  under daily cleanup.
- :mod:`repro.experiments.e6_monitor` — §6.3: Flag/Tb soundness vs κ.
- :mod:`repro.experiments.e7_periodic` — §6.4: nightly consistency windows.
- :mod:`repro.experiments.e8_failures` — §5: metric vs logical failure
  semantics.
- :mod:`repro.experiments.e9_reconfig` — §4.2.3/§4.3: interface changes need
  only specification changes.
- :mod:`repro.experiments.e10_scale` — §4.3/§7.2: scaling sites and
  constraints without global coordination.
- :mod:`repro.experiments.ablations` — in-order delivery ablation and other
  design-choice checks.
"""
