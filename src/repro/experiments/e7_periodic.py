"""E7 — Section 6.4: periodic guarantees in the banking scenario.

Paper claim: "If the branch offers an interface that guarantees that there
will be no updates to account balances between 5 p.m. and 8 a.m., and if the
propagation of new values at the end of the day takes 15 minutes, we can
offer a periodic guarantee that the copy constraints will be valid every day
from 5:15 p.m. to 8 a.m. the next day."  A financial-analysis application
running inside that window can rely on consistency.

The experiment runs several simulated banking days, installs the end-of-day
batch strategy, checks the periodic copy guarantee over the trace, and runs
the analyst application nightly at 22:00 — its head-office totals must equal
the branch truth.  As a negative control it also shows that the *unrestricted*
(all-day) version of the same equality fails: the weakening is necessary.
"""

from __future__ import annotations

from repro.apps import AnalystApp
from repro.cm import CMRID, ConstraintManager, Scenario
from repro.constraints import CopyConstraint
from repro.core.guarantees import PeriodicCopyGuarantee
from repro.core.interfaces import InterfaceKind
from repro.core.timebase import DAY, clock_time, seconds
from repro.experiments.common import (
    ExperimentResult,
    RunConfig,
    attach_observability,
    resolve_config,
)
from repro.ris.relational import RelationalDatabase
from repro.runtime.api import RuntimeSpec
from repro.workloads import BankingWorkload

CLAIM = (
    "balances match every day from 17:15 to 08:00 (the periodic guarantee) "
    "although they diverge during business hours (the strict constraint "
    "fails), and the nightly analyst sees consistent totals"
)


def build_banking_cm(
    seed: int, runtime: RuntimeSpec = "sim"
) -> ConstraintManager:
    """Branch + head office with the end-of-day batch strategy installed."""
    scenario = Scenario(seed=seed, runtime=runtime)
    cm = ConstraintManager(scenario)
    cm.add_site("branch")
    cm.add_site("head-office")

    branch_db = RelationalDatabase("branch-ledger")
    branch_db.execute(
        "CREATE TABLE accounts (acct TEXT PRIMARY KEY, balance REAL)"
    )
    rid_branch = (
        CMRID("relational", "branch-ledger")
        .bind(
            "balance1",
            params=("n",),
            table="accounts",
            key_column="acct",
            value_column="balance",
        )
        .offer("balance1", InterfaceKind.READ, bound_seconds=2.0)
        .offer(
            "balance1",
            InterfaceKind.UPDATE_WINDOW,
            window=(clock_time(17), clock_time(8)),
        )
    )
    cm.add_source("branch", branch_db, rid_branch)

    hq_db = RelationalDatabase("ho-ledger")
    hq_db.execute(
        "CREATE TABLE accounts (acct TEXT PRIMARY KEY, balance REAL)"
    )
    rid_hq = (
        CMRID("relational", "ho-ledger")
        .bind(
            "balance2",
            params=("n",),
            table="accounts",
            key_column="acct",
            value_column="balance",
        )
        .offer("balance2", InterfaceKind.WRITE, bound_seconds=2.0)
        .offer("balance2", InterfaceKind.NO_SPONTANEOUS_WRITE)
    )
    cm.add_source("head-office", hq_db, rid_hq)

    constraint = cm.declare(
        CopyConstraint("balance1", "balance2", params=("n",))
    )
    suggestions = cm.suggest(
        constraint, eod_fire_at=clock_time(17), rule_delay=seconds(2)
    )
    eod = next(s for s in suggestions if s.strategy.kind == "eod-batch")
    cm.install(constraint, eod)
    return cm


def run(
    config: RunConfig | None = None,
    *,
    simulated_days: int = 3,
    account_count: int = 10,
    seed: int = 6,
) -> ExperimentResult:
    """Run several banking days; check the periodic guarantee and the analyst."""
    config = resolve_config(config)
    seed = config.resolve_seed(seed)
    account_count = config.scaled(account_count)
    result = ExperimentResult(
        experiment="E7 periodic guarantee (Section 6.4)",
        claim=CLAIM,
        headers=[
            "updates",
            "windows",
            "periodic_ok",
            "strict_ok",
            "analyst_runs",
            "analyst_consistent",
        ],
    )
    cm = build_banking_cm(seed, runtime=config.runtime_spec())
    workload = BankingWorkload(
        cm, account_count=account_count, days=simulated_days, rate=0.01
    )
    analyst = AnalystApp(
        cm,
        "balance1",
        "balance2",
        run_at=clock_time(22),
        days=simulated_days,
    )
    cm.run(until=simulated_days * DAY)

    reports = cm.check_guarantees()
    periodic_report = next(iter(reports.values()))
    # Negative control: the same equality with NO window restriction.
    strict = PeriodicCopyGuarantee("balance1", "balance2", 0, DAY - 1)
    strict_report = strict.check(cm.scenario.trace)
    analyst_reports = analyst.reports()
    consistent_runs = sum(1 for r in analyst_reports if r.consistent)
    result.rows.append(
        [
            workload.updates_scheduled,
            periodic_report.checked_instances,
            periodic_report.valid,
            strict_report.valid,
            len(analyst_reports),
            consistent_runs,
        ]
    )
    if not periodic_report.valid:
        result.claim_holds = False
        result.notes.extend(periodic_report.counterexamples[:3])
    if strict_report.valid:
        result.claim_holds = False
        result.notes.append(
            "the unweakened constraint held all day; the workload never "
            "diverged the copies, so the periodic weakening is untested"
        )
    if consistent_runs != len(analyst_reports):
        result.claim_holds = False
        result.notes.append("the analyst saw inconsistent nightly totals")
    attach_observability(result, cm)
    return result


def main() -> None:
    """Print the experiment's result table."""
    print(run().render())


if __name__ == "__main__":
    main()


def build_for_lint():
    """CM-Lint hook: the end-of-day banking configuration."""
    return build_banking_cm(seed=6)
