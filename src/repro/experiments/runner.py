"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments.runner            # run everything
    python -m repro.experiments.runner e2 e4      # run selected experiments
    python -m repro.experiments.runner --list     # show what exists
    python -m repro.experiments.runner --json out.json --quiet e1

Each experiment prints its claim, a REPRODUCED / NOT REPRODUCED verdict, and
the table of measured rows (the reproduction's analogue of the paper's
evaluation output).  ``--json PATH`` additionally writes every result —
including each experiment's observability block and structured run report —
as one JSON document; ``--quiet`` suppresses the tables (verdict lines only).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable

from repro.experiments import (
    ablations,
    e1_propagation,
    e2_polling,
    e3_caching,
    e4_demarcation,
    e5_referential,
    e6_monitor,
    e7_periodic,
    e8_failures,
    e9_reconfig,
    e10_scale,
    e11_arithmetic,
)
from repro.experiments.common import ExperimentResult, RunConfig

EXPERIMENTS: dict[str, tuple[str, Callable[..., object]]] = {
    "e1": ("propagation strategy (Section 4.2)", e1_propagation.run),
    "e2": ("polling strategy (Section 4.2.3)", e2_polling.run),
    "e3": ("cached propagation (Section 3.2 fn. 3)", e3_caching.run),
    "e4": ("demarcation protocol (Section 6.1)", e4_demarcation.run),
    "e5": ("referential integrity (Section 6.2)", e5_referential.run),
    "e6": ("monitor strategy (Section 6.3)", e6_monitor.run),
    "e7": ("periodic guarantees (Section 6.4)", e7_periodic.run),
    "e8": ("failure handling (Section 5)", e8_failures.run),
    "e9": ("reconfiguration cost (Sections 4.2.3, 4.3)", e9_reconfig.run),
    "e10": ("scale-out (Sections 4.3, 7.2)", e10_scale.run),
    "e11": ("arithmetic decomposition (Section 7.1)", e11_arithmetic.run),
    "ablation-order": (
        "in-order delivery ablation (Appendix A)",
        ablations.run_in_order_ablation,
    ),
    "ablation-echo": (
        "trigger-echo suppression ablation",
        ablations.run_echo_ablation,
    ),
    "ablation-skew": (
        "clock-skew margins ablation (Section 7.2)",
        ablations.run_clock_skew_ablation,
    ),
}


def main(argv: list[str] | None = None) -> int:
    """Run the selected experiments; exit 1 if any claim fails to reproduce."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Reproduce the paper's per-scenario claims.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write all results (tables, observability, run reports) as JSON",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print one verdict line per experiment instead of full tables",
    )
    parser.add_argument(
        "--runtime",
        choices=("sim", "async"),
        default="sim",
        help="execution runtime: 'sim' (deterministic discrete-event kernel) "
        "or 'async' (asyncio shells over real sockets)",
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        default=20.0,
        metavar="FACTOR",
        help="with --runtime async: virtual seconds per wall second "
        "(default 20; higher is faster but shrinks the wall-clock "
        "headroom behind every timing bound)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override every experiment's default seed",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        metavar="FACTOR",
        help="multiply experiment workload sizes (entity counts) by FACTOR",
    )
    args = parser.parse_args(argv)
    if args.list:
        for key, (description, __) in EXPERIMENTS.items():
            print(f"{key:15s} {description}")
        return 0
    selected = args.experiments or list(EXPERIMENTS)
    unknown = [key for key in selected if key not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}", file=sys.stderr)
        return 2
    config = RunConfig(
        runtime=args.runtime,
        seed=args.seed,
        scale=args.scale,
        time_scale=args.time_scale,
    )
    failures = 0
    collected: dict[str, dict] = {}
    for key in selected:
        __, run = EXPERIMENTS[key]
        result = run(config, **config.options)
        assert isinstance(result, ExperimentResult)
        if args.quiet:
            verdict = "REPRODUCED" if result.claim_holds else "NOT REPRODUCED"
            print(f"{key:15s} {verdict}")
        else:
            print(result.render())
            print()
        collected[key] = result.to_dict()
        if not result.claim_holds:
            failures += 1
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(collected, handle, indent=2, sort_keys=True)
            handle.write("\n")
        if not args.quiet:
            print(f"wrote {args.json}")
    if failures:
        print(f"{failures} experiment(s) did NOT reproduce", file=sys.stderr)
        return 1
    print(f"all {len(selected)} experiment(s) reproduced")
    return 0


if __name__ == "__main__":
    sys.exit(main())
