"""Shared scenario builders and reporting helpers for the experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.cm import CMRID, ConstraintManager, Scenario
from repro.cm.manager import InstalledConstraint
from repro.cm.translator import ServiceModel
from repro.constraints import CopyConstraint
from repro.core.catalog import Suggestion
from repro.core.errors import ConfigurationError
from repro.core.interfaces import InterfaceKind
from repro.core.timebase import Ticks, seconds
from repro.ris.relational import RelationalDatabase
from repro.runtime.api import RunConfig, RuntimeSpec, resolve_config
from repro.sim.failures import FailurePlan
from repro.sim.network import FixedLatency, LatencyModel

__all__ = [
    "ExperimentResult",
    "RunConfig",
    "SalaryScenario",
    "attach_observability",
    "build_salary_scenario",
    "format_table",
    "pick_suggestion",
    "resolve_config",
]


@dataclass
class SalaryScenario:
    """The Section 4.2 personnel scenario, fully wired.

    Two relational databases (San Francisco branch, New York headquarters)
    with the parameterized copy constraint ``salary1(n) = salary2(n)``.
    """

    scenario: Scenario
    cm: ConstraintManager
    branch_db: RelationalDatabase
    hq_db: RelationalDatabase
    constraint: CopyConstraint
    installed: InstalledConstraint
    suggestion: Suggestion


def build_salary_scenario(
    strategy_kind: str = "propagation",
    seed: int = 0,
    notify_bound: float = 2.0,
    read_bound: float = 1.0,
    write_bound: float = 2.0,
    rule_delay: float = 1.0,
    polling_period: float = 60.0,
    offer_notify: bool = True,
    offer_read: bool = True,
    latency: Optional[LatencyModel] = None,
    failure_plan: Optional[FailurePlan] = None,
    in_order: bool = True,
    service: Optional[ServiceModel] = None,
    runtime: RuntimeSpec = "sim",
    batch_max: int = 0,
    dispatch_shards: int = 1,
    shard_threads: bool = False,
    shard_workers: int = 0,
    parallel_phases: bool = False,
    sanitize: bool = False,
) -> SalaryScenario:
    """Build and install the salary copy-constraint scenario.

    ``strategy_kind`` picks among the catalog's suggestions
    (``propagation``, ``cached-propagation``, ``polling``).  Disabling
    ``offer_notify`` reproduces the Section 4.2.3 interface change that
    forces a polling strategy.  ``runtime`` selects the execution
    substrate — pass a :class:`~repro.runtime.api.RunConfig`'s
    ``runtime_spec()`` to run the same wiring over real sockets.
    """
    scenario = Scenario(
        seed=seed,
        default_latency=latency or FixedLatency(seconds(0.05)),
        failure_plan=failure_plan or FailurePlan(),
        in_order=in_order,
        runtime=runtime,
        batch_max=batch_max,
        dispatch_shards=dispatch_shards,
        shard_threads=shard_threads,
        shard_workers=shard_workers,
        parallel_phases=parallel_phases,
        sanitize=sanitize,
    )
    cm = ConstraintManager(scenario)
    cm.add_site("sf")
    cm.add_site("ny")

    branch_db = RelationalDatabase("branch")
    branch_db.execute(
        "CREATE TABLE employees (empid TEXT PRIMARY KEY, salary REAL)"
    )
    rid_branch = CMRID("relational", "branch").bind(
        "salary1",
        params=("n",),
        table="employees",
        key_column="empid",
        value_column="salary",
    )
    if offer_notify:
        rid_branch.offer(
            "salary1", InterfaceKind.NOTIFY, bound_seconds=notify_bound
        )
    if offer_read:
        rid_branch.offer(
            "salary1", InterfaceKind.READ, bound_seconds=read_bound
        )
    cm.add_source("sf", branch_db, rid_branch, service)

    hq_db = RelationalDatabase("hq")
    hq_db.execute(
        "CREATE TABLE employees (empid TEXT PRIMARY KEY, salary REAL)"
    )
    rid_hq = (
        CMRID("relational", "hq")
        .bind(
            "salary2",
            params=("n",),
            table="employees",
            key_column="empid",
            value_column="salary",
        )
        .offer("salary2", InterfaceKind.WRITE, bound_seconds=write_bound)
        .offer("salary2", InterfaceKind.NO_SPONTANEOUS_WRITE)
    )
    cm.add_source("ny", hq_db, rid_hq, service)

    constraint = cm.declare(
        CopyConstraint("salary1", "salary2", params=("n",))
    )
    suggestions = cm.suggest(
        constraint,
        rule_delay=seconds(rule_delay),
        polling_period=seconds(polling_period),
    )
    chosen = pick_suggestion(suggestions, strategy_kind)
    installed = cm.install(constraint, chosen)
    # The process runtime rebuilds this wiring inside each shell process:
    # hand it this module-level builder (picklable by qualified name) with
    # the exact same knobs, minus the runtime itself.
    accept = getattr(scenario.runtime_impl, "accept_bootstrap", None)
    if accept is not None:
        accept(
            build_salary_scenario,
            {
                "strategy_kind": strategy_kind,
                "seed": seed,
                "notify_bound": notify_bound,
                "read_bound": read_bound,
                "write_bound": write_bound,
                "rule_delay": rule_delay,
                "polling_period": polling_period,
                "offer_notify": offer_notify,
                "offer_read": offer_read,
                "latency": latency,
                "failure_plan": failure_plan,
                "in_order": in_order,
                "service": service,
                "batch_max": batch_max,
                "dispatch_shards": dispatch_shards,
                "shard_threads": shard_threads,
                "shard_workers": shard_workers,
                "parallel_phases": parallel_phases,
                "sanitize": sanitize,
            },
        )
    return SalaryScenario(
        scenario, cm, branch_db, hq_db, constraint, installed, chosen
    )


def pick_suggestion(
    suggestions: Sequence[Suggestion], strategy_kind: str
) -> Suggestion:
    """Select one suggestion by its strategy kind."""
    for suggestion in suggestions:
        if suggestion.strategy.kind == strategy_kind:
            return suggestion
    kinds = [s.strategy.kind for s in suggestions]
    raise ConfigurationError(
        f"no suggested strategy of kind {strategy_kind!r} (have: {kinds})"
    )


# -- reporting -------------------------------------------------------------------


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned ASCII table (the harness's 'same rows the paper
    reports' output format)."""
    rendered = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _render_cell(cell: Any) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


@dataclass
class ExperimentResult:
    """One experiment's output: a table plus the claim verdicts.

    ``observability`` and ``run_report`` (both optional, PR 2) carry the
    final scenario's virtual-clock reading, aggregated dispatch counters,
    and the structured :class:`~repro.obs.report.RunReport`, so the
    ``--json`` runner output and the benchmark JSON files record how the
    result was produced, not just what it was.
    """

    experiment: str
    claim: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    claim_holds: bool = True
    notes: list[str] = field(default_factory=list)
    observability: Optional[dict] = None
    run_report: Any = None

    def render(self) -> str:
        """The experiment's printable block: claim, verdict, table, notes."""
        verdict = "REPRODUCED" if self.claim_holds else "NOT REPRODUCED"
        parts = [
            f"== {self.experiment} ==",
            f"claim: {self.claim}",
            f"verdict: {verdict}",
            format_table(self.headers, self.rows),
        ]
        parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)

    def to_dict(self) -> dict:
        """JSON-ready form (used by ``runner --json`` and bench files)."""
        data: dict[str, Any] = {
            "experiment": self.experiment,
            "claim": self.claim,
            "claim_holds": self.claim_holds,
            "verdict": "REPRODUCED" if self.claim_holds else "NOT REPRODUCED",
            "headers": list(self.headers),
            "rows": [[_jsonable_cell(cell) for cell in row] for row in self.rows],
            "notes": list(self.notes),
        }
        if self.observability is not None:
            data["observability"] = self.observability
        if self.run_report is not None:
            data["run_report"] = self.run_report.to_dict()
        return data


def _jsonable_cell(cell: Any) -> Any:
    if isinstance(cell, (bool, int, float, str)) or cell is None:
        return cell
    return str(cell)


def attach_observability(
    result: ExperimentResult, cm: ConstraintManager
) -> ExperimentResult:
    """Record a scenario's clock, dispatch counters, and run report.

    Experiments call this on their final (or only) scenario so the JSON
    outputs carry the virtual-time cost of reproducing each claim.
    """
    from repro.core.timebase import to_seconds

    sim = cm.scenario.sim
    dispatch = {
        "events_processed": 0,
        "candidates_considered": 0,
        "rules_fired": 0,
        "rules_installed": 0,
        "rules_compiled": 0,
        "rules_fallback": 0,
        "batches_processed": 0,
        "batch_events": 0,
        "match_hits": 0,
        "match_misses": 0,
    }
    for site in cm.scenario.network.sites:
        for key, value in cm.shell(site).stats().items():
            dispatch[key] += value
    result.observability = {
        "ticks": sim.now,
        "virtual_seconds": to_seconds(sim.now),
        "dispatch": dispatch,
        "messages_sent": cm.scenario.network.messages_sent,
        "max_queue_depth": sim.max_queue_depth,
    }
    result.run_report = cm.run_report()
    return result
