"""E3 — Section 3.2 (and footnote 3): cached propagation.

Paper claim: the CM can cache the source's value in shell-private data and
"forward a write request to a remote data item Y only when the new value of
X differs from the cached value" — saving messages and remote writes when
updates are redundant.

The experiment streams duplicate-heavy updates and compares the number of
write requests issued by the naive and cached strategies across duplicate
ratios.  Shape: savings grow with the duplicate ratio; both strategies keep
all the guarantees valid.
"""

from __future__ import annotations

from repro.core.events import EventKind
from repro.core.timebase import seconds
from repro.experiments.common import (
    ExperimentResult,
    RunConfig,
    attach_observability,
    build_salary_scenario,
    resolve_config,
)
from repro.workloads import UpdateStream
from repro.workloads.generators import duplicate_heavy

CLAIM = (
    "the Cx cache suppresses write requests for unchanged values; savings "
    "grow with the duplicate ratio while all guarantees stay valid"
)


def run(
    config: RunConfig | None = None,
    *,
    duplicate_ratios: tuple[float, ...] = (0.0, 0.5, 0.9),
    update_count_rate: float = 2.0,
    duration_seconds: float = 300.0,
    seed: int = 2,
) -> ExperimentResult:
    """Compare naive vs cached write-request counts across duplicate ratios."""
    config = resolve_config(config)
    seed = config.resolve_seed(seed)
    result = ExperimentResult(
        experiment="E3 cached propagation (Section 3.2 fn. 3)",
        claim=CLAIM,
        headers=[
            "dup_ratio",
            "updates",
            "naive WR",
            "cached WR",
            "saved_frac",
            "guarantees_ok",
        ],
    )
    previous_saving = -1.0
    for ratio in duplicate_ratios:
        counts: dict[str, int] = {}
        guarantees_ok = True
        for kind in ("propagation", "cached-propagation"):
            salary = build_salary_scenario(
                strategy_kind=kind, seed=seed, runtime=config.runtime_spec()
            )
            UpdateStream(
                salary.cm,
                "salary1",
                ["e001", "e002"],
                rate=update_count_rate,
                duration=seconds(duration_seconds),
                value_model=duplicate_heavy(
                    values=(100.0, 110.0, 120.0), repeat_probability=ratio
                ),
            )
            salary.cm.run(until=seconds(duration_seconds + 30))
            counts[kind] = sum(
                1
                for event in salary.scenario.trace.events
                if event.desc.kind is EventKind.WRITE_REQUEST
            )
            reports = salary.cm.check_guarantees()
            guarantees_ok = guarantees_ok and all(
                r.valid for r in reports.values()
            )
        naive = counts["propagation"]
        cached = counts["cached-propagation"]
        saving = 1.0 - cached / max(1, naive)
        result.rows.append(
            [ratio, "-", naive, cached, saving, guarantees_ok]
        )
        if not guarantees_ok:
            result.claim_holds = False
        if saving < previous_saving:
            result.claim_holds = False
            result.notes.append(
                f"savings decreased when duplicates rose to {ratio}"
            )
        previous_saving = saving
    attach_observability(result, salary.cm)
    return result


def main() -> None:
    """Print the experiment's result table."""
    print(run().render())


if __name__ == "__main__":
    main()


def build_for_lint():
    """CM-Lint hook: both strategies the experiment compares."""
    return [
        build_salary_scenario(strategy_kind=kind, seed=2).cm
        for kind in ("propagation", "cached-propagation")
    ]
