"""Simulated network: sites, channels, latency models, in-order delivery.

The paper assumes a reliable network (its footnote 4) and, crucially, its
Appendix A property 7 assumes **in-order message delivery between sites and
in-order processing at each site** — a requirement the authors note was
*discovered* while proving the "Y strictly follows X" guarantee.  The
:class:`Network` enforces per-channel FIFO by never scheduling a delivery
earlier than the previous delivery on the same (source, destination) channel.
Setting ``in_order=False`` disables that clamp, which the ablation experiment
uses to demonstrate guarantee (3) breaking.

Latency models are pluggable and draw from a dedicated RNG stream so that
workload changes never perturb network timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.timebase import Ticks, seconds
from repro.obs import Instrumentation
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.obs.spans import Span
from repro.sim.failures import FailurePlan
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Simulator


class LatencyModel:
    """Base class: produces a one-way message latency in ticks."""

    def sample(self, rng) -> Ticks:
        """Return a latency sample.  Subclasses must override."""
        raise NotImplementedError

    def worst_case(self) -> Optional[Ticks]:
        """The largest latency :meth:`sample` can return, or ``None`` when
        the distribution is unbounded.  Static analysis (guarantee
        feasibility in :mod:`repro.analysis`) sums these along trigger
        paths; an unbounded model makes a metric bound unprovable."""
        return None


@dataclass(frozen=True)
class FixedLatency(LatencyModel):
    """Constant latency (useful for exact delay-bound reasoning in tests)."""

    latency: Ticks

    def sample(self, rng) -> Ticks:
        return self.latency

    def worst_case(self) -> Optional[Ticks]:
        return self.latency


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Uniform latency in ``[low, high]`` ticks."""

    low: Ticks
    high: Ticks

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"low > high: {self.low} > {self.high}")

    def sample(self, rng) -> Ticks:
        return rng.randint(self.low, self.high)

    def worst_case(self) -> Optional[Ticks]:
        return self.high


@dataclass(frozen=True)
class ExponentialLatency(LatencyModel):
    """``base + Exp(mean_extra)`` latency, a common WAN-ish shape."""

    base: Ticks
    mean_extra: Ticks

    def sample(self, rng) -> Ticks:
        return self.base + round(rng.expovariate(1.0 / self.mean_extra))


@dataclass
class Message:
    """A message in flight between two sites.

    ``span`` carries the causal context across the hop: the network opens a
    ``net.send`` span as a child of whatever was active at send time, and
    the receiving shell parents its processing span on it — which is how a
    cross-site propagation chain stays one connected trace tree.
    """

    src: str
    dst: str
    payload: Any
    sent_at: Ticks
    deliver_at: Ticks
    span: Optional[Span] = None


@dataclass
class _SiteEntry:
    handler: Callable[[Message], None]


class Network:
    """Sites plus per-channel FIFO message delivery.

    Sites register a single inbound handler.  Sending is fire-and-forget; the
    network samples a latency, applies any metric-failure slowdown of the
    *sending* site, clamps for FIFO, and schedules the delivery.  Messages to
    or from a logically-failed site are dropped (the site is dead).
    """

    def __init__(
        self,
        sim: Simulator,
        rng_registry: RngRegistry | None = None,
        default_latency: LatencyModel | None = None,
        failure_plan: FailurePlan | None = None,
        in_order: bool = True,
        obs: Instrumentation | None = None,
    ) -> None:
        self.sim = sim
        self.rngs = rng_registry or RngRegistry()
        self.default_latency = default_latency or FixedLatency(seconds(0.01))
        self.failure_plan = failure_plan or FailurePlan()
        self.in_order = in_order
        self.obs = obs or Instrumentation()
        self._sites: dict[str, _SiteEntry] = {}
        self._channel_latency: dict[tuple[str, str], LatencyModel] = {}
        self._last_delivery: dict[tuple[str, str], Ticks] = {}
        # Per-channel instruments, resolved once on first use so the send
        # path pays dict-lookup + attribute-increment, nothing more.
        self._channel_metrics: dict[
            tuple[str, str], tuple[Counter, Histogram, Gauge]
        ] = {}
        self.messages_sent = 0
        self.messages_dropped = 0

    def _metrics_for(
        self, channel: tuple[str, str]
    ) -> tuple[Counter, Histogram, Gauge]:
        cached = self._channel_metrics.get(channel)
        if cached is None:
            src, dst = channel
            registry = self.obs.metrics
            cached = (
                registry.counter("net_messages", src=src, dst=dst),
                registry.histogram("net_latency", src=src, dst=dst),
                registry.gauge("net_in_flight", src=src, dst=dst),
            )
            self._channel_metrics[channel] = cached
        return cached

    def register_site(self, site: str, handler: Callable[[Message], None]) -> None:
        """Register ``site`` with its inbound-message handler."""
        if site in self._sites:
            raise ValueError(f"site already registered: {site}")
        self._sites[site] = _SiteEntry(handler=handler)

    def has_site(self, site: str) -> bool:
        """Whether ``site`` is registered."""
        return site in self._sites

    @property
    def sites(self) -> list[str]:
        """Registered site names, in registration order."""
        return list(self._sites)

    def set_channel_latency(self, src: str, dst: str, model: LatencyModel) -> None:
        """Override the latency model for the (src, dst) channel."""
        self._channel_latency[(src, dst)] = model

    def _latency_for(self, src: str, dst: str) -> Ticks:
        model = self._channel_latency.get((src, dst), self.default_latency)
        rng = self.rngs.stream(f"net:{src}->{dst}")
        return model.sample(rng)

    def send(self, src: str, dst: str, payload: Any) -> Message | None:
        """Send ``payload`` from ``src`` to ``dst``.

        Returns the in-flight :class:`Message`, or ``None`` if it was dropped
        because either endpoint is logically failed at send time.  Local
        (same-site) sends still go through the queue with zero base latency so
        that processing stays strictly event-ordered.
        """
        if src not in self._sites:
            raise ValueError(f"unknown source site: {src}")
        if dst not in self._sites:
            raise ValueError(f"unknown destination site: {dst}")
        now = self.sim.now
        self.messages_sent += 1
        if self.failure_plan.logically_failed(src, now) or (
            self.failure_plan.logically_failed(dst, now)
        ):
            self.messages_dropped += 1
            return None
        latency = 0 if src == dst else self._latency_for(src, dst)
        slowdown = self.failure_plan.slowdown_at(src, now)
        latency = round(latency * slowdown)
        deliver_at = now + latency
        channel = (src, dst)
        if self.in_order:
            deliver_at = max(deliver_at, self._last_delivery.get(channel, 0))
        self._last_delivery[channel] = deliver_at
        in_flight = self._metrics_for(channel)[2]
        in_flight.inc()
        message = Message(
            src=src, dst=dst, payload=payload, sent_at=now, deliver_at=deliver_at
        )
        if self.obs.enabled:
            if self.obs.flight is not None:
                self.obs.flight.record(
                    src, "net.send", now, f"->{dst} {type(payload).__name__}"
                )
            if self.obs.tracer.enabled:
                # The hop is fully determined at send time, so the span
                # opens and closes here; the receiver parents onto it via
                # the message.
                tracer = self.obs.tracer
                span = tracer.start(
                    "net.send",
                    src,
                    now,
                    src=src,
                    dst=dst,
                    payload=type(payload).__name__,
                )
                tracer.finish(span, deliver_at)
                message.span = span
        self.sim.at(deliver_at, lambda: self._deliver(message))
        return message

    def _deliver(self, message: Message) -> None:
        delivered, latency_hist, in_flight = self._metrics_for(
            (message.src, message.dst)
        )
        in_flight.dec()
        if self.failure_plan.logically_failed(message.dst, self.sim.now):
            self.messages_dropped += 1
            return
        # Channel metrics count *deliveries*: a message dropped at a failed
        # destination must not inflate the channel's message count, and the
        # latency histogram records only hops that actually completed.
        delivered.value += 1
        latency_hist.observe(message.deliver_at - message.sent_at)
        if self.obs.enabled and self.obs.flight is not None:
            self.obs.flight.record(
                message.dst,
                "net.recv",
                self.sim.now,
                f"<-{message.src} {type(message.payload).__name__}",
            )
        if message.span is not None:
            tracer = self.obs.tracer
            tracer.push(message.span)
            try:
                self._sites[message.dst].handler(message)
            finally:
                tracer.pop()
        else:
            self._sites[message.dst].handler(message)
