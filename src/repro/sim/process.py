"""Process-level helpers on top of the raw scheduler.

Currently one building block: :class:`PeriodicTimer`, the source of the
paper's periodic ``P(p)`` events (Section 3.1.1, "Periodic Notify Interface",
and the polling strategy of Section 4.2.3).
"""

from __future__ import annotations

from typing import Callable

from repro.core.timebase import Ticks
from repro.sim.scheduler import ScheduledEvent, Simulator


class PeriodicTimer:
    """Fires a callback every ``period`` ticks until stopped.

    The first firing is at ``start + period`` (a ``P(p)`` event occurs every
    ``p`` seconds *by definition*; we take the epoch to be the timer's start
    time).  Use ``fire_immediately=True`` to also fire at start.
    """

    def __init__(
        self,
        sim: Simulator,
        period: Ticks,
        callback: Callable[[], None],
        fire_immediately: bool = False,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive: {period}")
        self.sim = sim
        self.period = period
        self.callback = callback
        self._pending: ScheduledEvent | None = None
        self._stopped = False
        self.fire_count = 0
        if fire_immediately:
            self._pending = sim.after(0, self._fire)
        else:
            self._pending = sim.after(period, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.fire_count += 1
        self._pending = self.sim.after(self.period, self._fire)
        self.callback()

    def stop(self) -> None:
        """Stop the timer; no further firings occur."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
