"""The discrete-event scheduler and virtual clock.

A single :class:`Simulator` drives everything in a scenario: raw information
sources, CM-Translators, CM-Shells, workload generators, and applications all
schedule callbacks on it.  Time is integer microseconds
(:mod:`repro.core.timebase`), and ties are broken by insertion order, so runs
are fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.core.timebase import Ticks, to_seconds


@dataclass(order=True)
class ScheduledEvent:
    """A pending callback in the simulator's queue.

    Instances are returned by :meth:`Simulator.at` / :meth:`Simulator.after`
    and can be cancelled.  Ordering is (time, sequence number), which makes
    simultaneous events run in the order they were scheduled.
    """

    time: Ticks
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    _sim: "Simulator | None" = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already run)."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._note_cancelled()


class Simulator:
    """Deterministic discrete-event loop with an integer-microsecond clock."""

    def __init__(self) -> None:
        self._now: Ticks = 0
        self._queue: list[ScheduledEvent] = []
        self._cancelled_pending = 0
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.events_processed = 0
        #: High watermark of pending callbacks — the simulation analogue of
        #: a server's run-queue depth, surfaced by the run report.
        self.max_queue_depth = 0

    @property
    def now(self) -> Ticks:
        """Current virtual time in ticks."""
        return self._now

    @property
    def now_seconds(self) -> float:
        """Current virtual time in float seconds (reporting convenience)."""
        return to_seconds(self._now)

    def at(self, time: Ticks, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` to run at absolute virtual time ``time``.

        Scheduling in the past is an error: the framework's rules only ever
        produce future (or simultaneous) events.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} ticks; current time is {self._now}"
            )
        event = ScheduledEvent(
            time=time, seq=next(self._seq), callback=callback, _sim=self
        )
        heapq.heappush(self._queue, event)
        if len(self._queue) > self.max_queue_depth:
            self.max_queue_depth = len(self._queue)
        return event

    def after(self, delay: Ticks, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` ticks from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self._now + delay, callback)

    def stop(self) -> None:
        """Stop the run loop after the currently executing callback."""
        self._stopped = True

    def _note_cancelled(self) -> None:
        """Heap hygiene: compact when cancelled entries dominate the queue.

        Cancelled events stay in the heap as tombstones until they surface
        at the top; a workload that schedules and cancels aggressively
        (e.g. timeout guards) would otherwise grow the queue without bound.
        When more than half the queue is tombstones, rebuilding it is O(n)
        and amortizes to O(1) per cancellation.
        """
        self._cancelled_pending += 1
        if self._cancelled_pending * 2 > len(self._queue):
            self._queue = [e for e in self._queue if not e.cancelled]
            heapq.heapify(self._queue)
            self._cancelled_pending = 0

    def peek(self) -> Ticks | None:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
            self._cancelled_pending -= 1
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the single next event.  Returns ``False`` if none remained."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            self._now = event.time
            self.events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Ticks | None = None) -> None:
        """Run events until the queue drains or virtual time passes ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until`` at
        the end of the run even if the last event fired earlier, so that
        "state at end of run" queries are well defined.
        """
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        try:
            while not self._stopped:
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
