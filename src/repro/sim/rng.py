"""Named, seeded random streams.

Workload generators, latency models, and failure plans each draw from their
own stream so that, e.g., changing the update workload does not perturb
network latencies.  Streams are derived deterministically from a master seed
and a stream name.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit stream seed from a master seed and a stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory and cache of named :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.master_seed, name))
        return self._streams[name]
