"""Failure injection for the two failure classes of Section 5.

The paper classifies interface failures into:

- **metric failures** — the database still performs the promised actions, but
  not within the promised time bound (overload, transient crash with
  recovery).  We model these as windows during which a site's service and/or
  message latencies are inflated by a factor.
- **logical failures** — the interface statements stop holding altogether
  (catastrophic failure).  We model these as windows during which a site
  drops its work entirely: operations fail, notifications are lost.

A third injectable behaviour, **silent notify loss**, models the legacy-system
discussion in Section 5: notifications are dropped *without any error being
observable*, which is exactly the case in which the paper says a Notify
Interface should not be trusted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.timebase import Ticks


class FailureKind(Enum):
    """What kind of misbehaviour a failure window induces."""

    #: Delay-bound violations only; work still completes (Section 5, "metric").
    METRIC = "metric"
    #: Interface contract broken: operations fail / events lost ("logical").
    LOGICAL = "logical"
    #: Notifications silently dropped with no detectable error.
    SILENT_NOTIFY_LOSS = "silent-notify-loss"


@dataclass(frozen=True)
class FailureWindow:
    """One failure episode at one site.

    ``slowdown`` only matters for :attr:`FailureKind.METRIC`: service times
    and outgoing-message latencies at the site are multiplied by it.
    ``drop_probability`` only matters for silent notify loss.
    """

    site: str
    kind: FailureKind
    start: Ticks
    end: Ticks
    slowdown: float = 10.0
    drop_probability: float = 1.0

    def __post_init__(self) -> None:
        if self.start >= self.end:
            raise ValueError(f"empty failure window [{self.start}, {self.end})")
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1: {self.slowdown}")
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError(f"bad drop probability: {self.drop_probability}")

    def active_at(self, time: Ticks) -> bool:
        """Whether the window covers virtual time ``time``."""
        return self.start <= time < self.end


@dataclass
class FailurePlan:
    """The full failure schedule for a scenario (empty by default)."""

    windows: list[FailureWindow] = field(default_factory=list)

    def add(self, window: FailureWindow) -> None:
        """Append a failure window to the plan."""
        self.windows.append(window)

    def windows_at(self, site: str, time: Ticks) -> list[FailureWindow]:
        """All windows covering ``site`` at ``time``."""
        return [w for w in self.windows if w.site == site and w.active_at(time)]

    def slowdown_at(self, site: str, time: Ticks) -> float:
        """Combined metric slowdown factor in effect at ``site``."""
        factor = 1.0
        for window in self.windows_at(site, time):
            if window.kind is FailureKind.METRIC:
                factor *= window.slowdown
        return factor

    def logically_failed(self, site: str, time: Ticks) -> bool:
        """Whether ``site`` is logically failed (contract broken) at ``time``."""
        return any(
            w.kind is FailureKind.LOGICAL for w in self.windows_at(site, time)
        )

    def notify_drop_probability(self, site: str, time: Ticks) -> float:
        """Probability that a notification from ``site`` is silently lost."""
        probability = 0.0
        for window in self.windows_at(site, time):
            if window.kind is FailureKind.SILENT_NOTIFY_LOSS:
                probability = max(probability, window.drop_probability)
        return probability
