"""Deterministic discrete-event simulation substrate.

The paper's framework is defined in terms of event times and delay bounds
(``E1 -> [delta] E2`` means the right-hand event occurs within ``delta``
seconds of the left-hand one).  The original toolkit ran over a real network
against live databases; this reproduction replaces that environment with a
discrete-event simulator so that delays, failures, and message orderings are
exact, controllable, and reproducible.

Key pieces:

- :class:`~repro.sim.scheduler.Simulator` — the event loop and virtual clock.
- :class:`~repro.sim.network.Network` — sites and per-channel in-order message
  delivery with pluggable latency models (Appendix A property 7 of the paper
  requires in-order delivery; the network enforces it, and can be told not to
  for ablation experiments).
- :class:`~repro.sim.process.PeriodicTimer` — generator of the paper's
  periodic ``P(p)`` events.
- :mod:`repro.sim.failures` — injection of the paper's two failure classes
  (metric = delay-bound violations, logical = interface contract violations).
- :mod:`repro.sim.rng` — named, seeded random streams so workloads are
  reproducible and independently perturbable.
"""

from repro.sim.scheduler import Simulator, ScheduledEvent
from repro.sim.network import (
    Network,
    Message,
    LatencyModel,
    FixedLatency,
    UniformLatency,
    ExponentialLatency,
)
from repro.sim.process import PeriodicTimer
from repro.sim.rng import RngRegistry
from repro.sim.failures import (
    FailureKind,
    FailureWindow,
    FailurePlan,
)

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "Network",
    "Message",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "ExponentialLatency",
    "PeriodicTimer",
    "RngRegistry",
    "FailureKind",
    "FailureWindow",
    "FailurePlan",
]
