"""Length-prefixed JSON framing over asyncio streams.

The wire format is deliberately boring: each frame is a 4-byte big-endian
payload length followed by that many bytes of UTF-8 JSON (one JSON-RPC
message, :mod:`repro.runtime.jsonrpc`).  Length-prefixing (rather than
newline-delimiting) keeps the framing independent of payload content and
makes partial-read handling explicit.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any

from repro.runtime.jsonrpc import (
    PARSE_ERROR,
    Message,
    ProtocolError,
    parse_message,
)

_HEADER = struct.Struct(">I")

#: Upper bound on one frame; anything larger is a protocol violation, not
#: a message (protects against desynchronized framing reading garbage
#: lengths).
MAX_FRAME_BYTES = 8 * 1024 * 1024


def encode_frame(message: Message | dict[str, Any]) -> bytes:
    """One wire frame: 4-byte big-endian length + UTF-8 JSON body."""
    wire = message.to_wire() if hasattr(message, "to_wire") else message
    body = json.dumps(wire, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}",
            code=PARSE_ERROR,
        )
    return _HEADER.pack(len(body)) + body


async def read_frame(reader: asyncio.StreamReader) -> Message | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"declared frame length {length} exceeds {MAX_FRAME_BYTES}",
            code=PARSE_ERROR,
        )
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    try:
        raw = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}", code=PARSE_ERROR) from exc
    return parse_message(raw)


class FrameStream:
    """A bidirectional framed-message stream over one TCP connection."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer

    async def send(self, message: Message | dict[str, Any]) -> None:
        """Write one frame and flush it."""
        self.writer.write(encode_frame(message))
        await self.writer.drain()

    def send_nowait(self, message: Message | dict[str, Any]) -> None:
        """Write one frame without awaiting the drain (caller flushes)."""
        self.writer.write(encode_frame(message))

    async def drain(self) -> None:
        await self.writer.drain()

    async def recv(self) -> Message | None:
        """Read one frame; ``None`` on EOF."""
        return await read_frame(self.reader)

    async def close(self) -> None:
        """Close the underlying connection, tolerating already-dead peers."""
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass

    @classmethod
    async def open(cls, host: str, port: int) -> "FrameStream":
        """Dial a listening endpoint."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)
