"""ProcRuntime: every CM-Shell as its own OS process, off the GIL.

``Scenario(runtime="proc")`` deploys the scenario the way the paper's
Figure 1 draws it: one constraint-manager shell per *process*, each with
its own Python interpreter, its own store/translators/rule programs, and
a real loopback-TCP JSON-RPC wire between them (the same
:mod:`repro.runtime.gateway` endpoints the async runtime uses — each
child binds only its own site and dials its peers through injected
ports).  Nothing crosses a process boundary by reference: rule firings,
failure notices, trigger provenance chains, and workload writes all
travel through the by-value codec (:mod:`repro.runtime.codec`).

The architecture is parent-as-coordinator, children-as-shells:

- The **parent** process runs the scenario's bootstrap normally (so the
  test/experiment keeps ordinary objects to inspect: ``cm``, shells,
  translators, the trace) but its shells are *muted* — timers stopped,
  spontaneous writes and failure reports forwarded to the authoritative
  child for that site, and its network stub refuses ``send``.  Workloads
  and scheduled callbacks run **in the parent only**, against the
  parent's wall clock, and each application write is shipped to the
  owning site's process as a ``cm.apply`` notification.
- Each **child** process re-runs the same bootstrap callable (shipped by
  qualified name through the ``spawn`` start method) against a
  :class:`_ChildRuntime`, mutes every shell but its own, opens its wire
  endpoint once, and then serves the parent's control protocol: ``cm.run``
  advances its wall clock to the horizon (anchored to a shared
  ``time.time()`` epoch so all clocks advance in lockstep), ``cm.drain``
  is the cross-process quiesce barrier (wait until ``frames_seen`` per
  inbound channel catches up with the senders' reported
  ``frames_written``), and ``cm.harvest`` returns the child's own-site
  trace events, failure log, and counters by value.
- After the horizon the parent **merges**: harvested events are decoded
  (rules re-resolved against the parent's own installed rule objects,
  sequence numbers preserved — event identity across processes is
  ``(site, seq)``) and re-recorded into the parent trace in global time
  order, so ``check_guarantees``/``validate_trace`` run unchanged over
  one coherent execution trace.

Supervision: the parent pings children between runs, monitors process
liveness during runs, and harvests exit codes.  A child that dies
mid-run becomes a :class:`~repro.cm.failures.FailureNotice` (kind
``logical``, the paper's Section 5 classification for a site that stops
responding) at the parent shell — the run completes without it instead
of hanging.
"""

from __future__ import annotations

import asyncio
import gc
import multiprocessing
import os
import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.core.errors import ConfigurationError
from repro.core.items import DataItemRef
from repro.core.timebase import Ticks
from repro.runtime.channels import (
    WireFaultPlan,
    decode_payload,
    encode_payload,
)
from repro.runtime.clock import WallClock
from repro.runtime.codec import (
    MAX_TRIGGER_DEPTH,
    decode_event,
    decode_value,
    encode_event,
    encode_value,
)
from repro.runtime.gateway import Gateway, WireNetwork
from repro.runtime.jsonrpc import (
    ErrorResponse,
    Notification,
    ProtocolError,
    Request,
    Response,
)
from repro.runtime.transport import FrameStream
from repro.sim.failures import FailureKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cm.manager import Scenario


# Control-protocol methods (parent <-> child, one TCP stream per child).
REGISTER_METHOD = "cm.register"
PORTS_METHOD = "cm.ports"
RUN_METHOD = "cm.run"
APPLY_METHOD = "cm.apply"
REPORT_FAILURE_METHOD = "cm.report_failure"
DRAIN_METHOD = "cm.drain"
HARVEST_METHOD = "cm.harvest"
PING_METHOD = "cm.ping"
SHUTDOWN_METHOD = "cm.shutdown"

_SENDER_STAT_KEYS = (
    "frames_written",
    "frames_duplicated",
    "frames_reordered",
    "frames_coalesced",
    "frames_dropped_dead",
)
_RECEIVER_STAT_KEYS = (
    "frames_seen",
    "duplicates_discarded",
    "resequencer_high_water",
)


class ProcRuntimeError(RuntimeError):
    """The process runtime failed to make progress (watchdog expired)."""


def trace_rule_resolver(shells: dict[str, Any]) -> Callable[[str], Any]:
    """A rule-name resolver covering everything a trace can attribute.

    Installed rule programs (local and remote-registered) plus the
    translators' interface rules — decoded events re-resolve to these
    exact objects, so provenance indexes keyed by rule identity keep
    working after a cross-process merge.
    """
    rules: dict[str, Any] = {}
    for shell in shells.values():
        rules.update(shell._rules_by_name)
        for name, (rule, _program) in shell._remote_rules.items():
            rules.setdefault(name, rule)
        seen: set[int] = set()
        for translator in shell.translators.values():
            if id(translator) in seen:
                continue
            seen.add(id(translator))
            for spec in translator.offered_interfaces().specs:
                rule = getattr(spec, "rule", None)
                if rule is not None:
                    rules.setdefault(rule.name, rule)
    return rules.get


class ProcNetwork:
    """The parent's transport stub: a topology mirror that never sends.

    The parent's shells register here during bootstrap (so the wiring —
    sites, peers, translators, installed rules — exists as inspectable
    objects), but all real traffic happens between the shell processes.
    ``send`` raising loudly is the contract check: once the parent is
    muted, nothing in-parent should be generating messages.
    """

    def __init__(self, clock: WallClock, default_latency: Any = None) -> None:
        self.clock = clock
        #: Mirrors the scenario's default latency model so static analysis
        #: (CM-Lint feasibility bounds) sees the same topology costs the
        #: children wire up for themselves.
        self.default_latency = default_latency
        self._sites: dict[str, Callable[[Any], None]] = {}
        self._channel_latency: dict[tuple[str, str], Any] = {}
        self.messages_sent = 0
        self.messages_dropped = 0
        self.messages_delivered = 0
        #: Per-channel wire counters merged from the children at harvest:
        #: sender-side fields come from the channel's source process,
        #: receiver-side fields from its destination process.
        self.merged_channel_stats: dict[str, dict[str, int]] = {}

    @property
    def sim(self) -> WallClock:  # parity: Network exposes .sim
        return self.clock

    def register_site(self, site: str, handler: Callable[[Any], None]) -> None:
        if site in self._sites:
            raise ValueError(f"site already registered: {site}")
        self._sites[site] = handler

    def has_site(self, site: str) -> bool:
        return site in self._sites

    @property
    def sites(self) -> list[str]:
        return list(self._sites)

    def set_channel_latency(self, src: str, dst: str, model: Any) -> None:
        # Recorded for the mirror's completeness; the children sample
        # latency from their own (identically seeded) scenario wiring.
        self._channel_latency[(src, dst)] = model

    def send(self, src: str, dst: str, payload: Any) -> Any:
        raise ConfigurationError(
            "the proc runtime's parent process is a coordination mirror; "
            f"nothing should send {src!r}->{dst!r} here — messages move "
            "between the shell processes"
        )

    def channel_stats(self) -> dict[str, dict[str, int]]:
        """Per-channel wire counters, merged from the shell processes."""
        return {
            channel: dict(stats)
            for channel, stats in sorted(self.merged_channel_stats.items())
        }


@dataclass
class _Child:
    """Parent-side state for one shell process."""

    site: str
    process: Any = None
    stream: FrameStream | None = None
    outbox: Any = None  # asyncio.Queue, created on the parent loop
    wire_port: int = 0
    pid: int | None = None
    alive: bool = True
    exit_code: int | None = None
    restarts: int = 0
    writing: bool = False
    reader_task: Any = None
    writer_task: Any = None


class ProcRuntime:
    """The multi-process runtime (``Scenario(runtime="proc")``).

    Needs a *bootstrap*: a picklable module-level callable that rebuilds
    the scenario wiring when called as ``bootstrap(**kwargs, runtime=rt)``
    and returns either an object with a ``cm`` attribute (e.g. the salary
    scenario bundle) or the :class:`~repro.cm.manager.ConstraintManager`
    itself.  Scenario builders hand it over through
    :meth:`accept_bootstrap` (``build_salary_scenario`` does); bespoke
    scenarios pass ``bootstrap=``/``bootstrap_kwargs=`` directly.
    """

    name = "proc"

    def __init__(
        self,
        bootstrap: Callable[..., Any] | None = None,
        bootstrap_kwargs: dict[str, Any] | None = None,
        time_scale: float = 20.0,
        faults: WireFaultPlan | None = None,
        host: str = "127.0.0.1",
        max_wall_seconds: float = 120.0,
        drain_wall: float = 5.0,
        register_wall: float = 30.0,
        epoch_lead: float = 0.25,
    ) -> None:
        self.bootstrap = bootstrap
        self.bootstrap_kwargs = dict(bootstrap_kwargs or {})
        self.time_scale = time_scale
        self.faults = faults
        self.host = host
        self.max_wall_seconds = max_wall_seconds
        self.drain_wall = drain_wall
        self.register_wall = register_wall
        #: How far in the future (wall seconds) the shared clock epoch is
        #: placed at each ``cm.run``: every process must *activate* its
        #: clock before virtual time starts moving, or activation lag
        #: would show up as skipped virtual time.
        self.epoch_lead = epoch_lead
        self.clock: WallClock | None = None
        self.network: ProcNetwork | None = None
        self._scenario: "Scenario | None" = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.Server | None = None
        self._children: dict[str, _Child] = {}
        self._pending: dict[tuple[str, int], asyncio.Future] = {}
        self._next_id = 1
        self._register_event: asyncio.Event | None = None
        self._started = False
        self._closing = False
        self._shells: dict[str, Any] = {}
        self._rule_resolver: Callable[[str], Any] | None = None
        # Cumulative-counter snapshots already applied to parent shells.
        self._stats_applied: dict[str, dict[str, int]] = {}
        self._fired_applied: dict[str, dict[str, int]] = {}
        self._net_by_site: dict[str, dict[str, int]] = {}
        self._worker_report: dict[str, dict] = {}

    # -- Runtime protocol -------------------------------------------------------

    def accept_bootstrap(
        self, bootstrap: Callable[..., Any], kwargs: dict[str, Any]
    ) -> None:
        """Scenario builders hand over their own (picklable) recipe here.

        First one wins: an explicitly constructed ProcRuntime keeps the
        bootstrap it was given.
        """
        if self.bootstrap is None:
            self.bootstrap = bootstrap
            self.bootstrap_kwargs = dict(kwargs)

    def build(self, scenario: "Scenario") -> tuple[WallClock, ProcNetwork]:
        self._scenario = scenario
        self.clock = WallClock(time_scale=self.time_scale)
        self.network = ProcNetwork(self.clock, scenario.default_latency)
        return self.clock, self.network

    def run(self, scenario: "Scenario", until: Ticks) -> None:
        """Advance every shell process (and the parent workload) to ``until``."""
        if self.clock is None or self.network is None:
            raise ProcRuntimeError("runtime was never built for a scenario")
        if self.bootstrap is None:
            raise ConfigurationError(
                "the proc runtime needs a picklable bootstrap to rebuild "
                "the scenario inside each shell process; build the scenario "
                "through a builder that calls runtime.accept_bootstrap(...) "
                "(build_salary_scenario does) or pass bootstrap= explicitly"
            )
        loop = self._ensure_loop()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            loop.run_until_complete(self._session(scenario, until))
        finally:
            if gc_was_enabled:
                gc.enable()
                gc.collect()

    def shutdown(self, scenario: "Scenario | None" = None) -> None:
        """Orderly teardown: cm.shutdown to every live child, then join."""
        self._closing = True
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.run_until_complete(self._shutdown_session())
            finally:
                loop.close()
        self._loop = None
        self._started = False
        for child in self._children.values():
            process = child.process
            if process is None:
                continue
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
            child.alive = False
            child.exit_code = process.exitcode

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        for child in getattr(self, "_children", {}).values():
            process = child.process
            try:
                if process is not None and process.is_alive():
                    process.terminate()
            except Exception:
                pass

    # -- supervision / reporting ------------------------------------------------

    def process_info(self) -> dict[str, dict[str, Any]]:
        """Live pid/exit/restart facts per shell process."""
        info: dict[str, dict[str, Any]] = {}
        for site, child in sorted(self._children.items()):
            process = child.process
            alive = bool(process is not None and process.is_alive())
            exit_code = child.exit_code
            if exit_code is None and process is not None and not alive:
                exit_code = process.exitcode
            info[site] = {
                "pid": child.pid,
                "alive": alive,
                "exit_code": exit_code,
                "restarts": child.restarts,
            }
        return info

    def process_report(self) -> dict[str, Any]:
        """The run report's ``processes`` section."""
        return {
            "enabled": True,
            "runtime": self.name,
            "sites": self.process_info(),
            "workers": {
                site: dict(stats)
                for site, stats in sorted(self._worker_report.items())
            },
        }

    # -- parent internals -------------------------------------------------------

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        # One persistent loop across run() calls: the control server and
        # the child streams live on it, so asyncio.run's loop-per-call
        # would orphan them between runs.
        if self._loop is None or self._loop.is_closed():
            self._loop = asyncio.new_event_loop()
        return self._loop

    def _live_sites(self) -> list[str]:
        return [
            site
            for site, child in self._children.items()
            if child.alive and child.stream is not None
        ]

    async def _session(self, scenario: "Scenario", until: Ticks) -> None:
        try:
            await asyncio.wait_for(
                self._advance(scenario, until), timeout=self.max_wall_seconds
            )
        except asyncio.TimeoutError:  # noqa: UP041 — alias only on 3.11+
            raise ProcRuntimeError(
                f"proc runtime made no progress to horizon {until} within "
                f"{self.max_wall_seconds} wall seconds"
            ) from None

    async def _advance(self, scenario: "Scenario", until: Ticks) -> None:
        assert self.clock is not None and self.network is not None
        if not self._started:
            await self._start_children()
            self._mute_parent()
            self._started = True
        else:
            await self._ping_children()
        epoch = _time.time() + self.epoch_lead
        self.clock.sync_epoch = epoch
        monitor = asyncio.create_task(self._monitor())
        try:
            run_futures = {
                site: self._request(
                    site, RUN_METHOD, {"until": until, "epoch": epoch}
                )
                for site in self._live_sites()
            }
            await self.clock.run_until(until)
            await self._flush_outboxes()
            # Per-channel cumulative frames written, as reported by each
            # live sender after its own horizon + sender flush.
            written: dict[str, int] = {}
            for site, future in run_futures.items():
                result = await future  # None when the child died mid-run
                if result is None:
                    continue
                for channel, count in result.get("frames_written", {}).items():
                    written[channel] = count
            drain_futures = {}
            for site in self._live_sites():
                expected = {
                    channel: count
                    for channel, count in written.items()
                    if channel.split("->", 1)[1] == site
                }
                drain_futures[site] = self._request(
                    site, DRAIN_METHOD, {"expected": expected}
                )
            for future in drain_futures.values():
                await future
            harvest_futures = {
                site: self._request(site, HARVEST_METHOD, {})
                for site in self._live_sites()
            }
            harvests: dict[str, dict[str, Any]] = {}
            for site, future in harvest_futures.items():
                result = await future
                if result is not None:
                    harvests[site] = result
            self._merge(scenario, harvests)
        finally:
            monitor.cancel()

    async def _start_children(self) -> None:
        assert self.network is not None
        loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._accept_control, self.host, 0
        )
        control_port = self._server.sockets[0].getsockname()[1]
        self._register_event = asyncio.Event()
        context = multiprocessing.get_context("spawn")
        for site in self.network.sites:
            child = _Child(site=site)
            child.process = context.Process(
                target=_child_main,
                args=(
                    site,
                    self.host,
                    control_port,
                    self.bootstrap,
                    self.bootstrap_kwargs,
                    self.time_scale,
                    self.faults,
                    self.drain_wall,
                ),
                daemon=True,
                name=f"cm-shell-{site}",
            )
            self._children[site] = child
            child.process.start()
            child.pid = child.process.pid
        deadline = loop.time() + self.register_wall
        while any(c.stream is None for c in self._children.values()):
            for site, child in self._children.items():
                if child.stream is None and not child.process.is_alive():
                    raise ProcRuntimeError(
                        f"shell process for site {site!r} died during "
                        f"startup (exit code {child.process.exitcode})"
                    )
            if loop.time() > deadline:
                missing = [
                    s for s, c in self._children.items() if c.stream is None
                ]
                raise ProcRuntimeError(
                    f"timed out waiting for shell processes to register: "
                    f"{missing}"
                )
            try:
                await asyncio.wait_for(
                    self._register_event.wait(), timeout=0.1
                )
            except asyncio.TimeoutError:
                pass
            self._register_event.clear()
        ports = {
            site: child.wire_port for site, child in self._children.items()
        }
        await asyncio.gather(
            *(
                self._request(site, PORTS_METHOD, {"ports": ports})
                for site in self._live_sites()
            )
        )

    async def _accept_control(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        stream = FrameStream(reader, writer)
        try:
            hello = await stream.recv()
        except ProtocolError:
            await stream.close()
            return
        if not isinstance(hello, Request) or hello.method != REGISTER_METHOD:
            await stream.close()
            return
        site = hello.params.get("site")
        child = self._children.get(site)
        if child is None or child.stream is not None:
            await stream.send(
                ErrorResponse(
                    id=hello.id, code=-32600, message=f"unexpected site {site!r}"
                )
            )
            await stream.close()
            return
        child.stream = stream
        child.outbox = asyncio.Queue()
        child.wire_port = int(hello.params.get("wire_port", 0))
        child.pid = int(hello.params.get("pid", child.pid or 0)) or child.pid
        await stream.send(Response(id=hello.id, result={"site": site}))
        child.reader_task = asyncio.create_task(self._read_loop(child))
        child.writer_task = asyncio.create_task(self._write_loop(child))
        if self._register_event is not None:
            self._register_event.set()

    async def _read_loop(self, child: _Child) -> None:
        while True:
            try:
                frame = await child.stream.recv()
            except ProtocolError:
                frame = None
            if frame is None:
                if not self._closing:
                    self._mark_dead(child.site)
                return
            if isinstance(frame, Response):
                future = self._pending.pop((child.site, frame.id), None)
                if future is not None and not future.done():
                    future.set_result(frame.result)
            elif isinstance(frame, ErrorResponse):
                future = self._pending.pop((child.site, frame.id), None)
                if future is not None and not future.done():
                    future.set_exception(
                        ProcRuntimeError(
                            f"shell process {child.site!r}: {frame.message}"
                        )
                    )

    async def _write_loop(self, child: _Child) -> None:
        while True:
            message = await child.outbox.get()
            child.writing = True
            try:
                await child.stream.send(message)
            except (ConnectionResetError, BrokenPipeError, RuntimeError, OSError):
                if not self._closing:
                    self._mark_dead(child.site)
                return
            finally:
                child.writing = False

    def _request(
        self, site: str, method: str, params: dict[str, Any]
    ) -> asyncio.Future:
        assert self._loop is not None
        future = self._loop.create_future()
        child = self._children.get(site)
        if child is None or not child.alive or child.stream is None:
            future.set_result(None)
            return future
        request_id = self._next_id
        self._next_id += 1
        self._pending[(site, request_id)] = future
        child.outbox.put_nowait(Request(method, params, id=request_id))
        return future

    def _notify(self, site: str, method: str, params: dict[str, Any]) -> None:
        child = self._children.get(site)
        if child is None or not child.alive or child.outbox is None:
            return  # writes to a failed site are lost, like any send to it
        child.outbox.put_nowait(Notification(method, params))

    async def _flush_outboxes(self, wall_budget: float = 5.0) -> None:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + wall_budget
        while loop.time() < deadline:
            busy = any(
                child.alive
                and child.outbox is not None
                and (not child.outbox.empty() or child.writing)
                for child in self._children.values()
            )
            if not busy:
                return
            await asyncio.sleep(0.002)

    async def _monitor(self) -> None:
        """Liveness watch during a run: a dead child must not hang the run."""
        while True:
            await asyncio.sleep(0.1)
            for site, child in list(self._children.items()):
                if child.alive and not child.process.is_alive():
                    self._mark_dead(site)

    def _mark_dead(self, site: str) -> None:
        child = self._children.get(site)
        if child is None or not child.alive:
            return
        child.alive = False
        child.exit_code = (
            child.process.exitcode if child.process is not None else None
        )
        for key, future in list(self._pending.items()):
            if key[0] == site:
                self._pending.pop(key, None)
                if not future.done():
                    future.set_result(None)
        if child.writer_task is not None:
            child.writer_task.cancel()
        shell = self._shells.get(site)
        if shell is not None and self.clock is not None:
            from repro.cm.failures import FailureNotice

            shell._handle_failure(
                FailureNotice(
                    site=site,
                    source_name="cm-shell-process",
                    kind=FailureKind.LOGICAL,
                    time=self.clock.now,
                    detail=(
                        f"shell process (pid {child.pid}) exited with code "
                        f"{child.exit_code}"
                    ),
                    recovered=False,
                )
            )

    async def _ping_children(self) -> None:
        futures = {
            site: self._request(site, PING_METHOD, {})
            for site in self._live_sites()
        }
        for site, future in futures.items():
            try:
                result = await asyncio.wait_for(future, timeout=5.0)
            except asyncio.TimeoutError:
                result = None
            if result is None:
                self._mark_dead(site)

    # -- parent muting ----------------------------------------------------------

    def _mute_parent(self) -> None:
        """Silence the parent's shells; forward their inputs to the children.

        After this, the parent wiring is a read-only mirror: timers are
        stopped, each translator's ``apply_spontaneous_write`` ships the
        write to the owning site's process (deletes ride the same method —
        a delete is a write of MISSING), and ``report_failure`` ships the
        notice to the site's process, whose shell logs it and relays it
        over the real wire.  Harvest replays everything back.
        """
        assert self.network is not None
        shells: dict[str, Any] = {}
        for site, handler in self.network._sites.items():
            shell = getattr(handler, "__self__", None)
            if shell is None:
                raise ConfigurationError(
                    f"proc runtime cannot mirror site {site!r}: its handler "
                    f"is not a CMShell method"
                )
            shells[site] = shell
        self._shells = shells
        for site, shell in shells.items():
            shell.stop_timers()
            self._wrap_shell(site, shell)
        self._rule_resolver = trace_rule_resolver(shells)

    def _wrap_shell(self, site: str, shell: Any) -> None:
        runtime = self

        def forward_failure(notice: Any, _site: str = site) -> None:
            runtime._notify(
                _site,
                REPORT_FAILURE_METHOD,
                {"site": _site, "notice": encode_payload(notice)},
            )

        shell.report_failure = forward_failure
        seen: set[int] = set()
        for translator in shell.translators.values():
            if id(translator) in seen:
                continue
            seen.add(id(translator))

            def forward_write(
                ref: DataItemRef, value: Any, _site: str = site
            ) -> None:
                runtime._notify(
                    _site,
                    APPLY_METHOD,
                    {
                        "family": ref.name,
                        "args": [encode_value(a) for a in ref.args],
                        "value": encode_value(value),
                    },
                )
                return None

            translator.apply_spontaneous_write = forward_write

    # -- harvest merge ----------------------------------------------------------

    def _merge(
        self, scenario: "Scenario", harvests: dict[str, dict[str, Any]]
    ) -> None:
        assert self.network is not None
        resolver = self._rule_resolver
        decoded = []
        for result in harvests.values():
            for data in result.get("events", ()):
                decoded.append(decode_event(data, resolver))
        decoded.sort(key=lambda event: (event.time, event.site, event.seq))
        trace = scenario.trace
        events = trace.events
        last = events[-1].time if events else 0
        for event in decoded:
            when = event.time if event.time > last else last
            trace.record(
                when,
                event.site,
                event.desc,
                rule=event.rule,
                trigger=event.trigger,
                seq=event.seq,
            )
            last = when
        for site, result in harvests.items():
            self._apply_shell_stats(site, result)
            self._replay_failures(site, result.get("failures", ()))
            self._merge_channel_stats(site, result.get("channels", {}))
            net = result.get("net")
            if net:
                self._net_by_site[site] = net
            batching = result.get("batching")
            if batching:
                self._worker_report[site] = batching
        network = self.network
        network.messages_sent = sum(
            n.get("messages_sent", 0) for n in self._net_by_site.values()
        )
        network.messages_dropped = sum(
            n.get("messages_dropped", 0) for n in self._net_by_site.values()
        )
        network.messages_delivered = sum(
            n.get("messages_delivered", 0) for n in self._net_by_site.values()
        )

    def _apply_shell_stats(self, site: str, result: dict[str, Any]) -> None:
        shell = self._shells.get(site)
        if shell is None:
            return
        stats = result.get("shell", {})
        previous = self._stats_applied.get(site, {})

        def delta(key: str) -> int:
            return stats.get(key, 0) - previous.get(key, 0)

        shell._m_events.value += delta("events_processed")
        shell._m_candidates.value += delta("candidates_considered")
        shell._m_fired.value += delta("rules_fired")
        shell._m_batches.value += delta("batches_processed")
        shell._m_batch_events.value += delta("batch_events")
        self._stats_applied[site] = dict(stats)
        fired = result.get("fired", {})
        fired_previous = self._fired_applied.get(site, {})
        for name, count in fired.items():
            counter = shell._fired_by_rule.get(name)
            if counter is not None:
                counter.value += count - fired_previous.get(name, 0)
        self._fired_applied[site] = dict(fired)

    def _replay_failures(self, site: str, failures: Any) -> None:
        # Replayed through _handle_failure (log + listeners, no re-relay):
        # the child's shell saw these — locally reported and peer-relayed
        # alike — so the matching parent shell mirrors its log exactly,
        # and the guarantee board deduplicates by notice value.
        shell = self._shells.get(site)
        if shell is None:
            return
        for data in failures:
            shell._handle_failure(decode_payload(data))

    def _merge_channel_stats(
        self, site: str, channels: dict[str, dict[str, int]]
    ) -> None:
        assert self.network is not None
        merged = self.network.merged_channel_stats
        for channel, stats in channels.items():
            src, _, dst = channel.partition("->")
            entry = merged.setdefault(
                channel,
                {key: 0 for key in _SENDER_STAT_KEYS + _RECEIVER_STAT_KEYS},
            )
            if src == site:
                for key in _SENDER_STAT_KEYS:
                    entry[key] = stats.get(key, 0)
            if dst == site:
                for key in _RECEIVER_STAT_KEYS:
                    entry[key] = stats.get(key, 0)

    # -- teardown ---------------------------------------------------------------

    async def _shutdown_session(self) -> None:
        futures = [
            self._request(site, SHUTDOWN_METHOD, {})
            for site in self._live_sites()
        ]
        for future in futures:
            try:
                await asyncio.wait_for(future, timeout=5.0)
            except (asyncio.TimeoutError, ProcRuntimeError):
                pass
        for child in self._children.values():
            for task in (child.reader_task, child.writer_task):
                if task is not None:
                    task.cancel()
            if child.stream is not None:
                await child.stream.close()
                child.stream = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


# -- the child process ---------------------------------------------------------


class _ChildRuntime:
    """The runtime a shell process builds its scenario against.

    One wall clock plus a :class:`WireNetwork` that binds only this
    process's site; peers are dialed through ports injected by the
    parent's ``cm.ports``.  ``run`` is never called through the Scenario —
    the control-protocol server drives the clock directly.
    """

    name = "proc-child"

    def __init__(
        self,
        site: str,
        time_scale: float,
        faults: WireFaultPlan | None,
        host: str,
    ) -> None:
        self.site = site
        self.time_scale = time_scale
        self.faults = faults
        self.host = host
        self.clock: WallClock | None = None
        self.wire: WireNetwork | None = None

    def build(self, scenario: "Scenario") -> tuple[WallClock, WireNetwork]:
        self.clock = WallClock(time_scale=self.time_scale)
        self.wire = WireNetwork(
            self.clock,
            rng_registry=scenario.rngs,
            default_latency=scenario.default_latency,
            failure_plan=scenario.failure_plan,
            in_order=scenario.in_order,
            obs=scenario.obs,
            faults=self.faults,
            gateway=Gateway(self.host),
            local_sites=[self.site],
        )
        return self.clock, self.wire

    def run(self, scenario: "Scenario", until: Ticks) -> None:
        raise ConfigurationError(
            "a proc-runtime shell process is driven by the control "
            "protocol, not by Scenario.run"
        )

    def shutdown(self, scenario: "Scenario") -> None:
        """The control server owns the sockets; nothing to do here."""


def _child_main(
    site: str,
    host: str,
    control_port: int,
    bootstrap: Callable[..., Any],
    bootstrap_kwargs: dict[str, Any],
    time_scale: float,
    faults: WireFaultPlan | None,
    drain_wall: float,
) -> None:
    """Process entry point for one CM-Shell (spawn start method)."""
    try:
        asyncio.run(
            _child_session(
                site,
                host,
                control_port,
                bootstrap,
                bootstrap_kwargs,
                time_scale,
                faults,
                drain_wall,
            )
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive interrupt
        pass


async def _child_session(
    site: str,
    host: str,
    control_port: int,
    bootstrap: Callable[..., Any],
    bootstrap_kwargs: dict[str, Any],
    time_scale: float,
    faults: WireFaultPlan | None,
    drain_wall: float,
) -> None:
    runtime = _ChildRuntime(site, time_scale, faults, host)
    built = bootstrap(**bootstrap_kwargs, runtime=runtime)
    cm = getattr(built, "cm", built)
    clock = runtime.clock
    wire = runtime.wire
    assert clock is not None and wire is not None
    # This process is authoritative for exactly one site: every peer
    # shell in the rebuilt wiring is muted (no timers), and the wire only
    # binds this site's endpoint, so peers cannot receive here either.
    for peer, shell in cm.shells.items():
        if peer != site:
            shell.stop_timers()
    own_shell = cm.shell(site)
    await wire.start()
    control = await FrameStream.open(host, control_port)
    send_lock = asyncio.Lock()

    async def send(message: Any) -> None:
        async with send_lock:
            await control.send(message)

    await send(
        Request(
            REGISTER_METHOD,
            {
                "site": site,
                "wire_port": wire.gateway.ports[site],
                "pid": os.getpid(),
            },
            id=0,
        )
    )
    ack = await control.recv()
    if not isinstance(ack, Response):
        await control.close()
        return
    event_cursor = 0
    failure_cursor = 0
    tasks: set[asyncio.Task] = set()

    def spawn(coroutine: Any) -> None:
        task = asyncio.create_task(coroutine)
        tasks.add(task)
        task.add_done_callback(tasks.discard)

    async def run_once(request_id: Any, params: dict[str, Any]) -> None:
        until = params["until"]
        clock.sync_epoch = params.get("epoch")
        wire.horizon = until
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            await clock.run_until(until)
            await wire.flush_senders(drain_wall)
        finally:
            if gc_was_enabled:
                gc.enable()
                gc.collect()
        written = {}
        for channel, stats in wire.channel_stats().items():
            src, _, _dst = channel.partition("->")
            if src == site:
                written[channel] = stats["frames_written"]
        await send(Response(id=request_id, result={"frames_written": written}))

    async def drain(request_id: Any, params: dict[str, Any]) -> None:
        expected = params.get("expected", {})
        loop = asyncio.get_running_loop()
        deadline = loop.time() + drain_wall

        def satisfied() -> bool:
            for channel, count in expected.items():
                src, _, dst = channel.partition("->")
                if wire.frames_seen.get((src, dst), 0) < count:
                    return False
            return True

        while not satisfied() and loop.time() < deadline:
            await asyncio.sleep(0.002)
        await send(Response(id=request_id, result={"drained": satisfied()}))

    def harvest() -> dict[str, Any]:
        nonlocal event_cursor, failure_cursor
        events = cm.scenario.trace.events
        own_events = [
            encode_event(event, MAX_TRIGGER_DEPTH)
            for event in events[event_cursor:]
            if event.site == site
        ]
        event_cursor = len(events)
        failures = [
            encode_payload(notice)
            for notice in own_shell.failure_log[failure_cursor:]
        ]
        failure_cursor = len(own_shell.failure_log)
        return {
            "events": own_events,
            "failures": failures,
            "shell": own_shell.stats(),
            "fired": {
                name: counter.value
                for name, counter in own_shell._fired_by_rule.items()
            },
            "batching": own_shell.batching_stats() or None,
            "net": {
                "messages_sent": wire.messages_sent,
                "messages_dropped": wire.messages_dropped,
                "messages_delivered": wire.messages_delivered,
            },
            "channels": wire.channel_stats(),
            "clock": {
                "events_processed": clock.events_processed,
                "max_queue_depth": clock.max_queue_depth,
            },
        }

    def apply_write(params: dict[str, Any]) -> None:
        ref_args = tuple(decode_value(a) for a in params["args"])
        value = decode_value(params["value"])
        cm.spontaneous_write(params["family"], ref_args, value)

    def report_failure(params: dict[str, Any]) -> None:
        notice = decode_payload(params["notice"])
        cm.shell(params.get("site", site)).report_failure(notice)

    try:
        while True:
            try:
                frame = await control.recv()
            except ProtocolError:
                continue
            if frame is None:
                break  # parent went away: exit gracefully
            if isinstance(frame, Request):
                method = frame.method
                params = frame.params or {}
                if method == PORTS_METHOD:
                    wire.gateway.set_remote_ports(
                        {s: int(p) for s, p in params["ports"].items()}
                    )
                    await send(Response(id=frame.id, result={}))
                elif method == RUN_METHOD:
                    spawn(run_once(frame.id, params))
                elif method == DRAIN_METHOD:
                    spawn(drain(frame.id, params))
                elif method == HARVEST_METHOD:
                    await send(Response(id=frame.id, result=harvest()))
                elif method == PING_METHOD:
                    await send(
                        Response(
                            id=frame.id,
                            result={"site": site, "pid": os.getpid()},
                        )
                    )
                elif method == SHUTDOWN_METHOD:
                    await send(Response(id=frame.id, result={}))
                    break
                else:
                    await send(
                        ErrorResponse(
                            id=frame.id,
                            code=-32601,
                            message=f"unknown method {method!r}",
                        )
                    )
            elif isinstance(frame, Notification):
                if frame.method == APPLY_METHOD:
                    apply_write(frame.params)
                elif frame.method == REPORT_FAILURE_METHOD:
                    report_failure(frame.params)
    finally:
        for task in tasks:
            task.cancel()
        try:
            await wire.stop()
        except Exception:
            pass
        cm.close()
        await control.close()
