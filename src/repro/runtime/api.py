"""The Runtime seam: one place where "how does time pass and how do
messages move" is decided.

Before this package existed, three concerns were entangled across
:mod:`repro.cm.shell`, :mod:`repro.sim.process`, and the experiments
runner: shell dispatch assumed the :class:`~repro.sim.scheduler.Simulator`
clock, network delivery assumed :class:`~repro.sim.network.Network`, and
every experiment hard-wired simulated time.  The :class:`Runtime` protocol
factors that into a single constructor-injected seam:

- :class:`~repro.runtime.sim_runtime.SimRuntime` — the existing
  deterministic discrete-event kernel, unchanged in behaviour.  It remains
  the *executable specification*: every ordering property the paper's
  Appendix A requires is exactly enforced there.
- :class:`~repro.runtime.async_runtime.AsyncRuntime` — each CM-Shell's
  message intake becomes its own asyncio-served socket endpoint; FIFO
  channels are carried over real loopback TCP with length-prefixed
  JSON-RPC framing, timers are wall-clock (scaled), and socket-level
  faults (drop/dup/reorder/delay per channel) can be injected.

Scenarios select a runtime with one parameter::

    Scenario(seed=3)                          # sim (default)
    Scenario(seed=3, runtime="async")         # wire runtime, defaults
    Scenario(seed=3, runtime=AsyncRuntime(time_scale=200.0))

and everything downstream — shells, translators, workloads, ``verify()``
— is agnostic: they talk to ``scenario.sim`` (a :class:`Clock`) and
``scenario.network`` (a :class:`TransportAPI`), whichever runtime provided
them.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Protocol, Union, runtime_checkable

from repro.core.timebase import Ticks

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cm.manager import Scenario


@runtime_checkable
class Clock(Protocol):
    """What shells, translators, and workloads need from "time".

    The :class:`~repro.sim.scheduler.Simulator` satisfies this natively;
    the wire runtime's :class:`~repro.runtime.clock.WallClock` implements
    it over an asyncio loop with a virtual-time scale factor.
    """

    @property
    def now(self) -> Ticks: ...

    @property
    def now_seconds(self) -> float: ...

    def at(self, time: Ticks, callback: Callable[[], None]) -> Any: ...

    def after(self, delay: Ticks, callback: Callable[[], None]) -> Any: ...

    def stop(self) -> None: ...


@runtime_checkable
class TransportAPI(Protocol):
    """What shells (and the run report) need from "the network"."""

    messages_sent: int
    messages_dropped: int

    def register_site(self, site: str, handler: Callable[[Any], None]) -> None: ...

    def has_site(self, site: str) -> bool: ...

    @property
    def sites(self) -> list[str]: ...

    def send(self, src: str, dst: str, payload: Any) -> Any: ...

    def set_channel_latency(self, src: str, dst: str, model: Any) -> None: ...


class Runtime(Protocol):
    """One execution substrate for a :class:`~repro.cm.manager.Scenario`.

    A runtime instance is bound to exactly one scenario: ``build`` is
    called from ``Scenario.__post_init__`` and returns the (clock,
    transport) pair everything else is wired against; ``run`` advances the
    scenario to a virtual-time horizon; ``shutdown`` releases any real
    resources (sockets, tasks).  Pass a fresh instance — or a name/factory
    — per scenario.
    """

    name: str

    def build(self, scenario: "Scenario") -> tuple[Clock, TransportAPI]: ...

    def run(self, scenario: "Scenario", until: Ticks) -> None: ...

    def shutdown(self, scenario: "Scenario") -> None: ...


#: What ``Scenario(runtime=...)`` accepts: a registered name, a runtime
#: instance, or a zero-argument factory producing one.
RuntimeSpec = Union[str, Runtime, Callable[[], Runtime]]


def _sim_factory() -> Runtime:
    from repro.runtime.sim_runtime import SimRuntime

    return SimRuntime()


def _async_factory() -> Runtime:
    from repro.runtime.async_runtime import AsyncRuntime

    return AsyncRuntime()


def _proc_factory() -> Runtime:
    from repro.runtime.proc import ProcRuntime

    return ProcRuntime()


RUNTIMES: dict[str, Callable[[], Runtime]] = {
    "sim": _sim_factory,
    "async": _async_factory,
    # "wire" reads better in prose; accept it as an alias for "async".
    "wire": _async_factory,
    # Every CM-Shell as its own OS process (multi-core, off the GIL).
    "proc": _proc_factory,
}


def resolve_runtime(spec: RuntimeSpec) -> Runtime:
    """Turn a :data:`RuntimeSpec` into a fresh, unbound runtime instance."""
    if isinstance(spec, str):
        factory = RUNTIMES.get(spec)
        if factory is None:
            raise ValueError(
                f"unknown runtime {spec!r} (have: {', '.join(sorted(RUNTIMES))})"
            )
        return factory()
    if callable(spec) and not hasattr(spec, "build"):
        return spec()  # a factory
    return spec  # already a Runtime


@dataclass(frozen=True)
class RunConfig:
    """The uniform experiment-run configuration (one per invocation).

    Every ``repro.experiments.e*.run`` accepts a ``RunConfig`` as its
    first argument; the CLI builds one from ``--runtime`` /
    ``--time-scale`` and threads it through the runner.

    - ``runtime`` — a :data:`RuntimeSpec` *name* ("sim"/"async") that each
      scenario resolves to a fresh instance (a single experiment may build
      several scenarios).
    - ``seed`` — overrides the experiment's default seed when not None.
    - ``scale`` — multiplies the experiment's primary size knobs
      (workload sizes, sweep counts); 1.0 reproduces the paper-scale run.
    - ``time_scale`` — virtual seconds per wall second for the async
      runtime (ignored by the sim kernel).  The conservative default (20)
      keeps the scenarios' timing bounds well clear of wall-clock jitter
      even for the heaviest experiment sweeps; light scenarios tolerate
      much higher scales.
    - ``faults`` — socket-level fault plan for the async runtime.
    - ``options`` — experiment-specific keyword overrides, applied on top
      of the experiment's own defaults.
    """

    runtime: RuntimeSpec = "sim"
    seed: int | None = None
    scale: float = 1.0
    time_scale: float = 20.0
    faults: Any | None = None
    options: Mapping[str, Any] = field(default_factory=dict)

    def runtime_spec(self) -> RuntimeSpec:
        """The per-scenario runtime spec (a factory for named runtimes).

        Named specs become factories parameterized by this config's
        ``time_scale``/``faults`` so each scenario gets its own instance.
        """
        spec = self.runtime
        if isinstance(spec, str) and spec in ("async", "wire"):
            time_scale = self.time_scale
            faults = self.faults

            def factory() -> Runtime:
                from repro.runtime.async_runtime import AsyncRuntime

                return AsyncRuntime(time_scale=time_scale, faults=faults)

            return factory
        if isinstance(spec, str) and spec == "proc":
            time_scale = self.time_scale
            faults = self.faults

            def proc_factory() -> Runtime:
                from repro.runtime.proc import ProcRuntime

                return ProcRuntime(time_scale=time_scale, faults=faults)

            return proc_factory
        return spec

    def resolve_seed(self, default: int) -> int:
        """This run's seed: the config's override or the experiment default."""
        return default if self.seed is None else self.seed

    def scaled(self, value: int, minimum: int = 1) -> int:
        """An integer size knob scaled by ``scale`` (never below ``minimum``)."""
        return max(minimum, round(value * self.scale))


def resolve_config(config: "RunConfig | None") -> RunConfig:
    """The experiments' one-liner: default config when none was passed."""
    return config if config is not None else RunConfig()
