"""The sim-vs-wire equivalence harness.

The wire runtime cannot promise the sim kernel's byte-identical
interleavings — real sockets and a wall clock do not have a global total
order.  What it *must* promise is the paper's actual contract:

1. every wire execution is a **valid execution** — all seven Appendix A.2
   properties hold over the recorded trace; and
2. the **guarantee verdicts are identical** — each guarantee the catalog
   issued for the installed strategy checks out the same way against the
   wire trace as against the sim trace for the same seeded scenario.

:func:`run_equivalence` runs one seeded salary scenario (the paper's
Section 4.2 running example) on both runtimes and compares.  The CI
harness runs it across several seeds; ``tests/runtime/test_equivalence.py``
asserts it inline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.timebase import seconds
from repro.core.trace import validate_trace
from repro.runtime.api import RuntimeSpec
from repro.runtime.channels import WireFaultPlan


@dataclass
class RuntimeObservation:
    """What one runtime's run of the scenario looked like."""

    runtime: str
    verdicts: dict[str, bool] = field(default_factory=dict)
    trace_violations: list[str] = field(default_factory=list)
    updates: int = 0
    messages_sent: int = 0
    events_recorded: int = 0
    rules_fired: int = 0
    #: Span-tree observations (tracing is always on in the harness):
    #: how many causal trees crossed sites, whether every one of them is
    #: connected, and whether each cross-site tree's ``end_to_end()``
    #: respects the installed metric guarantee's kappa.
    span_trees: int = 0
    cross_site_trees: int = 0
    disconnected_trees: int = 0
    trees_over_kappa: int = 0
    #: Race-sanitizer verdict (``sanitize=True`` runs only): flag count
    #: plus how many store accesses the sanitizer actually checked, so a
    #: "clean" run that observed nothing is distinguishable from a clean
    #: run that observed the whole workload.
    sanitizer_races: int = 0
    sanitizer_accesses: int = 0

    @property
    def trace_valid(self) -> bool:
        return not self.trace_violations

    @property
    def sanitizer_ok(self) -> bool:
        """No access pair the static analysis certified independent was
        observed to collide (vacuously true when not sanitizing)."""
        return self.sanitizer_races == 0

    @property
    def spans_valid(self) -> bool:
        """Every tree connected; every cross-site chain within kappa."""
        return not self.disconnected_trees and not self.trees_over_kappa

    def to_dict(self) -> dict[str, Any]:
        return {
            "runtime": self.runtime,
            "verdicts": dict(self.verdicts),
            "trace_valid": self.trace_valid,
            "trace_violations": list(self.trace_violations),
            "updates": self.updates,
            "messages_sent": self.messages_sent,
            "events_recorded": self.events_recorded,
            "rules_fired": self.rules_fired,
            "span_trees": self.span_trees,
            "cross_site_trees": self.cross_site_trees,
            "disconnected_trees": self.disconnected_trees,
            "trees_over_kappa": self.trees_over_kappa,
            "spans_valid": self.spans_valid,
            "sanitizer_races": self.sanitizer_races,
            "sanitizer_accesses": self.sanitizer_accesses,
            "sanitizer_ok": self.sanitizer_ok,
        }


@dataclass
class EquivalenceReport:
    """One seed's sim-vs-wire comparison."""

    seed: int
    strategy_kind: str
    sim: RuntimeObservation
    wire: RuntimeObservation

    @property
    def verdicts_match(self) -> bool:
        return self.sim.verdicts == self.wire.verdicts

    @property
    def spans_match(self) -> bool:
        """Both runtimes' causal trees connected and kappa-respecting.

        This is the span-level equivalence the wire runtime owes: its
        reconnected (trace-context-carried) SpanTrees must reach the same
        ``end_to_end()``-vs-kappa verdicts the sim's in-process trees do —
        not the same tick values, which a wall clock cannot promise.
        """
        return self.sim.spans_valid and self.wire.spans_valid

    @property
    def ok(self) -> bool:
        """Both executions valid, every guarantee verdict identical, and
        span trees equivalent (connected, within kappa) on both sides."""
        return (
            self.sim.trace_valid
            and self.wire.trace_valid
            and self.verdicts_match
            and self.spans_match
            and self.sim.sanitizer_ok
            and self.wire.sanitizer_ok
        )

    def render(self) -> str:
        lines = [
            f"equivalence seed={self.seed} strategy={self.strategy_kind}: "
            f"{'OK' if self.ok else 'MISMATCH'}"
        ]
        for obs in (self.sim, self.wire):
            lines.append(
                f"  [{obs.runtime}] trace_valid={obs.trace_valid} "
                f"updates={obs.updates} messages={obs.messages_sent} "
                f"rules_fired={obs.rules_fired} "
                f"spans={obs.span_trees} trees "
                f"({obs.cross_site_trees} cross-site, "
                f"{obs.disconnected_trees} disconnected, "
                f"{obs.trees_over_kappa} over kappa)"
            )
            for violation in obs.trace_violations[:3]:
                lines.append(f"    violation: {violation}")
        if not self.verdicts_match:
            names = sorted(set(self.sim.verdicts) | set(self.wire.verdicts))
            for name in names:
                sim_v = self.sim.verdicts.get(name)
                wire_v = self.wire.verdicts.get(name)
                if sim_v != wire_v:
                    lines.append(f"  DIFF {name}: sim={sim_v} wire={wire_v}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "strategy": self.strategy_kind,
            "ok": self.ok,
            "verdicts_match": self.verdicts_match,
            "sim": self.sim.to_dict(),
            "wire": self.wire.to_dict(),
        }


def _observe(
    runtime: RuntimeSpec,
    label: str,
    seed: int,
    strategy_kind: str,
    employee_count: int,
    rate: float,
    duration_seconds: float,
    sanitize: bool = False,
    parallel_phases: bool = False,
) -> RuntimeObservation:
    # Imported lazily: the experiments package imports the runtime package.
    from repro.experiments.common import build_salary_scenario
    from repro.workloads import PersonnelWorkload

    salary = build_salary_scenario(
        strategy_kind=strategy_kind,
        seed=seed,
        runtime=runtime,
        sanitize=sanitize,
        parallel_phases=parallel_phases,
    )
    salary.scenario.obs.enable_tracing()
    workload = PersonnelWorkload(
        salary.cm,
        employee_count=employee_count,
        rate=rate,
        duration=seconds(duration_seconds),
    )
    try:
        salary.cm.run(until=seconds(duration_seconds + 10.0))
        reports = salary.cm.check_guarantees()
        violations = validate_trace(
            salary.scenario.trace, list(salary.installed.strategy.rules)
        )
        kappa = next(
            (g.within for g in salary.installed.guarantees if g.metric), None
        )
        span_trees = cross_site = disconnected = over_kappa = 0
        for tree in salary.scenario.obs.tracer.trees():
            span_trees += 1
            if not tree.connected:
                disconnected += 1
            if len(tree.sites) > 1:
                cross_site += 1
                if kappa is not None and tree.end_to_end() > kappa:
                    over_kappa += 1
        sanitizer_races = sanitizer_accesses = 0
        san = getattr(salary.scenario, "sanitizer", None)
        if san is not None:
            san_report = san.report()
            sanitizer_races = san_report["race_count"]
            sanitizer_accesses = san_report["reads"] + san_report["writes"]
        return RuntimeObservation(
            runtime=label,
            verdicts={name: report.valid for name, report in reports.items()},
            trace_violations=[str(v) for v in violations],
            updates=workload.stream.stats.updates,
            messages_sent=salary.scenario.network.messages_sent,
            events_recorded=len(salary.scenario.trace.events),
            rules_fired=salary.cm.stats()["total"]["rules_fired"],
            span_trees=span_trees,
            cross_site_trees=cross_site,
            disconnected_trees=disconnected,
            trees_over_kappa=over_kappa,
            sanitizer_races=sanitizer_races,
            sanitizer_accesses=sanitizer_accesses,
        )
    finally:
        # Real-resource runtimes (wire sockets, shell processes) must be
        # released even when a comparison fails mid-observation.
        salary.scenario.shutdown()
        salary.cm.close()


def run_equivalence(
    seed: int,
    strategy_kind: str = "propagation",
    employee_count: int = 6,
    rate: float = 0.5,
    duration_seconds: float = 20.0,
    time_scale: float = 20.0,
    faults: WireFaultPlan | None = None,
    runtime: str = "wire",
    sanitize: bool = False,
    parallel_phases: bool = False,
) -> EquivalenceReport:
    """Run one seeded scenario on sim plus a real runtime and compare.

    ``runtime`` picks the real substrate being held to the sim verdicts:
    ``"wire"`` (the default; shells as asyncio tasks over loopback TCP)
    or ``"proc"`` (every shell its own OS process, same wire protocol).

    ``sanitize=True`` arms the dynamic race sanitizer on both sides and
    folds its verdict into ``EquivalenceReport.ok``; ``parallel_phases``
    runs condition evaluation under the certified parallel plan so the
    sanitizer is checking the plan the static analysis actually emitted.
    For the proc runtime the parent-side sanitizer sees nothing (each
    shell process rebuilds its own), so the sim observation carries the
    meaningful soundness check there.

    The default workload (6 employees, 0.5 updates/s, 20 virtual seconds)
    keeps a wire run under two wall seconds at the default ``time_scale``
    while still exercising dozens of socket round trips.  The scale is
    deliberately conservative: the scenario's tightest rule-delay bound is
    1 virtual second, which at 20x is 50 wall milliseconds of scheduling
    headroom — comfortable even on a loaded machine, where a higher scale
    makes event-loop jitter masquerade as a timing-property violation.
    """
    if runtime == "proc":

        def real_factory():
            from repro.runtime.proc import ProcRuntime

            return ProcRuntime(time_scale=time_scale, faults=faults)

    elif runtime == "wire":

        def real_factory():
            from repro.runtime.async_runtime import AsyncRuntime

            return AsyncRuntime(time_scale=time_scale, faults=faults)

    else:
        raise ValueError(
            f"unknown equivalence runtime {runtime!r} (have: wire, proc)"
        )

    sim_obs = _observe(
        "sim", "sim", seed, strategy_kind, employee_count, rate,
        duration_seconds, sanitize=sanitize, parallel_phases=parallel_phases,
    )
    wire_obs = _observe(
        real_factory, runtime, seed, strategy_kind, employee_count, rate,
        duration_seconds, sanitize=sanitize, parallel_phases=parallel_phases,
    )
    return EquivalenceReport(
        seed=seed, strategy_kind=strategy_kind, sim=sim_obs, wire=wire_obs
    )
