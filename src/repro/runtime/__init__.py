"""The runtime package: one seam, three execution substrates.

``Scenario(runtime="sim")`` (the default) runs on the deterministic
discrete-event kernel; ``Scenario(runtime="async")`` runs every CM-Shell
as asyncio tasks behind real loopback sockets with length-prefixed
JSON-RPC framing, wall-clock timers, and injectable socket-level faults;
``Scenario(runtime="proc")`` goes one step further and runs every
CM-Shell as its own OS process (off the GIL), still over the same wire
protocol.  See :mod:`repro.runtime.api` for the seam and
:mod:`repro.runtime.equivalence` for the harness that holds the
runtimes to the same guarantees.
"""

from repro.runtime.api import (
    RUNTIMES,
    Clock,
    RunConfig,
    Runtime,
    RuntimeSpec,
    TransportAPI,
    resolve_config,
    resolve_runtime,
)
from repro.runtime.async_runtime import AsyncRuntime, WireRuntimeError
from repro.runtime.channels import ChannelFaults, WireFaultPlan
from repro.runtime.clock import WallClock
from repro.runtime.equivalence import EquivalenceReport, run_equivalence
from repro.runtime.gateway import Gateway, WireNetwork
from repro.runtime.proc import ProcRuntime, ProcRuntimeError
from repro.runtime.sim_runtime import SimRuntime

__all__ = [
    "AsyncRuntime",
    "ChannelFaults",
    "Clock",
    "EquivalenceReport",
    "Gateway",
    "ProcRuntime",
    "ProcRuntimeError",
    "RUNTIMES",
    "RunConfig",
    "Runtime",
    "RuntimeSpec",
    "SimRuntime",
    "TransportAPI",
    "WallClock",
    "WireFaultPlan",
    "WireNetwork",
    "WireRuntimeError",
    "resolve_config",
    "resolve_runtime",
    "run_equivalence",
]
