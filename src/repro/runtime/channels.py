"""FIFO channels over the wire: fault injection, payload codec, ordering.

The sim kernel's :class:`~repro.sim.network.Network` gets FIFO "for free"
by clamping delivery times in one global event queue.  On a real socket
the channel layer has to *earn* the same property — and that is exactly
what Appendix A property 7 requires of any deployment: in-order message
delivery between sites, in-order processing at each site.

Three pieces live here:

- :class:`ChannelFaults` / :class:`WireFaultPlan` — injectable socket-level
  misbehaviour per directed channel: **drop** (the frame never leaves the
  sender — a lost datagram), **dup** (the frame is written twice),
  **reorder** (the frame is held back and overtaken by its successor),
  and **extra delay**.  These subsume the sim kernel's failure flags: a
  logical-failure window is a drop probability of 1.0 with extra context,
  and the ``in_order=False`` ablation is simply "reorder faults with the
  healing resequencer turned off".
- the **payload codec** — every payload travels fully by value
  (:mod:`repro.runtime.codec`): failure notices and demarcation-protocol
  messages as plain field dicts, rule firings as rule name + encoded slot
  values + trigger provenance chain, re-resolved against the receiving
  shell's own installed rules.  Nothing in a frame references sender
  memory, so the same frames work across a real process boundary.
- :class:`ChannelSender` / :class:`ChannelReceiver` — the sending task
  that paces frames to their virtual delivery times and applies dup/
  reorder at the frame layer, and the per-channel resequencer that
  restores exactly-once, in-order delivery from sequence numbers.
"""

from __future__ import annotations

import asyncio
from collections.abc import Awaitable, Callable
from dataclasses import dataclass, field
from typing import Any

from repro.cm.failures import FailureNotice
from repro.runtime.codec import (
    decode_firing,
    decode_value,
    encode_firing,
    encode_value,
)
from repro.runtime.jsonrpc import Notification
from repro.runtime.transport import FrameStream
from repro.sim.failures import FailureKind

DELIVER_METHOD = "cm.deliver"
DELIVER_BATCH_METHOD = "cm.deliver_batch"
HELLO_METHOD = "cm.hello"


# -- fault injection ----------------------------------------------------------


@dataclass(frozen=True)
class ChannelFaults:
    """Socket-level fault probabilities for one directed channel.

    ``drop``/``dup``/``reorder`` are per-message probabilities; ``delay``
    is extra one-way latency in ticks added to every message.  Reordered
    frames are flushed after ``reorder_flush_wall`` wall seconds if no
    successor overtakes them, so a reorder fault can never stall a channel
    forever.
    """

    drop: float = 0.0
    dup: float = 0.0
    reorder: float = 0.0
    delay: int = 0
    reorder_flush_wall: float = 0.02

    def __post_init__(self) -> None:
        for name in ("drop", "dup", "reorder"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"bad {name} probability: {value}")
        if self.delay < 0:
            raise ValueError(f"negative delay: {self.delay}")

    @property
    def any(self) -> bool:
        return bool(self.drop or self.dup or self.reorder or self.delay)


NO_FAULTS = ChannelFaults()


@dataclass
class WireFaultPlan:
    """Per-channel socket faults for a wire-runtime scenario."""

    #: Faults applied to every channel without a specific entry.
    default: ChannelFaults = NO_FAULTS
    channels: dict[tuple[str, str], ChannelFaults] = field(default_factory=dict)

    def set(self, src: str, dst: str, faults: ChannelFaults) -> "WireFaultPlan":
        """Set the faults for one directed channel (chainable)."""
        self.channels[(src, dst)] = faults
        return self

    def for_channel(self, src: str, dst: str) -> ChannelFaults:
        """The faults in effect on ``src -> dst``."""
        return self.channels.get((src, dst), self.default)


# -- payload codec ------------------------------------------------------------

_FAILURE_NOTICE = "failure-notice"
_FIRE = "fire"
_LIMIT_REQUEST = "limit-request"
_LIMIT_GRANT = "limit-grant"
_VALUE = "value"


def encode_payload(payload: Any) -> dict[str, Any]:
    """Encode a message payload for the frame body, fully by value.

    Every payload kind the shells and protocols send is self-contained in
    the frame: a rule firing carries the rule *name* plus its encoded slot
    values and trigger chain (the receiving shell re-resolves and
    re-compiles from its own rule set — CM-RID is the shared contract), a
    failure notice or demarcation message carries its plain fields.
    """
    if isinstance(payload, FailureNotice):
        return {
            "type": _FAILURE_NOTICE,
            "site": payload.site,
            "source": payload.source_name,
            "kind": getattr(payload.kind, "value", str(payload.kind)),
            "time": payload.time,
            "detail": payload.detail,
            "recovered": payload.recovered,
        }
    from repro.cm.shell import FireMessage

    if isinstance(payload, FireMessage):
        data = encode_firing(payload)
        data["type"] = _FIRE
        return data
    from repro.protocols.demarcation import _LimitGrant, _LimitRequest

    if isinstance(payload, _LimitRequest):
        return {
            "type": _LIMIT_REQUEST,
            "origin": payload.origin,
            "needed": payload.needed,
            "request_id": payload.request_id,
        }
    if isinstance(payload, _LimitGrant):
        return {
            "type": _LIMIT_GRANT,
            "origin": payload.origin,
            "granted": payload.granted,
            "request_id": payload.request_id,
        }
    # Plain values (test harnesses, ad-hoc probes) cross by value too;
    # anything the value codec cannot represent raises CodecError — no
    # payload ever rides by in-process reference.
    return {"type": _VALUE, "v": encode_value(payload)}


def decode_payload(data: dict[str, Any]) -> Any:
    """Reverse :func:`encode_payload` at the receiving endpoint.

    Firings decode to a :class:`~repro.runtime.codec.WireFiring` — a
    neutral record the shell resolves against its own installed rules.
    """
    kind_tag = data.get("type")
    if kind_tag == _FAILURE_NOTICE:
        kind: Any = data["kind"]
        try:
            kind = FailureKind(kind)
        except ValueError:
            pass  # translator-defined string kinds pass through unchanged
        return FailureNotice(
            site=data["site"],
            source_name=data["source"],
            kind=kind,
            time=data["time"],
            detail=data["detail"],
            recovered=data["recovered"],
        )
    if kind_tag == _FIRE:
        return decode_firing(data)
    if kind_tag == _LIMIT_REQUEST:
        from repro.protocols.demarcation import _LimitRequest

        return _LimitRequest(
            origin=data["origin"],
            needed=data["needed"],
            request_id=data["request_id"],
        )
    if kind_tag == _LIMIT_GRANT:
        from repro.protocols.demarcation import _LimitGrant

        return _LimitGrant(
            origin=data["origin"],
            granted=data["granted"],
            request_id=data["request_id"],
        )
    if kind_tag == _VALUE:
        return decode_value(data["v"])
    raise ValueError(f"unknown payload encoding: {kind_tag!r}")


# -- sending ------------------------------------------------------------------


@dataclass
class _Outgoing:
    """One message queued on a channel, already sequenced."""

    seq: int
    deliver_at: int
    params: dict[str, Any]


class ChannelSender:
    """The per-channel sending task.

    Messages enter via :meth:`enqueue` (synchronous — called from rule
    execution inside the loop) already carrying their virtual delivery
    time; the task paces them out in FIFO order, waiting on the scaled
    wall clock, then writes ``cm.deliver`` notification frames.  Dup and
    reorder faults are applied *here*, at the frame layer, after
    sequencing — which is what makes the receiver's resequencer an honest
    reimplementation of property 7 rather than a formality.

    With ``batch_max > 1`` the task *coalesces*: when the message it just
    paced out has already-due successors queued behind it (a burst whose
    delivery times have all passed), up to ``batch_max`` of them travel in
    one ``cm.deliver_batch`` frame — paying the framing, syscall, and
    resequencer costs once per burst instead of once per message.
    Coalescing never changes delivery order or timing (only messages whose
    ``deliver_at`` has already been reached are eligible) and is disabled
    on channels with injected faults, whose drop/dup/reorder semantics are
    defined per individual frame.
    """

    def __init__(
        self,
        src: str,
        dst: str,
        clock: Any,
        dial: Callable[[], Awaitable[FrameStream]],
        faults: ChannelFaults = NO_FAULTS,
        fault_rng: Any = None,
        batch_max: int = 1,
    ) -> None:
        self.src = src
        self.dst = dst
        self.clock = clock
        self.dial = dial
        self.faults = faults
        self.fault_rng = fault_rng
        self.batch_max = max(1, int(batch_max))
        self.frames_written = 0
        self.frames_duplicated = 0
        self.frames_reordered = 0
        self.frames_coalesced = 0
        self.frames_dropped_dead = 0
        self._next_seq = 0
        self._outbox: asyncio.Queue[_Outgoing | None] = asyncio.Queue()
        self._held: bytes | None = None
        self._stream: FrameStream | None = None
        self._task: asyncio.Task | None = None

    def next_seq(self) -> int:
        """Allocate the next channel sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        return seq

    @property
    def in_flight(self) -> int:
        """Messages queued but not yet written to the socket."""
        return self._outbox.qsize() + (1 if self._held is not None else 0)

    def enqueue(self, seq: int, deliver_at: int, params: dict[str, Any]) -> None:
        """Queue one sequenced message for paced transmission."""
        self._outbox.put_nowait(_Outgoing(seq, deliver_at, params))

    def ensure_started(self) -> None:
        """Start the sending task on the running loop (idempotent)."""
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def _run(self) -> None:
        while True:
            item = await self._next_item()
            if item is None:
                break
            await self.clock.sleep_until(item.deliver_at)
            try:
                stream = await self._ensure_stream()
                batch = self._coalesce_due(item)
                if batch is not None:
                    self._write(
                        stream, _batch_frame_for(self.src, self.dst, batch)
                    )
                    self.frames_coalesced += len(batch)
                    await stream.drain()
                    continue
                frame_bytes = _frame_for(item.params)
                rng = self.fault_rng
                if (
                    rng is not None
                    and self.faults.reorder
                    and self._held is None
                ):
                    if rng.random() < self.faults.reorder:
                        # Hold this frame back; its successor overtakes it.
                        self._held = frame_bytes
                        self.frames_reordered += 1
                        continue
                self._write(stream, frame_bytes)
                if rng is not None and self.faults.dup:
                    if rng.random() < self.faults.dup:
                        self._write(stream, frame_bytes)
                        self.frames_duplicated += 1
                self._flush_held(stream)
                await stream.drain()
            except OSError:
                # The endpoint is gone (e.g. a killed shell process).
                # Drop the frame instead of crashing the sending task;
                # the process supervisor reports the death separately.
                self.frames_dropped_dead += 1
                self._stream = None
        if self._stream is not None:
            try:
                self._flush_held(self._stream)
                await self._stream.drain()
                await self._stream.close()
            except OSError:
                self.frames_dropped_dead += 1
            self._stream = None

    def _coalesce_due(self, item: _Outgoing) -> list[dict[str, Any]] | None:
        """Already-due successors of ``item``, or ``None`` when it must go
        out alone (no burst behind it, faults in play, or a held frame)."""
        if self.batch_max <= 1 or self.faults.any or self._held is not None:
            return None
        queue = self._outbox._queue  # peek: asyncio.Queue has no public one
        now = self.clock.now
        head = queue[0] if queue else None
        if head is None or head.deliver_at > now:
            return None
        frames = [item.params]
        while len(frames) < self.batch_max:
            head = queue[0] if queue else None
            if head is None or head.deliver_at > now:
                break
            frames.append(self._outbox.get_nowait().params)
        return frames

    async def _next_item(self) -> _Outgoing | None:
        """Dequeue the next message; flush a held-back frame on idle."""
        if self._held is None:
            return await self._outbox.get()
        try:
            return await asyncio.wait_for(
                self._outbox.get(), timeout=self.faults.reorder_flush_wall
            )
        except asyncio.TimeoutError:  # noqa: UP041 — alias only on 3.11+
            if self._stream is not None:
                self._flush_held(self._stream)
                await self._stream.drain()
            return await self._outbox.get()

    def _write(self, stream: FrameStream, frame_bytes: bytes) -> None:
        stream.writer.write(frame_bytes)
        self.frames_written += 1

    def _flush_held(self, stream: FrameStream) -> None:
        if self._held is not None:
            held, self._held = self._held, None
            self._write(stream, held)

    async def _ensure_stream(self) -> FrameStream:
        if self._stream is None:
            self._stream = await self.dial()
        return self._stream

    async def close(self) -> None:
        """Flush remaining frames and stop the task."""
        if self._task is None:
            return
        self._outbox.put_nowait(None)
        await self._task
        self._task = None


def _frame_for(params: dict[str, Any]) -> bytes:
    from repro.runtime.transport import encode_frame

    return encode_frame(Notification(DELIVER_METHOD, params))


def _batch_frame_for(
    src: str, dst: str, frames: list[dict[str, Any]]
) -> bytes:
    from repro.runtime.transport import encode_frame

    return encode_frame(
        Notification(
            DELIVER_BATCH_METHOD, {"src": src, "dst": dst, "frames": frames}
        )
    )


# -- receiving ----------------------------------------------------------------


class ChannelReceiver:
    """Per-channel resequencer: exactly-once, in-order delivery.

    ``accept(params)`` returns the (possibly empty) list of messages that
    became deliverable, in channel order.  Duplicate sequence numbers are
    discarded; out-of-order frames are buffered until the gap fills.  With
    ``in_order=False`` (the Appendix A ablation) frames pass through in
    raw arrival order — duplicates included — which is exactly the
    misbehaviour the paper's property 7 exists to forbid.
    """

    def __init__(self, in_order: bool = True) -> None:
        self.in_order = in_order
        self.next_seq = 0
        self.duplicates_discarded = 0
        self.frames_buffered_high = 0
        self._buffer: dict[int, dict[str, Any]] = {}

    def accept(self, params: dict[str, Any]) -> list[dict[str, Any]]:
        if not self.in_order:
            return [params]
        seq = params["seq"]
        if seq < self.next_seq or seq in self._buffer:
            self.duplicates_discarded += 1
            return []
        self._buffer[seq] = params
        if len(self._buffer) > self.frames_buffered_high:
            self.frames_buffered_high = len(self._buffer)
        ready: list[dict[str, Any]] = []
        while self.next_seq in self._buffer:
            ready.append(self._buffer.pop(self.next_seq))
            self.next_seq += 1
        return ready

    def accept_batch(
        self, frames: list[dict[str, Any]]
    ) -> list[dict[str, Any]]:
        """Accept one coalesced ``cm.deliver_batch`` frame's messages.

        The common case — a consecutive run starting exactly at
        ``next_seq``, nothing buffered — advances the resequencer in one
        step; anything else falls back to per-message :meth:`accept`.
        """
        if not self.in_order:
            return list(frames)
        if (
            frames
            and not self._buffer
            and frames[0]["seq"] == self.next_seq
            and all(
                frame["seq"] == self.next_seq + offset
                for offset, frame in enumerate(frames)
            )
        ):
            self.next_seq += len(frames)
            return list(frames)
        ready: list[dict[str, Any]] = []
        for frame in frames:
            ready.extend(self.accept(frame))
        return ready
