"""The gateway service and the socket-backed network facade.

The :class:`Gateway` is the wire runtime's bootstrap: it turns a wired
:class:`~repro.cm.manager.ConstraintManager` topology into real listening
endpoints — one loopback TCP server per site — and dials channel
connections between them on demand.  Each directed channel ``src -> dst``
is one TCP connection: a ``cm.hello`` JSON-RPC request opens it, then a
stream of ``cm.deliver`` notifications carries the FIFO message traffic
(:mod:`repro.runtime.channels`).  When tracing is on, each ``cm.deliver``
frame also carries a ``trace`` field — the sender's
:class:`~repro.obs.spans.SpanContext` — and the receiving endpoint resumes
it around the handler, so cross-shell causal chains reconnect into one
:class:`~repro.obs.spans.SpanTree` by id, with no in-process state shared
between the endpoints.

:class:`WireNetwork` is the shell-facing facade with the same surface as
the sim kernel's :class:`~repro.sim.network.Network` (``register_site``,
``send``, ``set_channel_latency``, the per-channel metrics) — which is
what lets :class:`~repro.cm.shell.CMShell` and the Demarcation Protocol
run over real sockets without a line of change.  Message *timing* still
honours the scenario's latency models and failure plan (sampled from the
same seeded RNG streams), so a wire run is the sim scenario's honest
deployment, not a different experiment.
"""

from __future__ import annotations

import asyncio
import time as _time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.obs import Instrumentation
from repro.obs.metrics import WIRE_MS_BOUNDS
from repro.obs.spans import SpanContext
from repro.runtime.channels import (
    DELIVER_BATCH_METHOD,
    DELIVER_METHOD,
    HELLO_METHOD,
    ChannelReceiver,
    ChannelSender,
    NO_FAULTS,
    WireFaultPlan,
    decode_payload,
    encode_payload,
)
from repro.runtime.clock import WallClock
from repro.runtime.jsonrpc import (
    INVALID_REQUEST,
    ErrorResponse,
    Notification,
    ProtocolError,
    Request,
    Response,
)
from repro.runtime.transport import FrameStream
from repro.sim.failures import FailurePlan
from repro.sim.network import FixedLatency, LatencyModel, Message
from repro.sim.rng import RngRegistry
from repro.core.timebase import seconds


@dataclass
class _SiteEntry:
    """One registered site; ``handler`` is rebindable (the Demarcation
    Protocol wraps it), matching the sim network's contract."""

    handler: Callable[[Message], None]


class Gateway:
    """Listening endpoints for every site, plus channel dialing."""

    def __init__(self, host: str = "127.0.0.1") -> None:
        self.host = host
        #: site -> TCP port.  Locally bound sites get theirs from
        #: :meth:`start`; a process-runtime child *injects* its peers'
        #: ports via :meth:`set_remote_ports` after the registration
        #: exchange, so dialing works identically either way.
        self.ports: dict[str, int] = {}
        self._servers: dict[str, asyncio.Server] = {}
        self._accepted: list[FrameStream] = []
        self._on_deliver: Callable[[dict[str, Any]], None] | None = None
        self._on_deliver_batch: Callable[[dict[str, Any]], None] | None = None

    def bind_dispatch(
        self,
        on_deliver: Callable[[dict[str, Any]], None],
        on_deliver_batch: Callable[[dict[str, Any]], None] | None = None,
    ) -> None:
        """Set the callbacks for inbound ``cm.deliver`` (and, optionally,
        coalesced ``cm.deliver_batch``) frames.  Without a batch callback,
        batch frames unfold into per-message deliveries."""
        self._on_deliver = on_deliver
        self._on_deliver_batch = on_deliver_batch

    async def start(self, sites: list[str]) -> None:
        """Open one listening endpoint per site (ephemeral loopback ports)."""
        for site in sites:
            server = await asyncio.start_server(
                self._serve_connection, self.host, 0
            )
            self._servers[site] = server
            self.ports[site] = server.sockets[0].getsockname()[1]

    def set_remote_ports(self, ports: dict[str, int]) -> None:
        """Add ports of sites served by *other* processes (child mode)."""
        for site, port in ports.items():
            if site not in self._servers:
                self.ports[site] = port

    async def dial(self, src: str, dst: str) -> FrameStream:
        """Open the ``src -> dst`` channel connection (hello handshake)."""
        stream = await FrameStream.open(self.host, self.ports[dst])
        await stream.send(Request(HELLO_METHOD, {"src": src, "dst": dst}, id=1))
        reply = await stream.recv()
        if not isinstance(reply, Response):
            raise ProtocolError(f"hello to {dst!r} rejected: {reply!r}")
        return stream

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        stream = FrameStream(reader, writer)
        self._accepted.append(stream)
        try:
            hello = await stream.recv()
            if not isinstance(hello, Request) or hello.method != HELLO_METHOD:
                await stream.send(
                    ErrorResponse(
                        id=getattr(hello, "id", None),
                        code=INVALID_REQUEST,
                        message="expected cm.hello",
                    )
                )
                return
            await stream.send(Response(id=hello.id, result=dict(hello.params)))
            while True:
                frame = await stream.recv()
                if frame is None:
                    return
                if not isinstance(frame, Notification):
                    continue
                if frame.method == DELIVER_METHOD:
                    if self._on_deliver is not None:
                        self._on_deliver(frame.params)
                elif frame.method == DELIVER_BATCH_METHOD:
                    if self._on_deliver_batch is not None:
                        self._on_deliver_batch(frame.params)
                    elif self._on_deliver is not None:
                        for sub in frame.params.get("frames", ()):
                            self._on_deliver(sub)
        except (ProtocolError, ConnectionResetError):
            return
        finally:
            try:
                writer.close()
            except RuntimeError:  # pragma: no cover - loop already closing
                pass

    async def stop(self) -> None:
        """Close all servers and accepted connections."""
        for server in self._servers.values():
            server.close()
        for server in self._servers.values():
            await server.wait_closed()
        self._servers.clear()
        self._accepted.clear()


class WireNetwork:
    """Sites plus per-channel FIFO delivery — over real sockets.

    Drop-in compatible with :class:`repro.sim.network.Network` from the
    shells' point of view.  Differences are exactly the ones the wire
    makes real: frames cross loopback TCP, per-channel FIFO is restored by
    sequence-number resequencing (not a scheduler clamp), and the
    ``wire_latency_ms`` histograms record *real milliseconds*, next to the
    virtual-tick ``net_latency`` series.
    """

    def __init__(
        self,
        clock: WallClock,
        rng_registry: RngRegistry | None = None,
        default_latency: LatencyModel | None = None,
        failure_plan: FailurePlan | None = None,
        in_order: bool = True,
        obs: Instrumentation | None = None,
        faults: WireFaultPlan | None = None,
        gateway: Gateway | None = None,
        deliver_batch_max: int = 16,
        local_sites: Optional[list[str]] = None,
    ) -> None:
        self.clock = clock
        self.rngs = rng_registry or RngRegistry()
        self.default_latency = default_latency or FixedLatency(seconds(0.01))
        self.failure_plan = failure_plan or FailurePlan()
        self.in_order = in_order
        self.obs = obs or Instrumentation()
        self.faults = faults or WireFaultPlan()
        self.gateway = gateway or Gateway()
        #: Most messages one ``cm.deliver_batch`` frame may coalesce; 1
        #: disables sender-side coalescing entirely.
        self.deliver_batch_max = max(1, int(deliver_batch_max))
        self.gateway.bind_dispatch(self._on_frame, self._on_frame_batch)
        self._sites: dict[str, _SiteEntry] = {}
        self._channel_latency: dict[tuple[str, str], LatencyModel] = {}
        self._last_delivery: dict[tuple[str, str], int] = {}
        self._senders: dict[tuple[str, str], ChannelSender] = {}
        self._receivers: dict[tuple[str, str], ChannelReceiver] = {}
        #: Sequence numbers carried across socket teardowns, so per-channel
        #: FIFO (and the receivers' resequencers) span repeated runs.
        self._seq_carry: dict[tuple[str, str], int] = {}
        #: Sender counters accumulated across runs (senders are rebuilt
        #: per run; their diagnostics must not reset with them).
        self._sender_stats: dict[tuple[str, str], dict[str, int]] = {}
        #: Virtual-time horizon of the current run; frames due after it are
        #: not delivered (the sim kernel leaves them queued past ``until``).
        self.horizon: int | None = None
        #: Sites whose listening endpoints *this process* binds; ``None``
        #: means all registered sites (the single-process wire runtime).
        #: A process-runtime child binds only its own site and dials
        #: peers through injected remote ports.
        self.local_sites = set(local_sites) if local_sites is not None else None
        self._wall_sent: dict[tuple[str, str, int], float] = {}
        self._started = False
        self.messages_sent = 0
        self.messages_dropped = 0
        self.messages_delivered = 0
        #: Messages enqueued on a channel and not yet seen by a receiver.
        self.outstanding = 0
        #: Raw wire frames seen per channel, before resequencing — the
        #: process runtime's drain barrier compares these against the
        #: senders' ``frames_written`` (the only cross-process claim the
        #: receiving endpoint can verify by itself).
        self.frames_seen: dict[tuple[str, str], int] = {}
        self._channel_metrics: dict[tuple[str, str], tuple] = {}

    # -- Network-compatible surface -------------------------------------------

    @property
    def sim(self):  # parity: Network exposes .sim
        return self.clock

    def register_site(self, site: str, handler: Callable[[Message], None]) -> None:
        """Register ``site`` with its inbound-message handler."""
        if site in self._sites:
            raise ValueError(f"site already registered: {site}")
        self._sites[site] = _SiteEntry(handler=handler)

    def has_site(self, site: str) -> bool:
        return site in self._sites

    @property
    def sites(self) -> list[str]:
        return list(self._sites)

    def set_channel_latency(self, src: str, dst: str, model: LatencyModel) -> None:
        self._channel_latency[(src, dst)] = model

    def _latency_for(self, src: str, dst: str) -> int:
        model = self._channel_latency.get((src, dst), self.default_latency)
        rng = self.rngs.stream(f"net:{src}->{dst}")
        return model.sample(rng)

    def _metrics_for(self, channel: tuple[str, str]):
        cached = self._channel_metrics.get(channel)
        if cached is None:
            src, dst = channel
            registry = self.obs.metrics
            cached = (
                registry.counter("net_messages", src=src, dst=dst),
                registry.histogram("net_latency", src=src, dst=dst),
                registry.gauge("net_in_flight", src=src, dst=dst),
                registry.histogram(
                    "wire_latency_ms",
                    bounds=WIRE_MS_BOUNDS,
                    unit="ms",
                    src=src,
                    dst=dst,
                ),
                registry.counter("wire_fault_drops", src=src, dst=dst),
            )
            self._channel_metrics[channel] = cached
        return cached

    def send(self, src: str, dst: str, payload: Any) -> Optional[Message]:
        """Send ``payload`` from ``src`` to ``dst`` over the channel socket.

        Same contract as the sim network: returns the in-flight
        :class:`Message` or ``None`` when the message is lost — to a
        logical-failure window (either endpoint dead) or to an injected
        socket-level drop fault.
        """
        if src not in self._sites:
            raise ValueError(f"unknown source site: {src}")
        if dst not in self._sites:
            raise ValueError(f"unknown destination site: {dst}")
        now = self.clock.now
        self.messages_sent += 1
        plan = self.failure_plan
        if plan.logically_failed(src, now) or plan.logically_failed(dst, now):
            self.messages_dropped += 1
            return None
        channel = (src, dst)
        faults = self.faults.for_channel(src, dst)
        metrics = self._metrics_for(channel)
        if faults.drop and self._fault_rng(channel).random() < faults.drop:
            # The frame never leaves the sender: a lost datagram.
            self.messages_dropped += 1
            metrics[4].value += 1
            return None
        latency = 0 if src == dst else self._latency_for(src, dst)
        latency = round(latency * plan.slowdown_at(src, now)) + faults.delay
        deliver_at = now + latency
        if self.in_order:
            deliver_at = max(deliver_at, self._last_delivery.get(channel, 0))
        self._last_delivery[channel] = deliver_at
        sender = self._sender_for(channel, faults)
        seq = sender.next_seq()
        params = {
            "src": src,
            "dst": dst,
            "seq": seq,
            "sent_at": now,
            "deliver_at": deliver_at,
            "payload": encode_payload(payload),
        }
        message = Message(
            src=src, dst=dst, payload=payload, sent_at=now, deliver_at=deliver_at
        )
        metrics[2].inc()  # net_in_flight
        self._wall_sent[(src, dst, seq)] = _time.monotonic()
        obs = self.obs
        if obs.enabled and obs.flight is not None:
            obs.flight.record(
                src, "net.send", now, f"->{dst} {type(payload).__name__}"
            )
        if obs.enabled and obs.tracer.enabled:
            # The hop's causal context rides *in the frame*: the receiving
            # endpoint reconnects onto these ids, never onto shared objects,
            # so the same mechanism works across real process boundaries.
            tracer = obs.tracer
            span = tracer.start(
                "net.send",
                src,
                now,
                src=src,
                dst=dst,
                payload=type(payload).__name__,
            )
            tracer.finish(span, deliver_at)
            message.span = span
            params["trace"] = span.context.to_wire()
        self.outstanding += 1
        sender.enqueue(seq, deliver_at, params)
        if self._started:
            sender.ensure_started()
        return message

    # -- wiring / lifecycle -----------------------------------------------------

    def _fault_rng(self, channel: tuple[str, str]):
        return self.rngs.stream(f"wirefault:{channel[0]}->{channel[1]}")

    def _sender_for(
        self, channel: tuple[str, str], faults=NO_FAULTS
    ) -> ChannelSender:
        sender = self._senders.get(channel)
        if sender is None:
            src, dst = channel

            async def dial() -> FrameStream:
                return await self.gateway.dial(src, dst)

            sender = ChannelSender(
                src,
                dst,
                self.clock,
                dial,
                faults=faults,
                fault_rng=self._fault_rng(channel) if faults.any else None,
                batch_max=self.deliver_batch_max,
            )
            sender._next_seq = self._seq_carry.pop(channel, 0)
            self._senders[channel] = sender
        return sender

    async def start(self) -> None:
        """Open the gateway endpoints and release any buffered channels."""
        local = self.local_sites
        await self.gateway.start(
            [site for site in self.sites if local is None or site in local]
        )
        self._started = True
        for sender in self._senders.values():
            sender.ensure_started()

    async def quiesce(self, wall_budget: float = 5.0) -> None:
        """Wait until all enqueued messages reached their receivers.

        Meaningful only when senders and receivers share this process
        (``outstanding`` is incremented on send and decremented on
        receipt); the process runtime uses :meth:`flush_senders` plus a
        cross-process drain barrier over ``frames_seen`` instead.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + wall_budget
        while self.outstanding > 0 and loop.time() < deadline:
            await asyncio.sleep(0.002)

    async def flush_senders(self, wall_budget: float = 5.0) -> None:
        """Wait until every sender's outbox has been written to its socket.

        Unlike :meth:`quiesce` this makes no claim about *receipt* — the
        receivers may live in other processes.  The caller then reports
        per-channel ``frames_written`` so the receiving side can wait for
        its ``frames_seen`` to catch up (the drain barrier).
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + wall_budget
        while loop.time() < deadline:
            if all(
                sender.in_flight == 0 for sender in self._senders.values()
            ):
                break
            await asyncio.sleep(0.002)

    async def stop(self) -> None:
        """Close channels and gateway endpoints.

        Senders are discarded (their queues and tasks are bound to the
        loop that is ending) with their sequence counters carried over,
        so a later run continues each channel where it left off.
        """
        for channel, sender in self._senders.items():
            await sender.close()
            self._seq_carry[channel] = sender._next_seq
            carried = self._sender_stats.setdefault(
                channel,
                {
                    "frames_written": 0,
                    "frames_duplicated": 0,
                    "frames_reordered": 0,
                    "frames_coalesced": 0,
                    "frames_dropped_dead": 0,
                },
            )
            carried["frames_written"] += sender.frames_written
            carried["frames_duplicated"] += sender.frames_duplicated
            carried["frames_reordered"] += sender.frames_reordered
            carried["frames_coalesced"] += sender.frames_coalesced
            carried["frames_dropped_dead"] += sender.frames_dropped_dead
        self._senders.clear()
        await self.gateway.stop()
        self._started = False

    # -- inbound path ------------------------------------------------------------

    def _receiver_for(self, channel: tuple[str, str]) -> ChannelReceiver:
        receiver = self._receivers.get(channel)
        if receiver is None:
            receiver = ChannelReceiver(in_order=self.in_order)
            self._receivers[channel] = receiver
        return receiver

    def _on_frame(self, params: dict[str, Any]) -> None:
        """One inbound ``cm.deliver`` frame (possibly duplicated/reordered)."""
        channel = (params["src"], params["dst"])
        self.frames_seen[channel] = self.frames_seen.get(channel, 0) + 1
        receiver = self._receiver_for(channel)
        accepted = receiver.accept(params)
        if self.in_order and accepted:
            # Each distinct seq is seen exactly once in ordered mode.
            self.outstanding -= len(accepted)
        elif not self.in_order:
            self.outstanding = max(0, self.outstanding - 1)
        for ready in accepted:
            self._deliver(ready)

    def _on_frame_batch(self, params: dict[str, Any]) -> None:
        """One inbound ``cm.deliver_batch`` frame: resequence the whole
        coalesced run at once, then deliver each message in order."""
        channel = (params["src"], params["dst"])
        self.frames_seen[channel] = self.frames_seen.get(channel, 0) + 1
        frames = params.get("frames")
        if not frames:
            return
        receiver = self._receiver_for(channel)
        accepted = receiver.accept_batch(frames)
        if self.in_order and accepted:
            self.outstanding -= len(accepted)
        elif not self.in_order:
            self.outstanding = max(0, self.outstanding - len(frames))
        for ready in accepted:
            self._deliver(ready)

    def _deliver(self, params: dict[str, Any]) -> None:
        src, dst, seq = params["src"], params["dst"], params["seq"]
        now = self.clock.now
        metrics = self._metrics_for((src, dst))
        metrics[2].dec()  # net_in_flight
        payload = decode_payload(params["payload"])
        wall_sent = self._wall_sent.pop((src, dst, seq), None)
        if self.horizon is not None and params["deliver_at"] > self.horizon:
            # The sim kernel would leave this message queued past the
            # horizon; on the wire we simply do not hand it to the shell.
            return
        if self.failure_plan.logically_failed(dst, now):
            self.messages_dropped += 1
            return
        # Channel metrics count *deliveries*, not send attempts.
        metrics[0].value += 1
        metrics[1].observe(max(0, now - params["sent_at"]))
        if wall_sent is not None:
            metrics[3].observe((_time.monotonic() - wall_sent) * 1_000.0)
        self.messages_delivered += 1
        if self.obs.enabled and self.obs.flight is not None:
            self.obs.flight.record(dst, "net.recv", now, f"<-{src} seq={seq}")
        message = Message(
            src=src,
            dst=dst,
            payload=payload,
            sent_at=params["sent_at"],
            deliver_at=now,
        )
        handler = self._sites[dst].handler
        # Resume the causal context carried in the frame: everything the
        # handler traces parents (by id) onto the sender's net.send span,
        # reconnecting the tree across the socket.
        ctx = SpanContext.from_wire(params.get("trace"))
        if ctx is not None and self.obs.enabled:
            tracer = self.obs.tracer
            tracer.push(ctx)
            try:
                handler(message)
            finally:
                tracer.pop()
        else:
            handler(message)

    # -- diagnostics --------------------------------------------------------------

    def channel_stats(self) -> dict[str, dict[str, int]]:
        """Per-channel wire counters (frames, dups healed, reorders)."""
        stats: dict[str, dict[str, int]] = {}
        channels = (
            set(self._senders) | set(self._sender_stats) | set(self._receivers)
        )
        for channel in sorted(channels):
            sender = self._senders.get(channel)
            carried = self._sender_stats.get(channel, {})
            receiver = self._receivers.get(channel)
            stats[f"{channel[0]}->{channel[1]}"] = {
                "frames_written": carried.get("frames_written", 0)
                + (sender.frames_written if sender else 0),
                "frames_duplicated": carried.get("frames_duplicated", 0)
                + (sender.frames_duplicated if sender else 0),
                "frames_reordered": carried.get("frames_reordered", 0)
                + (sender.frames_reordered if sender else 0),
                "frames_coalesced": carried.get("frames_coalesced", 0)
                + (sender.frames_coalesced if sender else 0),
                "frames_dropped_dead": carried.get("frames_dropped_dead", 0)
                + (sender.frames_dropped_dead if sender else 0),
                "frames_seen": self.frames_seen.get(channel, 0),
                "duplicates_discarded": (
                    receiver.duplicates_discarded if receiver else 0
                ),
                "resequencer_high_water": (
                    receiver.frames_buffered_high if receiver else 0
                ),
            }
        return stats
