"""WallClock: the Simulator-compatible clock of the wire runtime.

Virtual time stays integer microseconds (:mod:`repro.core.timebase`), but
it now *tracks the wall clock*, accelerated by a scale factor: at
``time_scale=100`` one wall second is 100 virtual seconds, so a 300-second
scenario runs in 3 seconds of real time.  Everything that schedules
callbacks against the simulator (`at`/`after`, :class:`PeriodicTimer`,
translators' service-time completions, workload generators) works
unchanged against this clock — the callbacks land on the asyncio loop via
``loop.call_at``.

Two lifecycle subtleties:

- **Pre-loop buffering.** Scenario wiring happens before any event loop
  exists (timers start at rule install time; workloads pre-schedule their
  updates).  Schedules made while no loop is active are buffered and
  flushed when :meth:`run_until` activates the clock.
- **Horizon freezing.** ``run_until(h)`` returns with virtual time pinned
  to exactly ``h`` (mirroring ``Simulator.run(until=h)``), outstanding
  wall timers cancelled, and later schedules buffered again — so a second
  ``run_until`` resumes where the first stopped, which is how scenarios
  that run / reconfigure / run again behave identically on both runtimes.

Unlike the discrete-event kernel there is no global total order on
simultaneous callbacks — that is the point: the wire runtime exhibits real
concurrency, and the equivalence harness checks that the *guarantees*
survive it, not that the interleaving is byte-identical.
"""

from __future__ import annotations

import asyncio
from collections.abc import Callable

from repro.core.timebase import Ticks

#: Microseconds per second (ticks are integer microseconds of virtual time).
_TICKS_PER_SECOND = 1_000_000


class WallEvent:
    """A pending wall-clock callback; duck-compatible with
    :class:`~repro.sim.scheduler.ScheduledEvent` (has ``time`` and
    ``cancel``)."""

    __slots__ = ("time", "callback", "cancelled", "_handle")

    def __init__(self, time: Ticks, callback: Callable[[], None]) -> None:
        self.time = time
        self.callback = callback
        self.cancelled = False
        self._handle: asyncio.TimerHandle | None = None

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already run)."""
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None


class WallClock:
    """A scaled wall clock with a Simulator-compatible scheduling API."""

    def __init__(self, time_scale: float = 20.0) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive: {time_scale}")
        self.time_scale = time_scale
        self._loop: asyncio.AbstractEventLoop | None = None
        #: Virtual time of the last activation point (ticks).
        self._anchor: Ticks = 0
        #: ``loop.time()`` at the last activation point.
        self._origin: float = 0.0
        #: Monotonicity floor: ``now`` never goes backwards.
        self._floor: Ticks = 0
        #: Schedules made while no loop is active.
        self._buffered: list[WallEvent] = []
        self._live: set[WallEvent] = set()
        self._stopped = False
        self.events_processed = 0
        self.max_queue_depth = 0
        #: Shared wall-clock epoch (``time.time()``) for the next
        #: activation.  The process runtime hands every shell process the
        #: same epoch so their virtual clocks advance in lockstep — on one
        #: machine ``time.time()`` agrees across processes to well under a
        #: millisecond, far tighter than the channel latencies being
        #: modelled.  ``None`` anchors to the local loop (single-process).
        self.sync_epoch: float | None = None

    # -- Simulator-compatible surface -----------------------------------------

    @property
    def now(self) -> Ticks:
        """Current virtual time in ticks (monotonic, never past a freeze)."""
        if self._loop is None:
            return self._floor
        elapsed = self._loop.time() - self._origin
        current = self._anchor + round(elapsed * self.time_scale * _TICKS_PER_SECOND)
        if current > self._floor:
            self._floor = current
        return self._floor

    @property
    def now_seconds(self) -> float:
        """Current virtual time in float seconds."""
        return self.now / _TICKS_PER_SECOND

    def at(self, time: Ticks, callback: Callable[[], None]) -> WallEvent:
        """Schedule ``callback`` at absolute virtual time ``time``.

        Unlike the simulator, scheduling in the (virtual) past is clamped
        to "now" rather than rejected: wall-clock jitter makes exact-tick
        scheduling impossible, and the framework's rules only care that
        causality (not exact timestamps) is preserved.
        """
        event = WallEvent(max(time, self.now), callback)
        if self._loop is None:
            self._buffered.append(event)
        else:
            self._arm(event)
        depth = len(self._buffered) + len(self._live)
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        return event

    def after(self, delay: Ticks, callback: Callable[[], None]) -> WallEvent:
        """Schedule ``callback`` ``delay`` ticks from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self.now + delay, callback)

    def stop(self) -> None:
        """Stop the active ``run_until`` after the current callback."""
        self._stopped = True

    # -- wire-runtime internals ------------------------------------------------

    def wall_delay(self, time: Ticks) -> float:
        """Wall seconds from now until virtual ``time`` (>= 0)."""
        return max(0.0, (time - self.now) / (self.time_scale * _TICKS_PER_SECOND))

    async def sleep_until(self, time: Ticks) -> None:
        """Async-sleep until virtual ``time`` has passed."""
        delay = self.wall_delay(time)
        if delay > 0:
            await asyncio.sleep(delay)

    def _arm(self, event: WallEvent) -> None:
        assert self._loop is not None
        when = self._origin + (event.time - self._anchor) / (
            self.time_scale * _TICKS_PER_SECOND
        )
        self._live.add(event)
        event._handle = self._loop.call_at(when, self._fire, event)

    def _fire(self, event: WallEvent) -> None:
        self._live.discard(event)
        if event.cancelled or self._stopped:
            return
        if event.time > self._floor:
            self._floor = event.time
        self.events_processed += 1
        event.callback()

    def activate(self, loop: asyncio.AbstractEventLoop) -> None:
        """Anchor virtual time to ``loop`` and flush buffered schedules.

        With :attr:`sync_epoch` set, the anchor instant is that shared
        wall epoch instead of "now" — translated into the loop's timebase
        so every process activating against the same epoch agrees on
        virtual time regardless of when its activate call actually ran.
        """
        self._loop = loop
        epoch, self.sync_epoch = self.sync_epoch, None
        if epoch is not None:
            import time as _time

            self._origin = loop.time() + (epoch - _time.time())
        else:
            self._origin = loop.time()
        self._anchor = self._floor
        buffered, self._buffered = self._buffered, []
        for event in buffered:
            if not event.cancelled:
                self._arm(event)

    def freeze(self, at_time: Ticks) -> None:
        """Pin virtual time to ``at_time``; re-buffer outstanding timers.

        Cancels the wall timers of still-pending events but keeps the
        events, so a later :meth:`activate` re-arms them — repeated
        ``run_until`` calls therefore behave like the simulator's repeated
        ``run(until=...)``.
        """
        self._floor = max(self._floor, at_time)
        live, self._live = self._live, set()
        for event in live:
            if event._handle is not None:
                event._handle.cancel()
                event._handle = None
            if not event.cancelled:
                self._buffered.append(event)
        self._loop = None

    async def run_until(self, until: Ticks) -> None:
        """Let scheduled callbacks fire until virtual ``until``, then freeze."""
        loop = asyncio.get_running_loop()
        self._stopped = False
        self.activate(loop)
        deadline = self._origin + (until - self._anchor) / (
            self.time_scale * _TICKS_PER_SECOND
        )
        while not self._stopped:
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            await asyncio.sleep(min(remaining, 0.05))
        self.freeze(until)
