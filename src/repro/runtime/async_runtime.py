"""AsyncRuntime: CM-Shells as asyncio tasks over real sockets.

Each ``Scenario(runtime="async")`` run opens one loopback TCP endpoint
per site (:class:`~repro.runtime.gateway.Gateway`), carries every
inter-site message over a real socket as a length-prefixed JSON-RPC
frame, and replaces the discrete-event queue with a scaled wall clock
(:class:`~repro.runtime.clock.WallClock`).  ``run(until)`` then means:

1. start the gateway endpoints and release any channel traffic buffered
   during wiring;
2. let wall time advance virtual time to the horizon, with timers firing
   on the loop and channel sender tasks pacing frames to their virtual
   delivery times;
3. quiesce — wait (bounded in wall time) until every frame written has
   reached its receiver, so the trace is complete when it closes;
4. tear the sockets down.  A later ``run`` builds fresh endpoints; channel
   sequence numbers carry over so per-channel FIFO spans runs.

The entire session is wrapped in a wall-clock watchdog
(``max_wall_seconds``) — a wedged socket or a runaway schedule raises
instead of hanging the test suite.
"""

from __future__ import annotations

import asyncio
import gc
from typing import TYPE_CHECKING

from repro.core.timebase import Ticks
from repro.runtime.channels import WireFaultPlan
from repro.runtime.clock import WallClock
from repro.runtime.gateway import Gateway, WireNetwork

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cm.manager import Scenario


class WireRuntimeError(RuntimeError):
    """The wire runtime failed to make progress (watchdog expired)."""


class AsyncRuntime:
    """The socket-backed runtime.

    - ``time_scale`` — virtual seconds per wall second (20 by default: a
      300-virtual-second scenario takes 15 wall seconds).  The default is
      deliberately conservative: the scenario's timing bounds shrink with
      the scale (a 2-virtual-second rule delay is 100 wall ms of headroom
      at 20x but only 20 ms at 100x), and on a loaded host an aggressive
      scale makes real scheduling jitter show up as honest — but
      unwanted — timing-property violations in the recorded trace.
    - ``faults`` — socket-level fault plan (drop/dup/reorder/delay per
      directed channel).
    - ``max_wall_seconds`` — watchdog on one ``run`` call.
    - ``quiesce_wall`` — wall budget for in-flight frames to land after
      the horizon.
    - ``deliver_batch_max`` — most messages a channel sender may coalesce
      into one ``cm.deliver_batch`` frame when a burst is already due
      (1 disables coalescing; see
      :class:`~repro.runtime.channels.ChannelSender`).
    """

    name = "async"

    def __init__(
        self,
        time_scale: float = 20.0,
        faults: WireFaultPlan | None = None,
        host: str = "127.0.0.1",
        max_wall_seconds: float = 120.0,
        quiesce_wall: float = 5.0,
        deliver_batch_max: int = 16,
    ) -> None:
        self.time_scale = time_scale
        self.faults = faults
        self.host = host
        self.max_wall_seconds = max_wall_seconds
        self.quiesce_wall = quiesce_wall
        self.deliver_batch_max = deliver_batch_max
        self.clock: WallClock | None = None
        self.wire: WireNetwork | None = None

    def build(self, scenario: "Scenario") -> tuple[WallClock, WireNetwork]:
        """Construct the wall clock and the socket-backed network."""
        self.clock = WallClock(time_scale=self.time_scale)
        self.wire = WireNetwork(
            self.clock,
            rng_registry=scenario.rngs,
            default_latency=scenario.default_latency,
            failure_plan=scenario.failure_plan,
            in_order=scenario.in_order,
            obs=scenario.obs,
            faults=self.faults,
            gateway=Gateway(self.host),
            deliver_batch_max=self.deliver_batch_max,
        )
        return self.clock, self.wire

    def run(self, scenario: "Scenario", until: Ticks) -> None:
        """Advance the wire scenario to virtual time ``until``.

        The cyclic garbage collector is paused for the duration of the
        event loop: a gen-2 pass over a large recorded trace can stall
        the (often single-core) process for tens of milliseconds, which
        scaled wall time faithfully books against whatever timing bound
        was pending.  Reference counting still reclaims almost all
        garbage; the deferred cycles are collected right after the
        horizon.
        """
        if self.wire is None or self.clock is None:
            raise WireRuntimeError("runtime was never built for a scenario")
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            asyncio.run(self._session(until))
        finally:
            if gc_was_enabled:
                gc.enable()
                gc.collect()

    async def _session(self, until: Ticks) -> None:
        assert self.wire is not None and self.clock is not None
        self.wire.horizon = until
        await self.wire.start()
        try:
            await asyncio.wait_for(
                self._advance(until), timeout=self.max_wall_seconds
            )
        except asyncio.TimeoutError:  # noqa: UP041 — alias only on 3.11+
            raise WireRuntimeError(
                f"wire runtime made no progress to horizon {until} within "
                f"{self.max_wall_seconds} wall seconds"
            ) from None
        finally:
            await self.wire.stop()

    async def _advance(self, until: Ticks) -> None:
        assert self.wire is not None and self.clock is not None
        await self.clock.run_until(until)
        await self.wire.quiesce(self.quiesce_wall)

    def shutdown(self, scenario: "Scenario") -> None:
        """Nothing persistent to release: each run tears its sockets down."""
