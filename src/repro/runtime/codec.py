"""Self-contained by-value encoding for everything that crosses a process.

The wire runtime's original payload codec shipped rule firings *by
in-process handle*: the frame carried a token and the sender-side payload
table paired it back up at the receiving endpoint — which only works while
both endpoints share one address space.  This module replaces that seam
with a value codec: every payload that crosses a channel is encoded into
plain JSON-compatible data, and the receiving shell *re-resolves* the rule
from its own installed rule set (CM-RID is the shared contract — both
sites hold the same rule definitions, keyed by name) and re-compiles the
program locally instead of receiving pickled closures.

Four layers, each building on the previous:

- **values** — JSON scalars pass through; the :data:`~repro.core.items.MISSING`
  existence sentinel, tuples, :class:`~repro.core.items.DataItemRef` and
  the rare nested container are tagged dicts, decoded back to canonical
  objects (``MISSING`` decodes to *the* singleton, so ``is``-checks hold
  across the boundary).
- **descriptors** — :class:`~repro.core.events.EventDesc` as a dict, plus a
  *compact tuple* form (``(kind value, family, args, values)``) used by the
  shard-worker pool, where per-descriptor cost dominates and a flat tuple
  of mostly-raw scalars pickles several times faster than the dataclass.
- **events** — a trigger :class:`~repro.core.events.Event` travels as its
  provenance chain (depth-bounded), reconstructed bottom-up with explicit
  sequence numbers so decoding never advances the global event counter.
  Event identity across the boundary is ``(site, seq)`` — the trace
  validators key provenance on that pair, not on object identity.
- **firings** — a :class:`~repro.cm.shell.FireMessage` crosses as rule
  name + encoded slot values (compiled) or bindings (interpreted) + the
  trigger chain; it decodes to a :class:`WireFiring`, a neutral record the
  receiving shell resolves against its own rules.

Demarcation-protocol payloads (``_LimitRequest``/``_LimitGrant``) are
plain facts and encode field-by-field like failure notices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.events import Event, EventDesc, EventKind
from repro.core.interpretations import Interpretation
from repro.core.items import MISSING, DataItemRef

#: Provenance chains are encoded to this depth; a trigger further up is
#: dropped (its descendants keep their own times/sites, which is all the
#: validators and the propagation-latency walk need from a remote chain).
MAX_TRIGGER_DEPTH = 8

_TAG = "$"


class CodecError(ValueError):
    """A payload the by-value codec cannot represent."""


# -- values -------------------------------------------------------------------

_SCALARS = (str, int, float, bool, type(None))


def encode_value(value: Any) -> Any:
    """Encode one value into JSON-compatible data."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (str, int, float)):
        return value
    if value is MISSING or type(value).__name__ == "_Missing":
        return {_TAG: "missing"}
    if isinstance(value, DataItemRef):
        return {
            _TAG: "item",
            "name": value.name,
            "args": [encode_value(a) for a in value.args],
        }
    if isinstance(value, tuple):
        return {_TAG: "tuple", "v": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return {_TAG: "list", "v": [encode_value(v) for v in value]}
    if isinstance(value, dict):
        return {
            _TAG: "dict",
            "v": [[encode_value(k), encode_value(v)] for k, v in value.items()],
        }
    raise CodecError(f"value not encodable by the wire codec: {value!r}")


def decode_value(data: Any) -> Any:
    """Reverse :func:`encode_value`."""
    if isinstance(data, dict):
        tag = data.get(_TAG)
        if tag == "missing":
            return MISSING
        if tag == "item":
            return DataItemRef(
                data["name"], tuple(decode_value(a) for a in data["args"])
            )
        if tag == "tuple":
            return tuple(decode_value(v) for v in data["v"])
        if tag == "list":
            return [decode_value(v) for v in data["v"]]
        if tag == "dict":
            return {decode_value(k): decode_value(v) for k, v in data["v"]}
        raise CodecError(f"unknown value tag: {tag!r}")
    return data


# -- descriptors --------------------------------------------------------------


def encode_desc(desc: EventDesc) -> dict[str, Any]:
    """Encode a ground descriptor as a JSON dict."""
    item = desc.item
    return {
        "kind": desc.kind.value,
        "item": None
        if item is None
        else {"name": item.name, "args": [encode_value(a) for a in item.args]},
        "values": [encode_value(v) for v in desc.values],
    }


def decode_desc(data: dict[str, Any]) -> EventDesc:
    """Reverse :func:`encode_desc`."""
    item_data = data["item"]
    item = (
        None
        if item_data is None
        else DataItemRef(
            item_data["name"],
            tuple(decode_value(a) for a in item_data["args"]),
        )
    )
    return EventDesc(
        EventKind(data["kind"]),
        item,
        tuple(decode_value(v) for v in data["values"]),
    )


def encode_desc_compact(desc: EventDesc) -> tuple:
    """Descriptor as a flat tuple for the shard-worker pipe.

    ``(kind value, family, args, values)`` — raw scalars pass through
    untagged (the pipe pickles, so there is no JSON restriction; only
    non-scalars like ``MISSING`` need the tagged form to decode back to
    canonical singletons on the worker side).  Measured ~4x cheaper to
    pickle per descriptor than the frozen dataclass itself.
    """
    item = desc.item
    return (
        desc.kind.value,
        item.name if item is not None else None,
        tuple(
            a if isinstance(a, _SCALARS) else encode_value(a)
            for a in (item.args if item is not None else ())
        ),
        tuple(
            v if isinstance(v, _SCALARS) else encode_value(v)
            for v in desc.values
        ),
    )


def decode_desc_compact(data: tuple) -> EventDesc:
    """Reverse :func:`encode_desc_compact` (worker side)."""
    kind_value, family, args, values = data
    item = (
        None
        if family is None
        else DataItemRef(
            family,
            tuple(
                a if isinstance(a, _SCALARS) else decode_value(a) for a in args
            ),
        )
    )
    return EventDesc(
        EventKind(kind_value),
        item,
        tuple(v if isinstance(v, _SCALARS) else decode_value(v) for v in values),
    )


# -- events (trigger provenance chains) ---------------------------------------


def encode_event(
    event: Event, depth: int = MAX_TRIGGER_DEPTH
) -> dict[str, Any]:
    """Encode an event and its trigger chain, depth-bounded."""
    trigger = event.trigger
    return {
        "time": event.time,
        "site": event.site,
        "seq": event.seq,
        "desc": encode_desc(event.desc),
        "rule": event.rule.name if event.rule is not None else None,
        "trigger": (
            encode_event(trigger, depth - 1)
            if trigger is not None and depth > 1
            else None
        ),
    }


def decode_event(
    data: dict[str, Any],
    rule_resolver: Optional[Callable[[str], Any]] = None,
) -> Event:
    """Reverse :func:`encode_event`, bottom-up.

    Reconstructed events carry empty interpretations (the receiving side
    never reads ``old``/``new`` off a remote trigger) and their *original*
    sequence numbers — passing ``seq=`` explicitly keeps the global event
    counter untouched, so local event numbering is unaffected by decoding.
    ``rule_resolver`` maps a rule name back to a locally known
    :class:`~repro.core.rules.Rule` (returning ``None`` is fine: validators
    identify remote triggers by ``(site, seq)``, not by their rule field).
    """
    trigger_data = data["trigger"]
    trigger = (
        decode_event(trigger_data, rule_resolver)
        if trigger_data is not None
        else None
    )
    rule_name = data["rule"]
    rule = (
        rule_resolver(rule_name)
        if rule_name is not None and rule_resolver is not None
        else None
    )
    return Event(
        time=data["time"],
        site=data["site"],
        desc=decode_desc(data["desc"]),
        old=Interpretation(),
        new=Interpretation(),
        rule=rule,
        trigger=trigger,
        seq=data["seq"],
    )


# -- firings ------------------------------------------------------------------


@dataclass(frozen=True)
class WireFiring:
    """A decoded cross-site firing, before rule resolution.

    The receiving shell resolves ``rule_name`` against its own installed
    and registered-remote rules (same CM-RID on both sides), then runs the
    locally compiled program with ``slots`` — the slot layout is
    deterministic per rule, so slot values computed by the sender drop
    straight into the receiver's program — or falls back to the
    interpreted path with ``bindings``.
    """

    rule_name: str
    trigger: Event
    slots: Optional[list] = None
    bindings: Optional[tuple[tuple[str, Any], ...]] = None


def encode_firing(fire: Any) -> dict[str, Any]:
    """Encode a :class:`~repro.cm.shell.FireMessage` by value."""
    data: dict[str, Any] = {
        "rule": fire.rule.name,
        "trigger": encode_event(fire.trigger),
    }
    if fire.program is not None:
        data["slots"] = [encode_value(v) for v in fire.slots]
    else:
        data["bindings"] = [
            [name, encode_value(v)] for name, v in fire.bindings
        ]
    return data


def decode_firing(
    data: dict[str, Any],
    rule_resolver: Optional[Callable[[str], Any]] = None,
) -> WireFiring:
    """Reverse :func:`encode_firing` into a neutral :class:`WireFiring`."""
    slots_data = data.get("slots")
    bindings_data = data.get("bindings")
    return WireFiring(
        rule_name=data["rule"],
        trigger=decode_event(data["trigger"], rule_resolver),
        slots=(
            [decode_value(v) for v in slots_data]
            if slots_data is not None
            else None
        ),
        bindings=(
            tuple((name, decode_value(v)) for name, v in bindings_data)
            if bindings_data is not None
            else None
        ),
    )
