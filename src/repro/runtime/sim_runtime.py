"""SimRuntime: the discrete-event kernel behind the Runtime seam.

This is a thin adapter — deliberately so.  The simulator and simulated
network are unchanged; they are simply *constructed here* instead of
inline in ``Scenario.__post_init__``, which is what lets a scenario swap
in the wire runtime with one parameter.  The sim kernel remains the
executable specification of the paper's semantics: deterministic, totally
ordered, and the reference the equivalence harness
(:mod:`repro.runtime.equivalence`) compares the wire runtime against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.timebase import Ticks
from repro.sim.network import Network
from repro.sim.scheduler import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cm.manager import Scenario


class SimRuntime:
    """The deterministic discrete-event runtime (the default)."""

    name = "sim"

    def build(self, scenario: "Scenario") -> tuple[Simulator, Network]:
        """Construct the simulator clock and the simulated network."""
        sim = Simulator()
        network = Network(
            sim,
            rng_registry=scenario.rngs,
            default_latency=scenario.default_latency,
            failure_plan=scenario.failure_plan,
            in_order=scenario.in_order,
            obs=scenario.obs,
        )
        return sim, network

    def run(self, scenario: "Scenario", until: Ticks) -> None:
        """Advance the simulation to the horizon."""
        scenario.sim.run(until=until)

    def shutdown(self, scenario: "Scenario") -> None:
        """Nothing to release: the sim kernel holds no real resources."""
