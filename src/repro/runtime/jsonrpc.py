"""Minimal JSON-RPC 2.0 message layer for the wire runtime.

The wire protocol between CM-Shell endpoints is JSON-RPC 2.0 over
length-prefixed frames (:mod:`repro.runtime.transport`):

- ``cm.hello`` — a *request* opening a channel: ``{"src", "dst"}``; the
  gateway answers with a result echoing the channel so the dialer knows
  the endpoint routed it correctly.
- ``cm.deliver`` — a *notification* carrying one in-order channel message:
  ``{"src", "dst", "seq", "sent_at", "deliver_at", "payload"}``.

Only the subset the runtime needs is implemented, but it is implemented
properly: versioned envelopes, error objects with the standard codes, and
strict parsing that rejects malformed traffic instead of guessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Union

JSONRPC_VERSION = "2.0"

# Standard JSON-RPC 2.0 error codes.
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603


class ProtocolError(Exception):
    """A malformed or protocol-violating JSON-RPC message."""

    def __init__(self, message: str, code: int = INVALID_REQUEST) -> None:
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class Request:
    """A call expecting a response (has an id)."""

    method: str
    params: dict[str, Any] = field(default_factory=dict)
    id: int | str = 0

    def to_wire(self) -> dict[str, Any]:
        return {
            "jsonrpc": JSONRPC_VERSION,
            "id": self.id,
            "method": self.method,
            "params": dict(self.params),
        }


@dataclass(frozen=True)
class Notification:
    """A fire-and-forget call (no id, no response)."""

    method: str
    params: dict[str, Any] = field(default_factory=dict)

    def to_wire(self) -> dict[str, Any]:
        return {
            "jsonrpc": JSONRPC_VERSION,
            "method": self.method,
            "params": dict(self.params),
        }


@dataclass(frozen=True)
class Response:
    """A successful result for a request id."""

    id: int | str
    result: Any = None

    def to_wire(self) -> dict[str, Any]:
        return {"jsonrpc": JSONRPC_VERSION, "id": self.id, "result": self.result}


@dataclass(frozen=True)
class ErrorResponse:
    """An error result for a request id (standard error object)."""

    id: int | str | None
    code: int
    message: str
    data: Any = None

    def to_wire(self) -> dict[str, Any]:
        error: dict[str, Any] = {"code": self.code, "message": self.message}
        if self.data is not None:
            error["data"] = self.data
        return {"jsonrpc": JSONRPC_VERSION, "id": self.id, "error": error}


Message = Union[Request, Notification, Response, ErrorResponse]


def parse_message(raw: Any) -> Message:
    """Parse one decoded JSON value into a typed JSON-RPC message.

    Raises :class:`ProtocolError` on anything that is not a well-formed
    JSON-RPC 2.0 request, notification, response, or error.
    """
    if not isinstance(raw, dict):
        raise ProtocolError(f"message must be an object, got {type(raw).__name__}")
    if raw.get("jsonrpc") != JSONRPC_VERSION:
        raise ProtocolError(f"unsupported jsonrpc version: {raw.get('jsonrpc')!r}")
    if "method" in raw:
        method = raw["method"]
        if not isinstance(method, str):
            raise ProtocolError("method must be a string")
        params = raw.get("params", {})
        if not isinstance(params, dict):
            raise ProtocolError(
                "params must be an object", code=INVALID_PARAMS
            )
        if "id" in raw:
            return Request(method=method, params=params, id=raw["id"])
        return Notification(method=method, params=params)
    if "error" in raw:
        error = raw["error"]
        if not isinstance(error, dict) or "code" not in error:
            raise ProtocolError("malformed error object")
        return ErrorResponse(
            id=raw.get("id"),
            code=error["code"],
            message=error.get("message", ""),
            data=error.get("data"),
        )
    if "result" in raw:
        if "id" not in raw:
            raise ProtocolError("response without an id")
        return Response(id=raw["id"], result=raw["result"])
    raise ProtocolError("message is neither request, notification, nor response")
